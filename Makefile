# Convenience targets for the Measures-in-SQL reproduction.

.PHONY: test bench report snapshot shell examples lint validate all

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

report:
	python -m benchmarks.report

snapshot:
	python -m benchmarks.report --snapshot --out benchmarks/

shell:
	python -m repro

examples:
	@for f in examples/*.py; do echo "== $$f =="; python $$f > /dev/null && echo ok; done

lint:
	python -m repro.analysis --self-check

validate:
	REPRO_VALIDATE=1 pytest tests/

all: test lint bench report examples
