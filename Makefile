# Convenience targets for the Measures-in-SQL reproduction.

.PHONY: test bench report shell examples lint all

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

report:
	python -m benchmarks.report

shell:
	python -m repro

examples:
	@for f in examples/*.py; do echo "== $$f =="; python $$f > /dev/null && echo ok; done

all: test bench report examples
