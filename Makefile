# Convenience targets for the Measures-in-SQL reproduction.

.PHONY: test test-slow bench report snapshot compare shell tpch serve server-smoke replay-smoke examples lint validate all

# The committed perf baseline the regression gate compares against.
BASELINE ?= benchmarks/BENCH_2026-08-07.json

test:
	pytest tests/

# The opt-in slow tier: TPC-H at SF >= 0.05 (excluded from `make test`).
test-slow:
	pytest tests/ -m slow

bench:
	pytest benchmarks/ --benchmark-only

report:
	python -m benchmarks.report

snapshot:
	python -m benchmarks.report --snapshot --out benchmarks/

compare:
	rm -rf .bench-compare && mkdir -p .bench-compare
	python -m benchmarks.report --snapshot --out .bench-compare/ --repeats 5
	python -m benchmarks.report --compare $(BASELINE) .bench-compare/BENCH_*.json

shell:
	python -m repro

# Interactive shell over the generated TPC-H tables + measure layer.
tpch:
	python -m repro.workloads --tpch --summaries --sf 0.01

serve:
	python -m repro.server --listings

server-smoke:
	python scripts/server_smoke.py

# Record the paper listings through the server, replay the journal, and
# require a byte-identical --diff (plus a rejected injected mismatch).
replay-smoke:
	python scripts/replay_smoke.py replay/journal.jsonl

examples:
	@for f in examples/*.py; do echo "== $$f =="; python $$f > /dev/null && echo ok; done

lint:
	python -m repro.analysis --self-check
	python -m repro.analysis --flip-check
	python -m repro.analysis --lock-check

validate:
	REPRO_VALIDATE=1 pytest tests/

all: test lint bench report examples
