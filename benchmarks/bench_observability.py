"""F09: progress tracking is zero-cost when off — paper listings with/without.

Live-query observability (`repro_running_queries`, memory budgets) rides the
executor's 256-row checkpoints.  The hot path hoists one ``watched`` check
outside the row loops, so with tracking off the per-row cost must be
indistinguishable from a build that never had the feature.  This module is
the proof: every paper listing is timed twice — ``Database()`` (tracking
off) and ``Database(track_progress=True)`` (ticks + memory accounting on) —
and the pair lands in the ``observability`` section of ``BENCH_<date>.json``
so the CI gate (``benchmarks/report.py --compare``) catches any future PR
that makes the "off" side pay for the feature.

The listings are deliberately the *smallest* workload in the suite: at
paper scale (5 orders) the fixed per-query overhead of a progress-state
registration is as visible as it will ever be.  TPC-H scale hides it;
this does not.

Run standalone for a smoke check (used by CI)::

    python -m benchmarks.bench_observability --quick
"""

from __future__ import annotations

import sys
import time

from repro import Database
from repro.workloads.listings import SETUP, all_listing_sql
from repro.workloads.paper_data import load_paper_tables


def build_database(*, track_progress: bool) -> Database:
    db = Database(track_progress=track_progress)
    load_paper_tables(db)
    for ddl in SETUP.values():
        db.execute(ddl)
    return db


def _best_of(thunk, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - start)
    return best


def measure_observability(*, repeats: int = 3) -> dict:
    """Time every paper listing with tracking off and on.

    Returns the snapshot's ``observability`` section::

        {"repeats": N,
         "queries": {name: {"rows": n, "off_ms": ..., "on_ms": ...}},
         "total_off_ms": ..., "total_on_ms": ..., "overhead_pct": ...}

    ``overhead_pct`` is informational (micro-listing jitter makes a
    per-entry ratio meaningless); the regression gate works on the
    flattened ``<name>:off`` / ``<name>:on`` wall times instead, so a
    slowdown on the *off* side fails CI like any other perf regression.
    """
    off_db = build_database(track_progress=False)
    on_db = build_database(track_progress=True)
    listings = all_listing_sql(off_db)

    queries: dict[str, dict] = {}
    total_off = 0.0
    total_on = 0.0
    for name, sql in listings.items():
        rows = len(off_db.execute(sql).rows)
        tracked_rows = len(on_db.execute(sql).rows)
        assert tracked_rows == rows, (
            f"{name}: tracking changed the result ({rows} -> {tracked_rows})"
        )
        off_s = _best_of(lambda: off_db.execute(sql), repeats)
        on_s = _best_of(lambda: on_db.execute(sql), repeats)
        total_off += off_s
        total_on += on_s
        queries[name] = {
            "rows": rows,
            "off_ms": round(off_s * 1000.0, 3),
            "on_ms": round(on_s * 1000.0, 3),
        }
    return {
        "repeats": repeats,
        "queries": queries,
        "total_off_ms": round(total_off * 1000.0, 3),
        "total_on_ms": round(total_on * 1000.0, 3),
        "overhead_pct": round(
            (total_on - total_off) / total_off * 100.0, 1
        )
        if total_off
        else 0.0,
    }


# -- pytest-benchmark series --------------------------------------------------


def test_tracking_off_is_default():
    assert Database().progress_enabled() is False


def test_results_identical_under_tracking():
    """Tracking must never change what a query returns."""
    off_db = build_database(track_progress=False)
    on_db = build_database(track_progress=True)
    for name, sql in all_listing_sql(off_db).items():
        assert on_db.execute(sql).rows == off_db.execute(sql).rows, name


def test_listing1_tracking_off(benchmark):
    db = build_database(track_progress=False)
    sql = all_listing_sql(db)["listing1"]
    result = benchmark(db.execute, sql)
    assert len(result.rows) == 3


def test_listing1_tracking_on(benchmark):
    db = build_database(track_progress=True)
    sql = all_listing_sql(db)["listing1"]
    result = benchmark(db.execute, sql)
    assert len(result.rows) == 3
    assert db.progress_enabled()


def test_rollup_visible_tracking_off(benchmark):
    db = build_database(track_progress=False)
    sql = all_listing_sql(db)["listing8"]
    benchmark(db.execute, sql)


def test_rollup_visible_tracking_on(benchmark):
    db = build_database(track_progress=True)
    sql = all_listing_sql(db)["listing8"]
    benchmark(db.execute, sql)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="benchmarks.bench_observability",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--quick", action="store_true", help="repeats=1 (CI smoke)"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N (default 3)"
    )
    args = parser.parse_args(argv)
    section = measure_observability(repeats=1 if args.quick else args.repeats)
    width = max(len(name) for name in section["queries"])
    print(f"{'listing':<{width}}  {'off ms':>8}  {'on ms':>8}")
    for name, entry in section["queries"].items():
        print(
            f"{name:<{width}}  {entry['off_ms']:>8.3f}  {entry['on_ms']:>8.3f}"
        )
    print(
        f"total off {section['total_off_ms']}ms, on {section['total_on_ms']}ms "
        f"({section['overhead_pct']:+.1f}%)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
