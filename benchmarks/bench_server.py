"""F10: the query server — session throughput and plan-cache latency.

Two questions, answered with the in-process :class:`Session` API (no
sockets, so the numbers measure the engine and lock discipline rather
than the kernel's TCP stack):

* **Throughput** — statements/second with 1, 4, and 16 concurrent reader
  sessions over one shared Database.  Readers share the read side of the
  ``Database.rwlock``, so throughput should not collapse as sessions are
  added; the plan cache means only the first run of each statement pays
  for planning.
* **Latency** — cache-hit replay versus cold plan for the same statement.
  A hit skips the rewrite/bind/optimize pipeline entirely, which for
  measure queries is the bulk of sub-millisecond statement cost.

``measure_server()`` returns the JSON-ready dict that
``benchmarks.report --snapshot`` embeds under the snapshot's ``server``
key; the pytest-benchmark tests report the same latency pair as wall
clock under the usual harness.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import Database
from repro.server import SessionManager
from repro.workloads.listings import SETUP
from repro.workloads.paper_data import load_paper_tables

SESSION_COUNTS = (1, 4, 16)

#: The statement mix each session replays: paper listings of three
#: different planning weights (plain aggregate, view measure, AT modifier).
THROUGHPUT_QUERIES = (
    """SELECT prodName, COUNT(*) AS c,
              (SUM(revenue) - SUM(cost)) / SUM(revenue) AS profitMargin
       FROM Orders GROUP BY prodName ORDER BY prodName""",
    """SELECT orderDate, prodName, AGGREGATE(profitMargin) AS profitMargin
       FROM EnhancedOrders GROUP BY orderDate, prodName
       ORDER BY orderDate, prodName""",
    """SELECT prodName, sumRevenue,
              sumRevenue / sumRevenue AT (ALL prodName) AS share
       FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders) AS o
       GROUP BY prodName ORDER BY prodName""",
)

#: The statement used for the cold-vs-hit latency pair: a measure query,
#: so a cold plan pays for the full measure rewrite.
LATENCY_QUERY = THROUGHPUT_QUERIES[1]


def _server_database() -> Database:
    db = Database(telemetry=True)
    load_paper_tables(db)
    for ddl in SETUP.values():
        db.execute(ddl)
    return db


def _throughput(
    manager: SessionManager, sessions: int, rounds: int
) -> dict:
    """Run ``rounds`` passes of the statement mix in each of ``sessions``
    concurrent sessions; returns wall time and statements/second."""
    barrier = threading.Barrier(sessions + 1)
    errors: list = []

    def worker() -> None:
        session = manager.open_session(label="bench")
        try:
            barrier.wait()
            for _ in range(rounds):
                for sql in THROUGHPUT_QUERIES:
                    session.execute(sql)
        except Exception as exc:  # pragma: no cover - surfaced by caller
            errors.append(exc)
        finally:
            session.close()

    threads = [threading.Thread(target=worker) for _ in range(sessions)]
    for t in threads:
        t.start()
    barrier.wait()
    start = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    if errors:
        raise errors[0]
    statements = sessions * rounds * len(THROUGHPUT_QUERIES)
    return {
        "sessions": sessions,
        "statements": statements,
        "wall_ms": round(wall * 1000.0, 3),
        "statements_per_s": round(statements / wall, 1) if wall else None,
    }


def _latency_pair(manager: SessionManager, repeats: int) -> dict:
    """Best-of-``repeats`` wall time for a cold plan (cache cleared before
    every run) versus a cache-hit replay of the same statement."""
    session = manager.open_session(label="bench-latency")
    try:
        cold = []
        for _ in range(repeats):
            manager.plan_cache.invalidate_all("clear")
            start = time.perf_counter()
            session.execute(LATENCY_QUERY)
            cold.append(time.perf_counter() - start)
        session.execute(LATENCY_QUERY)  # prime
        hits = []
        for _ in range(repeats):
            start = time.perf_counter()
            session.execute(LATENCY_QUERY)
            hits.append(time.perf_counter() - start)
    finally:
        session.close()
    cold_ms = min(cold) * 1000.0
    hit_ms = min(hits) * 1000.0
    return {
        "cold_plan_ms": round(cold_ms, 3),
        "cache_hit_ms": round(hit_ms, 3),
        "speedup": round(cold_ms / hit_ms, 2) if hit_ms else None,
    }


def measure_server(
    *,
    session_counts=SESSION_COUNTS,
    rounds: int = 10,
    latency_repeats: int = 5,
) -> dict:
    """The snapshot's ``server`` section: throughput series + latency pair."""
    db = _server_database()
    manager = SessionManager(db)
    throughput = [
        _throughput(manager, sessions, rounds) for sessions in session_counts
    ]
    latency = _latency_pair(manager, latency_repeats)
    stats = manager.plan_cache.stats()
    return {
        "queries": len(THROUGHPUT_QUERIES),
        "rounds": rounds,
        "throughput": throughput,
        "latency": latency,
        "plan_cache": stats,
    }


# -- pytest-benchmark harness --------------------------------------------------


@pytest.fixture(scope="module")
def server_manager():
    db = _server_database()
    return SessionManager(db)


def test_f10_cold_plan_latency(benchmark, server_manager):
    session = server_manager.open_session()
    benchmark.group = "F10 plan cache"

    def cold():
        server_manager.plan_cache.invalidate_all("clear")
        return session.execute(LATENCY_QUERY)

    result = benchmark(cold)
    assert len(result.rows) > 0
    session.close()


def test_f10_cache_hit_latency(benchmark, server_manager):
    session = server_manager.open_session()
    session.execute(LATENCY_QUERY)  # prime the shared cache
    benchmark.group = "F10 plan cache"
    result = benchmark(session.execute, LATENCY_QUERY)
    assert len(result.rows) > 0
    session.close()


def test_f10_cache_hit_beats_cold_plan():
    """The acceptance criterion, asserted deterministically: replaying a
    cached plan must be faster than planning cold (best-of-5 each)."""
    db = _server_database()
    manager = SessionManager(db)
    latency = _latency_pair(manager, repeats=5)
    assert latency["cache_hit_ms"] < latency["cold_plan_ms"], latency


def test_f10_throughput_scales_without_collapse():
    """16 reader sessions must process at least as many total statements
    as 1 session does in similar wall time — the read lock admits them
    concurrently, so aggregate throughput must not fall off a cliff."""
    db = _server_database()
    manager = SessionManager(db)
    single = _throughput(manager, 1, rounds=6)
    many = _throughput(manager, 16, rounds=6)
    # Total work scaled 16x; wall time must grow far less than 16x (GIL
    # serializes CPU work, so near-flat per-statement cost is the bar).
    assert many["wall_ms"] < single["wall_ms"] * 16 * 2
    assert manager.plan_cache.stats()["hits"] > 0
