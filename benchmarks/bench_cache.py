"""F02: the context-memoization ablation (paper section 5.1).

The paper's "localized self-join" strategy caches per-context aggregate
results in memory.  ``Database(cache=False)`` disables both the context memo
AND the per-dimension source indexes, so every output row re-aggregates its
context from a full source scan — O(groups x source) work; with caching on,
each distinct context costs an index intersection and is computed once.  The
counters make the asymptotic difference deterministic; wall clock is
reported by pytest-benchmark.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.workloads import WorkloadConfig, load_workload

SIZES = [200, 800, 2400]

QUERY = """SELECT prodName, custName, AGGREGATE(rev) AS r,
                  rev AT (ALL custName) AS prodTotal,
                  rev AT (ALL) AS grandTotal
           FROM eo GROUP BY prodName, custName"""


def build(size: int, cache: bool) -> Database:
    db = Database(cache=cache)
    load_workload(db, WorkloadConfig(orders=size, products=10, customers=20))
    db.execute(
        """CREATE VIEW eo AS
           SELECT prodName, custName, SUM(revenue) AS MEASURE rev FROM Orders"""
    )
    return db


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("cache", [True, False], ids=["cache-on", "cache-off"])
def test_f02_cache_series(benchmark, size, cache):
    db = build(size, cache)
    benchmark.group = f"F02 cache n={size}"
    result = benchmark(db.execute, QUERY)
    assert len(result.rows) > 0


def test_f02_cache_collapses_grand_total_to_one_evaluation():
    db = build(800, cache=True)
    result = db.execute(QUERY)
    stats = db.last_stats
    groups = len(result.rows)
    # 3 measure uses x groups requested...
    assert stats.measure_evaluations == 3 * groups
    # ...but the grand total is computed once, the per-product totals once
    # per product, and each group context once.
    products = db.execute("SELECT COUNT(DISTINCT prodName) FROM Orders").scalar()
    expected_distinct = groups + products + 1
    assert stats.measure_evaluations - stats.measure_cache_hits == expected_distinct


def test_f02_without_cache_every_evaluation_is_recomputed():
    hot = build(800, cache=True)
    cold = build(800, cache=False)
    hot.execute(QUERY)
    cold.execute(QUERY)
    # Same number of evaluation *requests*...
    assert cold.last_stats.measure_evaluations == hot.last_stats.measure_evaluations
    # ...but without memoization every one re-filters the source relation
    # (the grand total alone is recomputed once per group).
    assert cold.last_stats.measure_cache_hits == 0
    assert hot.last_stats.measure_cache_hits > 0.5 * hot.last_stats.measure_evaluations


def test_f02_results_identical():
    hot = build(400, cache=True)
    cold = build(400, cache=False)
    assert sorted(hot.execute(QUERY).rows) == sorted(cold.execute(QUERY).rows)
