"""F03: the conciseness claim (paper sections 3.1 and 5.7).

Measures exist so that queries need no repeated subqueries or self-joins;
the paper argues this helps humans and LLMs alike.  We quantify it: for a
set of analytic questions over the retail workload, compare the character
and token counts of the measure formulation against the plain SQL the
engine expands it to, and benchmark the expansion itself.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import workload_db
from repro.sql.lexer import tokenize

#: (question, measure formulation). The plain-SQL cost is derived by
#: expansion, guaranteeing both formulations mean the same thing.
QUESTIONS = [
    (
        "margin-by-product",
        """SELECT prodName, AGGREGATE(margin) AS m FROM eo
           GROUP BY prodName""",
    ),
    (
        "share-of-total",
        """SELECT prodName, rev / rev AT (ALL prodName) AS share FROM eo
           GROUP BY prodName""",
    ),
    (
        "year-over-year",
        """SELECT prodName, orderYear,
                  rev / rev AT (SET orderYear = CURRENT orderYear - 1) AS yoy
           FROM eo GROUP BY prodName, orderYear""",
    ),
    (
        "above-average-orders",
        """SELECT o.prodName, o.orderDate FROM
           (SELECT prodName, orderDate, revenue,
                   AVG(revenue) AS MEASURE avgRev FROM Orders) AS o
           WHERE o.revenue > o.avgRev AT (WHERE prodName = o.prodName)""",
    ),
    (
        "multi-context-dashboard",
        """SELECT prodName, orderYear,
                  AGGREGATE(rev) AS r,
                  rev AT (ALL orderYear) AS allTime,
                  rev AT (SET orderYear = CURRENT orderYear - 1) AS lastYear,
                  rev / rev AT (ALL prodName) AS share
           FROM eo GROUP BY prodName, orderYear""",
    ),
]


def token_count(sql: str) -> int:
    return len(tokenize(sql)) - 1  # minus EOF


@pytest.mark.parametrize("name,sql", QUESTIONS, ids=[n for n, _ in QUESTIONS])
def test_f03_expansion_cost(benchmark, name, sql):
    db = workload_db(200)
    benchmark.group = "F03 expansion time"
    expanded = benchmark(db.expand, sql)
    measure_tokens = token_count(sql)
    plain_tokens = token_count(expanded)
    print(
        f"\nF03 {name}: measures={measure_tokens} tokens, "
        f"expanded SQL={plain_tokens} tokens, "
        f"ratio={plain_tokens / measure_tokens:.2f}x"
    )
    # The measure formulation is never longer, and the dashboard-style
    # queries are several times shorter (the paper's conciseness claim).
    assert measure_tokens <= plain_tokens


def test_f03_series_summary(benchmark):
    """One-shot summary across all questions (the figure's data series)."""
    db = workload_db(200)

    def run():
        rows = []
        for name, sql in QUESTIONS:
            expanded = db.expand(sql)
            rows.append((name, token_count(sql), token_count(expanded)))
        return rows

    rows = benchmark(run)
    print("\nF03 conciseness series (question, measure tokens, plain tokens):")
    total_ratio = 1.0
    for name, m, p in rows:
        print(f"  {name:25s} {m:4d} {p:5d}  ({p / m:.2f}x)")
        total_ratio *= p / m
    geomean = total_ratio ** (1 / len(rows))
    print(f"  geometric-mean blowup of plain SQL: {geomean:.2f}x")
    assert geomean > 1.5  # plain SQL is substantially longer on average
