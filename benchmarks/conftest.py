"""Shared fixtures for the benchmark harness.

Every benchmark family in DESIGN.md's per-experiment index lives in one
module here.  Workload databases are built once per size and cached for the
whole session; all generation is seeded, so runs are reproducible.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.workloads import WorkloadConfig, load_workload
from repro.workloads.paper_data import load_paper_tables

_workload_cache: dict[tuple, Database] = {}


@pytest.fixture
def paper_db() -> Database:
    db = Database()
    load_paper_tables(db)
    return db


@pytest.fixture
def orders_db(paper_db: Database) -> Database:
    paper_db.execute(
        """CREATE VIEW EnhancedOrders AS
           SELECT orderDate, prodName,
                  (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin
           FROM Orders"""
    )
    return paper_db


def workload_db(orders: int, *, cache: bool = True, optimizer: bool = True) -> Database:
    """A measure-enabled synthetic workload database, memoized per config."""
    key = (orders, cache, optimizer)
    if key not in _workload_cache:
        db = Database(cache=cache, optimizer=optimizer)
        load_workload(
            db, WorkloadConfig(orders=orders, products=20, customers=50)
        )
        db.execute(
            """CREATE VIEW eo AS
               SELECT prodName, custName, YEAR(orderDate) AS orderYear,
                      SUM(revenue) AS MEASURE rev,
                      AVG(revenue) AS MEASURE avgRev,
                      (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE margin
               FROM Orders"""
        )
        _workload_cache[key] = db
    return _workload_cache[key]
