"""F01 / A01: performance of the four Listing-12 formulations vs data size.

The paper's section 5.1 claims the formulations are equivalent and that the
formulations touching the input once (window aggregates, measures with the
"localized self-join" cache) beat naive repeated evaluation.  We regenerate
that comparison as a series over workload sizes: the measure interpreter
(cached), the three classic formulations, plus the expanded-SQL strategies.

"Who wins" is asserted through deterministic work counters (subquery
executions, measure evaluations), not wall-clock, so the suite is stable;
pytest-benchmark reports the wall-clock series alongside.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import workload_db

SIZES = [200, 1000, 4000]

FORMULATIONS = {
    "q1-correlated-subquery": """
        SELECT o.prodName, o.orderDate FROM Orders AS o
        WHERE o.revenue > (SELECT AVG(revenue) FROM Orders AS o1
                           WHERE o1.prodName = o.prodName)""",
    "q2-self-join": """
        SELECT o.prodName, o.orderDate FROM Orders AS o
        LEFT JOIN (SELECT prodName, AVG(revenue) AS avgRevenue
                   FROM Orders GROUP BY prodName) AS o2
          ON o.prodName = o2.prodName
        WHERE o.revenue > o2.avgRevenue""",
    "q3-window-aggregate": """
        SELECT o.prodName, o.orderDate FROM
          (SELECT prodName, revenue, orderDate,
                  AVG(revenue) OVER (PARTITION BY prodName) AS avgRevenue
           FROM Orders) AS o
        WHERE o.revenue > o.avgRevenue""",
    "q4-measures": """
        SELECT o.prodName, o.orderDate FROM
          (SELECT prodName, orderDate, revenue,
                  AVG(revenue) AS MEASURE avgRevenue FROM Orders) AS o
        WHERE o.revenue > o.avgRevenue AT (WHERE prodName = o.prodName)""",
}


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("variant", list(FORMULATIONS))
def test_f01_formulations(benchmark, variant, size):
    db = workload_db(size)
    benchmark.group = f"F01 listing12 n={size}"
    result = benchmark(db.execute, FORMULATIONS[variant])
    assert len(result.rows) > 0


def test_f01_all_formulations_agree():
    db = workload_db(1000)
    results = {
        name: sorted(db.execute(sql).rows) for name, sql in FORMULATIONS.items()
    }
    baseline = results["q1-correlated-subquery"]
    assert all(rows == baseline for rows in results.values())


def test_f01_measures_touch_input_once_per_group():
    """The measures formulation evaluates one aggregate per product, not per
    row — the paper's 'localized self-join' win over naive evaluation."""
    db = workload_db(1000)
    db.execute(FORMULATIONS["q4-measures"])
    stats = db.last_stats
    products = db.execute("SELECT COUNT(DISTINCT prodName) FROM Orders").scalar()
    orders = db.execute("SELECT COUNT(*) FROM Orders").scalar()
    assert stats.measure_evaluations == orders  # one *request* per row...
    # ...but only one *computation* per product: the rest are cache hits.
    assert stats.measure_evaluations - stats.measure_cache_hits == products


EXPANSION_STRATEGIES = ["interpret", "subquery", "window"]


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("strategy", EXPANSION_STRATEGIES)
def test_a01_strategy_execution(benchmark, strategy, size):
    """A01 ablation: the same measure query under each evaluation strategy."""
    db = workload_db(size)
    sql = FORMULATIONS["q4-measures"]
    benchmark.group = f"A01 strategy n={size}"
    if strategy == "interpret":
        result = benchmark(db.execute, sql)
    else:
        rewritten = db.expand(sql, strategy=strategy)
        result = benchmark(db.execute, rewritten)
    assert len(result.rows) > 0


@pytest.mark.parametrize("size", [1000])
@pytest.mark.parametrize("strategy", ["inline", "subquery"])
def test_a01_aggregate_site_strategies(benchmark, strategy, size):
    """Inline vs general expansion for the simple GROUP BY shape."""
    db = workload_db(size)
    sql = """SELECT prodName, AGGREGATE(margin) AS m FROM eo
             GROUP BY prodName ORDER BY prodName"""
    rewritten = db.expand(sql, strategy=strategy)
    benchmark.group = f"A01 aggregate-site n={size}"
    result = benchmark(db.execute, rewritten)
    assert len(result.rows) == 20


@pytest.mark.parametrize("size", [1000])
def test_a01_winmagic_rewrite(benchmark, size):
    """The classic WinMagic rewrite (section 5.1): q1's correlated subquery
    becomes q3's window aggregate, eliminating the second pass."""
    from repro.core.winmagic import winmagic_rewrite
    from repro.sql import parse_query, to_sql

    db = workload_db(size)
    rewritten = to_sql(
        winmagic_rewrite(db, parse_query(FORMULATIONS["q1-correlated-subquery"]))
    )
    benchmark.group = f"A01 strategy n={size}"
    result = benchmark(db.execute, rewritten)
    original = db.execute(FORMULATIONS["q1-correlated-subquery"]).rows
    assert sorted(result.rows) == sorted(original)


def test_a01_strategies_agree_on_workload():
    db = workload_db(1000)
    sql = FORMULATIONS["q4-measures"]
    interpreted = sorted(db.execute(sql).rows)
    for strategy in ("subquery", "window"):
        rewritten = db.expand(sql, strategy=strategy)
        assert sorted(db.execute(rewritten).rows) == interpreted


def test_a01_inline_beats_subquery_in_scans():
    """The inline rewrite scans Orders once; the general expansion runs one
    (cached) subquery per group on top of the outer scan."""
    db = workload_db(1000)
    sql = "SELECT prodName, AGGREGATE(rev) AS r FROM eo GROUP BY prodName"

    inline = db.expand(sql, strategy="inline")
    db.execute(inline)
    inline_scans = db.last_stats.rows_scanned

    subquery = db.expand(sql, strategy="subquery")
    db.execute(subquery)
    subquery_scans = db.last_stats.rows_scanned

    assert inline_scans < subquery_scans
