"""F07: materialized summary tables vs cold measure expansion.

A repeated dashboard query — total revenue by product over a measure view —
either expands the measure against the full fact table every time (cold), or
is answered from a pre-aggregated summary whose row count is the number of
products (summary hit).  The gap grows linearly with the fact-table size
while the summary path stays flat.

Run standalone for a smoke check (used by CI)::

    python -m benchmarks.bench_matview --quick
"""

from __future__ import annotations

import sys
import time

import pytest

from repro import Database
from repro.workloads import WorkloadConfig, load_workload

SIZES = [500, 2000, 8000]

QUERY = "SELECT prodName, AGGREGATE(rev) AS r FROM eo GROUP BY prodName ORDER BY prodName"

SUMMARY_DDL = """CREATE MATERIALIZED VIEW eo_by_prod AS
                 SELECT prodName, AGGREGATE(rev) AS rev
                 FROM eo GROUP BY prodName"""


def build(size: int, *, summary: bool) -> Database:
    db = Database()
    load_workload(db, WorkloadConfig(orders=size, products=20, customers=50))
    db.execute(
        """CREATE VIEW eo AS
           SELECT prodName, custName, SUM(revenue) AS MEASURE rev FROM Orders"""
    )
    if summary:
        db.execute(SUMMARY_DDL)
    return db


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("summary", [False, True], ids=["cold-expansion", "summary-hit"])
def test_f07_matview_series(benchmark, size, summary):
    db = build(size, summary=summary)
    benchmark.group = f"F07 matview n={size}"
    result = benchmark(db.execute, QUERY)
    assert len(result.rows) > 0


def test_f07_summary_answers_are_identical():
    cold = build(2000, summary=False)
    hot = build(2000, summary=True)
    assert hot.execute(QUERY).rows == cold.execute(QUERY).rows
    assert hot.summary_stats()["eo_by_prod"]["hits"] == 1


def test_f07_summary_scan_is_small():
    hot = build(2000, summary=True)
    hot.execute(QUERY)
    # The hit reads the 20-row summary, not the 2000-row fact table.
    assert hot.last_stats.rows_scanned <= 40


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    size = 800 if quick else 8000
    repeats = 3 if quick else 5

    cold = build(size, summary=False)
    hot = build(size, summary=True)

    def best_of(db: Database) -> float:
        timings = []
        for _ in range(repeats):
            start = time.perf_counter()
            db.execute(QUERY)
            timings.append(time.perf_counter() - start)
        return min(timings)

    cold_rows = cold.execute(QUERY).rows
    hot_rows = hot.execute(QUERY).rows
    if hot_rows != cold_rows:
        print("FAIL: summary answer differs from cold expansion")
        return 1

    cold_time = best_of(cold)
    hot_time = best_of(hot)
    speedup = cold_time / hot_time if hot_time else float("inf")
    print(
        f"F07 matview (n={size}): cold expansion {cold_time * 1000:.2f} ms, "
        f"summary hit {hot_time * 1000:.2f} ms, speedup {speedup:.1f}x"
    )
    if hot_time >= cold_time:
        print("FAIL: summary hit is not faster than cold expansion")
        return 1
    stats = hot.summary_stats()["eo_by_prod"]
    if not stats["hits"]:
        print("FAIL: query did not hit the summary")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
