"""Regenerate every table/listing the paper prints, as one report.

Run with::

    python -m benchmarks.report                       # correctness report
    python -m benchmarks.report --snapshot            # write BENCH_<date>.json
    python -m benchmarks.report --compare OLD NEW     # perf regression gate
    python -m benchmarks.report --telemetry-out T.json  # telemetry artifact

This is the no-timing companion to the pytest-benchmark suite: it prints the
paper's expected values next to the engine's measured output for each
experiment in DESIGN.md's index, and exits non-zero on any mismatch.

``--snapshot`` instead times the paper listings in smoke mode (best of
``--repeats`` runs, profiling off) and captures one
:class:`~repro.profile.QueryProfile` per listing, writing everything to
``BENCH_<YYYY-MM-DD>.json``.  Snapshot schema (``repro-bench-v1``)::

    {
      "schema": "repro-bench-v1",
      "generated": "<ISO-8601 UTC timestamp>",
      "python": "<interpreter version>",
      "platform": "<platform string>",
      "meta": {  # provenance; --compare ignores it entirely
        "git_commit": "<HEAD sha>" | null,
        "python": "<interpreter version>",
        "platform": "<platform string>",
        "schema_date": "<YYYY-MM-DD>"
      },
      "repeats": <best-of-N>,
      "listings": {
        "<name>": {
          "wall_ms": <best wall time, profiling off>,
          "rows": <result cardinality>,
          "profile": { <QueryProfile.to_dict()> }
        }, ...
      },
      "pytest_benchmark": { <--from file, verbatim "benchmarks" list> | null },
      "server": { <benchmarks.bench_server.measure_server() dict> },
      "tpch": { <benchmarks.bench_tpch.measure_tpch() dict at SF 0.01> },
      "observability": { <benchmarks.bench_observability.measure_observability()> }
    }

``--compare`` gates on the sections both snapshots share: ``listings``
always, ``tpch`` and ``observability`` once both sides carry them
(TPC-H entries are flattened to
``tpch:<query>:<cold|matview_hit|plan_cache_hot>`` labels, the
observability pairs to ``<listing>:off`` / ``<listing>:on`` — so a PR
that makes progress tracking cost something *when off* fails the gate
like any other regression).  A section present in only one snapshot —
e.g. an old baseline from before the ``tpch`` section existed — is
reported and skipped, never a failure, so snapshots stay comparable
across schema growth.  The ``server`` key is never gated (it has its
own harness).  When ``$GITHUB_STEP_SUMMARY`` is set (GitHub Actions),
``--compare`` also appends its markdown tables there, so the diff shows
up on the workflow run page.

CI runs this after the benchmark job and uploads the file as an artifact, so
the repo accumulates a comparable perf trajectory across commits.
"""

from __future__ import annotations

import sys

from repro import Database
from repro.workloads.paper_data import load_paper_tables

SNAPSHOT_SCHEMA = "repro-bench-v1"

FAILURES: list[str] = []


def check(label: str, condition: bool) -> None:
    status = "ok" if condition else "MISMATCH"
    print(f"  [{status}] {label}")
    if not condition:
        FAILURES.append(label)


def section(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


# -- perf snapshot (--snapshot) ---------------------------------------------

#: The timed listing set: every paper query the report checks, by name.
#: Queries that need views get them from :func:`_snapshot_database`.
SNAPSHOT_QUERIES: dict[str, str] = {
    "e02-listing1": """SELECT prodName, COUNT(*) AS c,
                  (SUM(revenue) - SUM(cost)) / SUM(revenue) AS profitMargin
           FROM Orders GROUP BY prodName ORDER BY prodName""",
    "e04-listing4": """SELECT prodName, AGGREGATE(profitMargin), COUNT(*)
           FROM EnhancedOrders GROUP BY prodName ORDER BY prodName""",
    "e06-listing6": """SELECT prodName, sumRevenue,
                  sumRevenue / sumRevenue AT (ALL prodName) AS proportionOfTotalRevenue
           FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders) AS o
           GROUP BY prodName ORDER BY prodName""",
    "e07-listing7": """SELECT prodName, orderYear, profitMargin,
                  profitMargin AT (SET orderYear = CURRENT orderYear - 1)
                    AS profitMarginLastYear
           FROM (SELECT *,
                   (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin,
                   YEAR(orderDate) AS orderYear
                 FROM Orders)
           WHERE orderYear = 2024 GROUP BY prodName, orderYear""",
    "e08-listing8": """SELECT o.prodName, COUNT(*) AS c,
                  AGGREGATE(o.sumRevenue) AS rAgg,
                  o.sumRevenue AT (VISIBLE) AS rViz,
                  o.sumRevenue AS r
           FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders) AS o
           WHERE o.custName <> 'Bob'
           GROUP BY ROLLUP(o.prodName) ORDER BY o.prodName NULLS LAST""",
    "e09-listing9": """WITH EnhancedCustomers AS (
             SELECT *, AVG(custAge) AS MEASURE avgAge FROM Customers)
           SELECT o.prodName, COUNT(*) AS orderCount,
                  AVG(c.custAge) AS weightedAvgAge,
                  c.avgAge AS avgAge,
                  c.avgAge AT (VISIBLE) AS visibleAvgAge
           FROM Orders AS o JOIN EnhancedCustomers AS c USING (custName)
           WHERE c.custAge >= 18 GROUP BY o.prodName ORDER BY o.prodName""",
    "e10-listing10": """SELECT prodName, YEAR(orderDate) AS orderYear,
                      sumRevenue / sumRevenue AT (SET orderYear = CURRENT orderYear - 1) AS ratio
               FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue,
                            YEAR(orderDate) AS orderYear FROM Orders)
               GROUP BY prodName, YEAR(orderDate) ORDER BY prodName, orderYear""",
    "e12-modifier-matrix": """SELECT prodName, r AS base, r AT (ALL) AS grandTotal,
                  r AT (ALL custName) AS allCust,
                  r AT (SET orderYear = CURRENT orderYear - 1) AS lastYear,
                  r AT (VISIBLE) AS vis,
                  r AT (WHERE orderYear = 2023) AS y2023
           FROM mv WHERE custName <> 'Bob'
           GROUP BY prodName ORDER BY prodName""",
}


def _snapshot_database() -> Database:
    db = Database()
    load_paper_tables(db)
    db.execute(
        """CREATE VIEW EnhancedOrders AS
           SELECT orderDate, prodName,
                  (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin
           FROM Orders"""
    )
    db.execute(
        """CREATE VIEW mv AS
           SELECT prodName, custName, YEAR(orderDate) AS orderYear,
                  SUM(revenue) AS MEASURE r FROM Orders"""
    )
    return db


def snapshot_meta(now=None) -> dict:
    """Provenance for one snapshot: where, when, and on what it was taken.

    ``git_commit`` is None outside a git checkout (e.g. a source tarball);
    the regression gate never reads this section, so older snapshots that
    lack it entirely remain valid ``--compare`` baselines.
    """
    import platform
    import subprocess
    from datetime import datetime, timezone

    if now is None:
        now = datetime.now(timezone.utc)
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        commit = None
    return {
        "git_commit": commit,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "schema_date": now.date().isoformat(),
    }


def write_snapshot(
    out_path: str | None = None,
    *,
    repeats: int = 3,
    pytest_json: str | None = None,
) -> str:
    """Time every snapshot listing and write ``BENCH_<date>.json``.

    Wall times are best-of-``repeats`` with profiling OFF (so the number is
    comparable to production execution); the attached profile comes from one
    additional profiled run.  Returns the path written.
    """
    import json
    import os
    import platform
    from datetime import datetime, timezone

    from benchmarks.bench_listings import LISTING12

    db = _snapshot_database()
    queries = dict(SNAPSHOT_QUERIES)
    for name, sql in LISTING12.items():
        queries[f"e11-{name}"] = sql

    listings: dict[str, dict] = {}
    for name, sql in queries.items():
        best = min(
            _timed_run(db, sql) for _ in range(max(1, repeats))
        )
        db.profile_enabled = True
        try:
            result = db.execute(sql)
            profile = db.last_profile()
        finally:
            db.profile_enabled = False
        listings[name] = {
            "wall_ms": round(best * 1000.0, 3),
            "rows": len(result.rows),
            "profile": profile.to_dict(),
        }

    embedded = None
    if pytest_json is not None:
        with open(pytest_json) as handle:
            embedded = json.load(handle).get("benchmarks")

    from benchmarks.bench_observability import measure_observability
    from benchmarks.bench_server import measure_server
    from benchmarks.bench_tpch import SNAPSHOT_QUERY_NAMES, measure_tpch

    now = datetime.now(timezone.utc)
    payload = {
        "schema": SNAPSHOT_SCHEMA,
        "generated": now.isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "meta": snapshot_meta(now),
        "repeats": repeats,
        "listings": listings,
        "pytest_benchmark": embedded,
        "server": measure_server(),
        "tpch": measure_tpch(
            sf=0.01, repeats=repeats, queries=SNAPSHOT_QUERY_NAMES
        ),
        "observability": measure_observability(repeats=repeats),
    }
    if out_path is None:
        out_path = f"BENCH_{now.date().isoformat()}.json"
    elif out_path.endswith(os.sep) or os.path.isdir(out_path):
        os.makedirs(out_path, exist_ok=True)
        out_path = os.path.join(out_path, f"BENCH_{now.date().isoformat()}.json")
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path} ({len(listings)} listings)")
    return out_path


def _timed_run(db: Database, sql: str) -> float:
    import time

    start = time.perf_counter()
    db.execute(sql)
    return time.perf_counter() - start


# -- regression gate (--compare) ---------------------------------------------

#: Default relative noise threshold for the regression gate.  In-process
#: wall times on shared CI runners jitter heavily at the sub-millisecond
#: scale these listings run at, so the gate only fails on a wall-time
#: increase of more than 50% that is ALSO more than 2ms in absolute terms.
COMPARE_THRESHOLD = 0.5
COMPARE_ABS_FLOOR_MS = 2.0


def _load_snapshot(path: str) -> dict:
    """Load and validate one snapshot; any problem is a one-line SystemExit
    (the CI gate should report "file missing" or "schema drift", never a
    traceback)."""
    import json

    try:
        with open(path) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise SystemExit(f"{path}: snapshot file not found") from None
    except OSError as exc:
        raise SystemExit(f"{path}: cannot read snapshot: {exc}") from None
    except json.JSONDecodeError as exc:
        raise SystemExit(f"{path}: snapshot is not valid JSON: {exc}") from None
    if not isinstance(payload, dict) or payload.get("schema") != SNAPSHOT_SCHEMA:
        got = payload.get("schema") if isinstance(payload, dict) else type(payload).__name__
        raise SystemExit(
            f"{path}: expected schema {SNAPSHOT_SCHEMA!r}, got {got!r}"
        )
    return payload


#: The snapshot sections the regression gate knows how to flatten, in the
#: order they are reported.  ``server`` is deliberately absent (it has its
#: own harness and no per-entry wall_ms shape).
GATED_SECTIONS = ("listings", "tpch", "observability")


def _flatten_sections(payload: dict) -> dict[str, dict[str, dict]]:
    """Flatten a snapshot into ``{section: {label: {wall_ms, rows}}}``.

    Only sections actually present in the payload appear in the result, so
    the gate can intersect old and new instead of assuming both carry every
    section (old baselines predate ``tpch``).
    """
    sections: dict[str, dict[str, dict]] = {}
    listings = payload.get("listings")
    if isinstance(listings, dict):
        sections["listings"] = {
            name: {"wall_ms": entry["wall_ms"], "rows": entry.get("rows")}
            for name, entry in listings.items()
        }
    tpch = payload.get("tpch")
    if isinstance(tpch, dict):
        flat: dict[str, dict] = {}
        for name, entry in tpch.get("queries", {}).items():
            for series in ("cold_ms", "matview_hit_ms", "plan_cache_hot_ms"):
                if series in entry:
                    flat[f"{name}:{series[: -len('_ms')]}"] = {
                        "wall_ms": entry[series],
                        "rows": entry.get("rows"),
                    }
        sections["tpch"] = flat
    observability = payload.get("observability")
    if isinstance(observability, dict):
        flat = {}
        for name, entry in observability.get("queries", {}).items():
            for series in ("off_ms", "on_ms"):
                if series in entry:
                    flat[f"{name}:{series[: -len('_ms')]}"] = {
                        "wall_ms": entry[series],
                        "rows": entry.get("rows"),
                    }
        sections["observability"] = flat
    return sections


def _compare_section(
    section: str,
    old_entries: dict[str, dict],
    new_entries: dict[str, dict],
    *,
    threshold: float,
    abs_floor_ms: float,
    new_path: str,
    out,
) -> list[str]:
    """Diff one flattened section; print its table, return failure lines."""
    rows: list[tuple[str, str, str, str, str]] = []
    failures: list[str] = []
    for name in sorted(old_entries):
        entry = old_entries[name]
        candidate = new_entries.get(name)
        old_ms = float(entry["wall_ms"])
        if candidate is None:
            rows.append((name, f"{old_ms:.3f}", "-", "-", "REMOVED"))
            failures.append(f"{section}/{name}: entry missing from {new_path}")
            continue
        new_ms = float(candidate["wall_ms"])
        delta = new_ms - old_ms
        pct = (delta / old_ms * 100.0) if old_ms else float("inf")
        pct_text = f"{pct:+.1f}%" if pct != float("inf") else "+inf"
        if candidate.get("rows") != entry.get("rows"):
            status = "ROWS CHANGED"
            failures.append(
                f"{section}/{name}: result cardinality changed "
                f"({entry.get('rows')} -> {candidate.get('rows')})"
            )
        elif delta > abs_floor_ms and old_ms and delta > old_ms * threshold:
            status = "REGRESSION"
            failures.append(
                f"{section}/{name}: {old_ms:.3f}ms -> {new_ms:.3f}ms ({pct_text})"
            )
        elif -delta > abs_floor_ms and old_ms and -delta > old_ms * threshold:
            status = "improved"
        else:
            status = "ok"
        rows.append(
            (name, f"{old_ms:.3f}", f"{new_ms:.3f}", pct_text, status)
        )
    for name in sorted(set(new_entries) - set(old_entries)):
        new_ms = float(new_entries[name]["wall_ms"])
        rows.append((name, "-", f"{new_ms:.3f}", "-", "added"))

    print(f"## {section}", file=out)
    print(file=out)
    print(f"| {section} | old ms | new ms | delta | status |", file=out)
    print("|---|---:|---:|---:|---|", file=out)
    for name, old_ms, new_ms, pct_text, status in rows:
        print(
            f"| {name} | {old_ms} | {new_ms} | {pct_text} | {status} |",
            file=out,
        )
    print(file=out)
    return failures


class _Tee:
    """Write-through stream fan-out (stdout + ``$GITHUB_STEP_SUMMARY``)."""

    def __init__(self, *streams) -> None:
        self._streams = streams

    def write(self, text: str) -> None:
        for stream in self._streams:
            stream.write(text)

    def flush(self) -> None:
        for stream in self._streams:
            stream.flush()


def compare_snapshots(
    old_path: str,
    new_path: str,
    *,
    threshold: float = COMPARE_THRESHOLD,
    abs_floor_ms: float = COMPARE_ABS_FLOOR_MS,
    out=None,
) -> int:
    """Diff two repro-bench-v1 snapshots; the CI perf gate.

    Gates every section present in BOTH snapshots (``listings``, and
    ``tpch`` / ``observability`` once both sides carry them).  An entry regresses when its wall
    time grows by more than ``threshold`` (relative) AND more than
    ``abs_floor_ms`` (absolute) — both conditions, so micro-listings
    cannot fail on scheduler noise.  Row-count changes and entries missing
    from the new snapshot always fail.  A section present in only one
    snapshot is reported and skipped — a baseline captured before a
    section existed must stay usable as a gate, not crash or false-fail.
    Prints markdown tables and returns the exit code (0 clean, 1
    regressions found).
    """
    out = out or sys.stdout
    old_sections = _flatten_sections(_load_snapshot(old_path))
    new_sections = _flatten_sections(_load_snapshot(new_path))

    print(f"# Bench comparison: {old_path} -> {new_path}", file=out)
    print(file=out)
    print(
        f"Gate: fail when wall time grows > {threshold * 100:.0f}% "
        f"and > {abs_floor_ms}ms.",
        file=out,
    )
    print(file=out)

    failures: list[str] = []
    for section in GATED_SECTIONS:
        in_old = section in old_sections
        in_new = section in new_sections
        if in_old and in_new:
            failures.extend(
                _compare_section(
                    section,
                    old_sections[section],
                    new_sections[section],
                    threshold=threshold,
                    abs_floor_ms=abs_floor_ms,
                    new_path=new_path,
                    out=out,
                )
            )
        elif in_old or in_new:
            where = new_path if in_new else old_path
            print(
                f"section {section!r} only in {where}: skipped "
                "(not comparable)",
                file=out,
            )
            print(file=out)

    if failures:
        print(f"{len(failures)} FAILURE(S):", file=out)
        for failure in failures:
            print(f"  {failure}", file=out)
        return 1
    print("No regressions.", file=out)
    return 0


# -- telemetry artifact (--telemetry-out) ------------------------------------


def write_telemetry(out_path: str) -> str:
    """Run every snapshot listing under ``Database(telemetry=True)`` and
    write the metrics snapshot, Prometheus text, events, and trace export
    as one JSON artifact (CI uploads it next to the bench snapshot)."""
    import json
    import os
    from datetime import datetime, timezone

    from benchmarks.bench_listings import LISTING12
    from repro.telemetry import Telemetry

    db = _snapshot_database()
    db.telemetry = Telemetry(slow_query_ms=50.0)
    queries = dict(SNAPSHOT_QUERIES)
    for name, sql in LISTING12.items():
        queries[f"e11-{name}"] = sql
    for sql in queries.values():
        db.execute(sql)

    payload = {
        "schema": "repro-telemetry-v1",
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "metrics_text": db.metrics_text(),
        "metrics": db.metrics(),
        "events": db.events(),
        "slow_queries": db.slow_queries(),
        "traces": json.loads(db.export_traces()),
    }
    directory = os.path.dirname(out_path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(out_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    print(f"wrote {out_path} ({len(queries)} listings metered)")
    return out_path


def main() -> int:
    db = Database()
    load_paper_tables(db)
    db.execute(
        """CREATE VIEW EnhancedOrders AS
           SELECT orderDate, prodName,
                  (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin
           FROM Orders"""
    )

    section("E01  Tables 1-2: the paper's data")
    print(db.execute("SELECT * FROM Customers").pretty())
    print()
    print(db.execute("SELECT * FROM Orders").pretty())

    section("E02  Listing 1: summarizing Orders by product")
    result = db.execute(
        """SELECT prodName, COUNT(*) AS c,
                  (SUM(revenue) - SUM(cost)) / SUM(revenue) AS profitMargin
           FROM Orders GROUP BY prodName ORDER BY prodName"""
    )
    print(result.pretty())
    check("margins 0.60/0.47/0.67", [round(r[2], 2) for r in result.rows] == [0.6, 0.47, 0.67])

    section("E04  Listing 4: AGGREGATE(profitMargin)  [paper prints this table]")
    result = db.execute(
        """SELECT prodName, AGGREGATE(profitMargin), COUNT(*)
           FROM EnhancedOrders GROUP BY prodName ORDER BY prodName"""
    )
    print(result.pretty())
    check(
        "matches paper: Acme 0.60/1, Happy 0.47/3, Whizz 0.67/1",
        [(r[0], round(r[1], 2), r[2]) for r in result.rows]
        == [("Acme", 0.6, 1), ("Happy", 0.47, 3), ("Whizz", 0.67, 1)],
    )

    section("E05  Listing 5: expansion to plain SQL")
    query = "SELECT prodName, AGGREGATE(profitMargin) AS pm FROM EnhancedOrders GROUP BY prodName ORDER BY prodName"
    expanded = db.expand(query)
    print(expanded)
    check(
        "expanded SQL returns identical rows",
        db.execute(expanded).rows == db.execute(query).rows,
    )

    section("E06  Listing 6: proportion of total revenue")
    result = db.execute(
        """SELECT prodName, sumRevenue,
                  sumRevenue / sumRevenue AT (ALL prodName) AS proportionOfTotalRevenue
           FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders) AS o
           GROUP BY prodName ORDER BY prodName"""
    )
    print(result.pretty())
    check("shares 0.20/0.68/0.12", [round(r[2], 2) for r in result.rows] == [0.2, 0.68, 0.12])

    section("E07  Listing 7: margins this year vs last (SET + CURRENT)")
    result = db.execute(
        """SELECT prodName, orderYear, profitMargin,
                  profitMargin AT (SET orderYear = CURRENT orderYear - 1)
                    AS profitMarginLastYear
           FROM (SELECT *,
                   (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin,
                   YEAR(orderDate) AS orderYear
                 FROM Orders)
           WHERE orderYear = 2024 GROUP BY prodName, orderYear"""
    )
    print(result.pretty())
    check(
        "Happy 2024: 0.43 this year, 0.33 last year",
        round(result.rows[0][2], 2) == 0.43 and round(result.rows[0][3], 2) == 0.33,
    )

    section("E08  Listing 8: visible totals  [paper prints this table]")
    result = db.execute(
        """SELECT o.prodName, COUNT(*) AS c,
                  AGGREGATE(o.sumRevenue) AS rAgg,
                  o.sumRevenue AT (VISIBLE) AS rViz,
                  o.sumRevenue AS r
           FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders) AS o
           WHERE o.custName <> 'Bob'
           GROUP BY ROLLUP(o.prodName) ORDER BY o.prodName NULLS LAST"""
    )
    print(result.pretty())
    check(
        "matches paper: (Happy 2 13 13 17) (Whizz 1 3 3 3) (- 3 16 16 25)",
        result.rows
        == [("Happy", 2, 13, 13, 17), ("Whizz", 1, 3, 3, 3), (None, 3, 16, 16, 25)],
    )

    section("E09  Listing 9: measures and joins")
    result = db.execute(
        """WITH EnhancedCustomers AS (
             SELECT *, AVG(custAge) AS MEASURE avgAge FROM Customers)
           SELECT o.prodName, COUNT(*) AS orderCount,
                  AVG(c.custAge) AS weightedAvgAge,
                  c.avgAge AS avgAge,
                  c.avgAge AT (VISIBLE) AS visibleAvgAge
           FROM Orders AS o JOIN EnhancedCustomers AS c USING (custName)
           WHERE c.custAge >= 18 GROUP BY o.prodName ORDER BY o.prodName"""
    )
    print(result.pretty())
    check(
        "Happy: weighted 29, unweighted 27, visible 32",
        [round(v, 2) for v in result.rows[1][2:]] == [29.0, 27.0, 32.0],
    )

    section("E10  Listings 10-11: year-over-year ratio and its expansion")
    query = """SELECT prodName, YEAR(orderDate) AS orderYear,
                      sumRevenue / sumRevenue AT (SET orderYear = CURRENT orderYear - 1) AS ratio
               FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue,
                            YEAR(orderDate) AS orderYear FROM Orders)
               GROUP BY prodName, YEAR(orderDate) ORDER BY prodName, orderYear"""
    result = db.execute(query)
    print(result.pretty())
    print("\nExpansion to plain SQL:")
    print(db.expand(query))
    check("expansion agrees", db.execute(db.expand(query)).rows == result.rows)

    print("\nThe paper's Listing 11 (lambda exposition of the same query):")
    from repro.core.lambdas import explain_lambda_semantics

    lambda_text = explain_lambda_semantics(db, query)
    print(lambda_text)
    check(
        "Listing 11 structure (CREATE TYPE / CREATE FUNCTION / compute calls)",
        "CREATE TYPE OrdersRow" in lambda_text
        and "computeSumRevenue(r ->" in lambda_text
        and "APPLY(rowPredicate, o)" in lambda_text,
    )

    section("E11  Listing 12: four equivalent queries")
    from benchmarks.bench_listings import LISTING12

    results = {name: db.execute(sql).rows for name, sql in LISTING12.items()}
    for name, rows in results.items():
        print(f"  {name}: {[(r[0], str(r[1])) for r in rows]}")
    baseline = next(iter(results.values()))
    check("all four formulations agree", all(r == baseline for r in results.values()))

    section("E12  Table 3: context modifiers")
    db.execute(
        """CREATE VIEW mv AS
           SELECT prodName, custName, YEAR(orderDate) AS orderYear,
                  SUM(revenue) AS MEASURE r FROM Orders"""
    )
    result = db.execute(
        """SELECT prodName, r AS base, r AT (ALL) AS grandTotal,
                  r AT (ALL custName) AS allCust,
                  r AT (SET orderYear = CURRENT orderYear - 1) AS lastYear,
                  r AT (VISIBLE) AS vis,
                  r AT (WHERE orderYear = 2023) AS y2023
           FROM mv WHERE custName <> 'Bob'
           GROUP BY prodName ORDER BY prodName"""
    )
    print(result.pretty())
    check("grand total 25 on every row", all(r[2] == 25 for r in result.rows))

    print(f"\n{'=' * 72}")
    if FAILURES:
        print(f"{len(FAILURES)} MISMATCH(ES): {FAILURES}")
        return 1
    print("All paper tables and listings reproduced exactly.")
    return 0


def cli(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="benchmarks.report", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--snapshot",
        action="store_true",
        help="write a BENCH_<date>.json perf snapshot instead of the report",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="snapshot output file or directory (default: BENCH_<date>.json "
        "in the current directory)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="best-of-N wall-time runs per listing (default 3)",
    )
    parser.add_argument(
        "--from",
        dest="pytest_json",
        default=None,
        metavar="PYTEST_JSON",
        help="embed the 'benchmarks' list of a pytest-benchmark --benchmark-json "
        "file into the snapshot",
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD.json", "NEW.json"),
        default=None,
        help="diff two repro-bench-v1 snapshots and exit non-zero on a "
        "wall-time regression (the CI bench gate)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=COMPARE_THRESHOLD,
        help="relative regression threshold for --compare "
        f"(default {COMPARE_THRESHOLD}, i.e. {COMPARE_THRESHOLD * 100:.0f}%%)",
    )
    parser.add_argument(
        "--abs-ms",
        type=float,
        default=COMPARE_ABS_FLOOR_MS,
        help="absolute wall-time floor in ms a regression must also exceed "
        f"(default {COMPARE_ABS_FLOOR_MS})",
    )
    parser.add_argument(
        "--telemetry-out",
        default=None,
        metavar="FILE.json",
        help="run the snapshot listings under Database(telemetry=True) and "
        "write metrics + events + traces to FILE.json",
    )
    args = parser.parse_args(argv)
    if args.compare is not None:
        import os

        summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
        if summary_path:
            # GitHub Actions: the markdown tables double as the job summary.
            with open(summary_path, "a") as handle:
                return compare_snapshots(
                    args.compare[0],
                    args.compare[1],
                    threshold=args.threshold,
                    abs_floor_ms=args.abs_ms,
                    out=_Tee(sys.stdout, handle),
                )
        return compare_snapshots(
            args.compare[0],
            args.compare[1],
            threshold=args.threshold,
            abs_floor_ms=args.abs_ms,
        )
    if args.telemetry_out is not None:
        write_telemetry(args.telemetry_out)
        if not args.snapshot:
            return 0
    if args.snapshot:
        write_snapshot(
            args.out, repeats=args.repeats, pytest_json=args.pytest_json
        )
        return 0
    return main()


if __name__ == "__main__":
    sys.exit(cli())
