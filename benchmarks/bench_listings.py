"""E01-E12: regenerate every table and listing in the paper, timed.

Each benchmark executes the paper query, asserts the paper's printed values
where the paper prints them, and (under ``-s``) prints the regenerated table
in the paper's own layout.  ``python -m benchmarks.report`` prints all of
them without timing.
"""

from __future__ import annotations

import pytest

from repro.workloads.paper_data import load_paper_tables


def show(title: str, result) -> None:
    print(f"\n=== {title} ===")
    print(result.pretty())


def test_e01_load_paper_tables(benchmark):
    from repro import Database

    def load():
        db = Database()
        load_paper_tables(db)
        return db

    db = benchmark(load)
    assert db.execute("SELECT COUNT(*) FROM Orders").scalar() == 5


def test_e02_listing1(paper_db, benchmark):
    sql = """SELECT prodName, COUNT(*) AS c,
                    (SUM(revenue) - SUM(cost)) / SUM(revenue) AS profitMargin
             FROM Orders GROUP BY prodName ORDER BY prodName"""
    result = benchmark(paper_db.execute, sql)
    assert [(r[0], r[1], round(r[2], 2)) for r in result.rows] == [
        ("Acme", 1, 0.6), ("Happy", 3, 0.47), ("Whizz", 1, 0.67),
    ]
    show("Listing 1: summarizing Orders by product", result)


def test_e03_listing2_anomaly(paper_db, benchmark):
    paper_db.execute(
        """CREATE VIEW SummarizedOrders AS
           SELECT prodName, orderDate,
                  (SUM(revenue) - SUM(cost)) / SUM(revenue) AS profitMargin
           FROM Orders GROUP BY prodName, orderDate"""
    )
    sql = """SELECT prodName, AVG(profitMargin) FROM SummarizedOrders
             GROUP BY prodName ORDER BY prodName"""
    result = benchmark(paper_db.execute, sql)
    happy = dict(result.rows)["Happy"]
    assert round(happy, 4) != round(8 / 17, 4)  # the anomaly
    show("Listing 2: the broken view (average of averages)", result)


def test_e04_listing4(orders_db, benchmark):
    sql = """SELECT prodName, AGGREGATE(profitMargin), COUNT(*)
             FROM EnhancedOrders GROUP BY prodName ORDER BY prodName"""
    result = benchmark(orders_db.execute, sql)
    assert [(r[0], round(r[1], 2), r[2]) for r in result.rows] == [
        ("Acme", 0.6, 1), ("Happy", 0.47, 3), ("Whizz", 0.67, 1),
    ]
    show("Listing 4: AGGREGATE(profitMargin)", result)


def test_e05_expansion(orders_db, benchmark):
    sql = """SELECT prodName, AGGREGATE(profitMargin) AS pm
             FROM EnhancedOrders GROUP BY prodName ORDER BY prodName"""
    expanded = benchmark(orders_db.expand, sql)
    assert orders_db.execute(expanded).rows == orders_db.execute(sql).rows
    print(f"\n=== Listing 5: expansion ===\n{expanded}")


def test_e06_listing6(paper_db, benchmark):
    sql = """SELECT prodName, sumRevenue,
                    sumRevenue / sumRevenue AT (ALL prodName) AS proportionOfTotalRevenue
             FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders) AS o
             GROUP BY prodName ORDER BY prodName"""
    result = benchmark(paper_db.execute, sql)
    assert [round(r[2], 2) for r in result.rows] == [0.2, 0.68, 0.12]
    show("Listing 6: proportion of total (AT ALL)", result)


def test_e07_listing7(paper_db, benchmark):
    sql = """SELECT prodName, orderYear, profitMargin,
                    profitMargin AT (SET orderYear = CURRENT orderYear - 1)
                      AS profitMarginLastYear
             FROM (SELECT *,
                     (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin,
                     YEAR(orderDate) AS orderYear
                   FROM Orders)
             WHERE orderYear = 2024 GROUP BY prodName, orderYear"""
    result = benchmark(paper_db.execute, sql)
    assert len(result.rows) == 1
    assert result.rows[0][2] == pytest.approx(3 / 7)
    assert result.rows[0][3] == pytest.approx(2 / 6)
    show("Listing 7: SET + CURRENT (last year's margin)", result)


def test_e08_listing8(paper_db, benchmark):
    sql = """SELECT o.prodName, COUNT(*) AS c,
                    AGGREGATE(o.sumRevenue) AS rAgg,
                    o.sumRevenue AT (VISIBLE) AS rViz,
                    o.sumRevenue AS r
             FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders) AS o
             WHERE o.custName <> 'Bob'
             GROUP BY ROLLUP(o.prodName) ORDER BY o.prodName NULLS LAST"""
    result = benchmark(paper_db.execute, sql)
    assert result.rows == [
        ("Happy", 2, 13, 13, 17),
        ("Whizz", 1, 3, 3, 3),
        (None, 3, 16, 16, 25),
    ]
    show("Listing 8: visible totals under ROLLUP", result)


def test_e09_listing9(paper_db, benchmark):
    sql = """WITH EnhancedCustomers AS (
               SELECT *, AVG(custAge) AS MEASURE avgAge FROM Customers)
             SELECT o.prodName, COUNT(*) AS orderCount,
                    AVG(c.custAge) AS weightedAvgAge,
                    c.avgAge AS avgAge,
                    c.avgAge AT (VISIBLE) AS visibleAvgAge
             FROM Orders AS o
             JOIN EnhancedCustomers AS c USING (custName)
             WHERE c.custAge >= 18
             GROUP BY o.prodName ORDER BY o.prodName"""
    result = benchmark(paper_db.execute, sql)
    assert [r[0] for r in result.rows] == ["Acme", "Happy"]
    assert result.rows[1][3] == pytest.approx(27.0)
    assert result.rows[1][4] == pytest.approx(32.0)
    show("Listing 9: measures across a one-to-many join", result)


def test_e10_listing10(paper_db, benchmark):
    sql = """SELECT prodName, YEAR(orderDate) AS orderYear,
                    sumRevenue / sumRevenue AT (SET orderYear = CURRENT orderYear - 1)
                      AS ratio
             FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue,
                          YEAR(orderDate) AS orderYear FROM Orders)
             GROUP BY prodName, YEAR(orderDate) ORDER BY prodName, orderYear"""
    result = benchmark(paper_db.execute, sql)
    by_key = {(r[0], r[1]): r[2] for r in result.rows}
    assert by_key[("Happy", 2023)] == pytest.approx(1.5)
    expanded = paper_db.expand(sql)
    assert paper_db.execute(expanded).rows == result.rows
    show("Listing 10: year-over-year revenue ratio", result)


LISTING12 = {
    "q1-correlated-subquery": """
        SELECT o.prodName, o.orderDate FROM Orders AS o
        WHERE o.revenue > (SELECT AVG(revenue) FROM Orders AS o1
                           WHERE o1.prodName = o.prodName) ORDER BY 1, 2""",
    "q2-self-join": """
        SELECT o.prodName, o.orderDate FROM Orders AS o
        LEFT JOIN (SELECT prodName, AVG(revenue) AS avgRevenue
                   FROM Orders GROUP BY prodName) AS o2
          ON o.prodName = o2.prodName
        WHERE o.revenue > o2.avgRevenue ORDER BY 1, 2""",
    "q3-window-aggregate": """
        SELECT o.prodName, o.orderDate FROM
          (SELECT prodName, revenue, orderDate,
                  AVG(revenue) OVER (PARTITION BY prodName) AS avgRevenue
           FROM Orders) AS o
        WHERE o.revenue > o.avgRevenue ORDER BY 1, 2""",
    "q4-measures": """
        SELECT o.prodName, o.orderDate FROM
          (SELECT prodName, orderDate, revenue,
                  AVG(revenue) AS MEASURE avgRevenue FROM Orders) AS o
        WHERE o.revenue > o.avgRevenue AT (WHERE prodName = o.prodName)
        ORDER BY 1, 2""",
}


@pytest.mark.parametrize("variant", list(LISTING12))
def test_e11_listing12(paper_db, benchmark, variant):
    result = benchmark(paper_db.execute, LISTING12[variant])
    assert [r[0] for r in result.rows] == ["Happy", "Happy"]


def test_e12_modifier_matrix(paper_db, benchmark):
    """Every Table 3 modifier exercised in one query."""
    paper_db.execute(
        """CREATE VIEW mv AS
           SELECT prodName, custName, YEAR(orderDate) AS orderYear,
                  SUM(revenue) AS MEASURE r
           FROM Orders"""
    )
    sql = """SELECT prodName,
                    r AS base,
                    r AT (ALL) AS grandTotal,
                    r AT (ALL custName) AS allCustomers,
                    r AT (SET orderYear = CURRENT orderYear - 1) AS lastYear,
                    r AT (VISIBLE) AS visible,
                    r AT (WHERE orderYear = 2023) AS y2023
             FROM mv WHERE custName <> 'Bob'
             GROUP BY prodName ORDER BY prodName"""
    result = benchmark(paper_db.execute, sql)
    happy = result.rows[0 if result.rows[0][0] == "Happy" else 1]
    assert happy[2] == 25  # grand total escapes the WHERE clause
    show("Table 3: the full modifier matrix", result)
