"""A02: optimizer-rule ablation.

Runs representative queries with the rule-based optimizer on and off.
Effectiveness is asserted via rows-scanned / combined-rows work counters
(deterministic); wall clock is reported by pytest-benchmark.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.workloads import WorkloadConfig, load_workload

QUERIES = {
    "selective-join": """
        SELECT o.prodName, c.region FROM Orders AS o
        JOIN Customers AS c ON o.custName = c.custName
        WHERE o.revenue > 400 AND c.region = 'north'""",
    "stacked-filters": """
        SELECT prodName FROM
        (SELECT * FROM (SELECT * FROM Orders WHERE revenue > 100)
         WHERE cost > 50)
        WHERE prodName <> 'Happy'""",
    "constant-heavy": """
        SELECT prodName, revenue * (10 * 10) + (7 - 7) FROM Orders
        WHERE 1 = 1 AND revenue > 2 * 100""",
}


def build(optimizer: bool) -> Database:
    db = Database(optimizer=optimizer)
    load_workload(db, WorkloadConfig(orders=2000, products=20, customers=50))
    return db


@pytest.fixture(scope="module")
def dbs():
    return {True: build(True), False: build(False)}


@pytest.mark.parametrize("optimizer", [True, False], ids=["opt-on", "opt-off"])
@pytest.mark.parametrize("name", list(QUERIES))
def test_a02_optimizer(benchmark, dbs, name, optimizer):
    db = dbs[optimizer]
    benchmark.group = f"A02 {name}"
    result = benchmark(db.execute, QUERIES[name])
    assert result.rowcount == dbs[not optimizer].execute(QUERIES[name]).rowcount


def test_a02_pushdown_reduces_join_candidates(benchmark, dbs):
    """With pushdown, the nested-loop join sees pre-filtered inputs; the
    scan counters do not change, but the join work (and time) does.  We
    assert through timing-independent plan structure."""
    from repro.plan import logical as plans
    from repro.plan.optimizer import optimize
    from repro.semantics.binder import Binder
    from repro.sql import parse_query

    db = dbs[True]
    binder = Binder(db.catalog)
    plan, _ = binder.bind_query_top(parse_query(QUERIES["selective-join"]))
    optimized = optimize(plan)
    join = next(p for p in optimized.walk() if isinstance(p, plans.Join))
    assert isinstance(join.left, plans.Filter) or isinstance(join.right, plans.Filter)
    result = benchmark(db.execute, QUERIES["selective-join"])
    assert result is not None
