"""A03: engine baselines — scan, filter, aggregate, join, window, sort
throughput versus row count.

These situate every other benchmark: the substrate is a pure-Python
interpreter, so absolute numbers are far from the paper's BigQuery-backed
deployment, but relative shapes (who wins, how costs scale) are meaningful.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import workload_db

SIZES = [500, 2000, 8000]


@pytest.mark.parametrize("size", SIZES)
def test_a03_scan(benchmark, size):
    db = workload_db(size)
    benchmark.group = f"A03 n={size}"
    result = benchmark(db.execute, "SELECT prodName, revenue FROM Orders")
    assert len(result.rows) == size


@pytest.mark.parametrize("size", SIZES)
def test_a03_filter(benchmark, size):
    db = workload_db(size)
    benchmark.group = f"A03 n={size}"
    result = benchmark(
        db.execute, "SELECT prodName FROM Orders WHERE revenue > 200 AND cost < 300"
    )
    assert result.rowcount <= size


@pytest.mark.parametrize("size", SIZES)
def test_a03_group_by(benchmark, size):
    db = workload_db(size)
    benchmark.group = f"A03 n={size}"
    result = benchmark(
        db.execute,
        """SELECT prodName, COUNT(*), SUM(revenue), AVG(cost)
           FROM Orders GROUP BY prodName""",
    )
    assert len(result.rows) == 20


@pytest.mark.parametrize("size", SIZES)
def test_a03_join(benchmark, size):
    db = workload_db(size)
    benchmark.group = f"A03 n={size}"
    result = benchmark(
        db.execute,
        """SELECT o.prodName, SUM(o.revenue) FROM Orders AS o
           JOIN Customers AS c ON o.custName = c.custName
           WHERE c.custAge > 40 GROUP BY o.prodName""",
    )
    assert len(result.rows) <= 20


@pytest.mark.parametrize("size", SIZES)
def test_a03_sort(benchmark, size):
    db = workload_db(size)
    benchmark.group = f"A03 n={size}"
    result = benchmark(
        db.execute,
        "SELECT prodName, revenue FROM Orders ORDER BY revenue DESC, prodName LIMIT 25",
    )
    assert len(result.rows) == 25


@pytest.mark.parametrize("size", SIZES)
def test_a03_window(benchmark, size):
    db = workload_db(size)
    benchmark.group = f"A03 n={size}"
    result = benchmark(
        db.execute,
        """SELECT prodName, revenue,
                  ROW_NUMBER() OVER (PARTITION BY prodName ORDER BY revenue DESC)
           FROM Orders""",
    )
    assert len(result.rows) == size


@pytest.mark.parametrize("size", SIZES)
def test_a03_rollup(benchmark, size):
    db = workload_db(size)
    benchmark.group = f"A03 n={size}"
    result = benchmark(
        db.execute,
        """SELECT prodName, YEAR(orderDate), SUM(revenue) FROM Orders
           GROUP BY ROLLUP(prodName, YEAR(orderDate))""",
    )
    assert len(result.rows) > 20


@pytest.mark.parametrize("size", SIZES)
def test_a03_measure_group_by(benchmark, size):
    """Measure evaluation at aggregate sites relative to plain GROUP BY."""
    db = workload_db(size)
    benchmark.group = f"A03 n={size}"
    result = benchmark(
        db.execute,
        "SELECT prodName, AGGREGATE(rev) FROM eo GROUP BY prodName",
    )
    assert len(result.rows) == 20
