"""F04: the cost of VISIBLE semantics across joins (DESIGN.md section 5).

Listing 9's semantics — visible averages deduplicated at the measure's
grain — require a semijoin between candidate source rows and the group's
joined rows.  This family measures that cost against the two cheaper
aggregations the paper contrasts it with (weighted SQL AVG and the
unweighted default context), across workload sizes.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.workloads import WorkloadConfig, load_workload

SIZES = [200, 800, 2400]

VARIANTS = {
    "weighted-avg": """
        SELECT o.prodName, AVG(c.custAge) AS v
        FROM Orders AS o JOIN ec AS c USING (custName)
        WHERE c.custAge >= 30 GROUP BY o.prodName""",
    "unweighted-default": """
        SELECT o.prodName, c.avgAge AS v
        FROM Orders AS o JOIN ec AS c USING (custName)
        WHERE c.custAge >= 30 GROUP BY o.prodName""",
    "visible-semijoin": """
        SELECT o.prodName, c.avgAge AT (VISIBLE) AS v
        FROM Orders AS o JOIN ec AS c USING (custName)
        WHERE c.custAge >= 30 GROUP BY o.prodName""",
}


def build(size: int) -> Database:
    db = Database()
    load_workload(db, WorkloadConfig(orders=size, products=15, customers=40))
    db.execute("CREATE VIEW ec AS SELECT *, AVG(custAge) AS MEASURE avgAge FROM Customers")
    return db


_dbs: dict[int, Database] = {}


def db_for(size: int) -> Database:
    if size not in _dbs:
        _dbs[size] = build(size)
    return _dbs[size]


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("variant", list(VARIANTS))
def test_f04_visible_cost(benchmark, variant, size):
    db = db_for(size)
    benchmark.group = f"F04 visible n={size}"
    result = benchmark(db.execute, VARIANTS[variant])
    assert len(result.rows) > 0


def test_f04_semantic_difference_is_real():
    """The three averages answer different questions (Listing 9)."""
    db = db_for(800)
    weighted = dict(db.execute(VARIANTS["weighted-avg"]).rows)
    unweighted = dict(db.execute(VARIANTS["unweighted-default"]).rows)
    visible = dict(db.execute(VARIANTS["visible-semijoin"]).rows)
    # The unweighted default is the same for every product (all customers).
    assert len(set(unweighted.values())) == 1
    # The weighted and visible averages differ for at least one product
    # whenever any visible customer ordered twice within a product.
    diffs = [
        p
        for p in weighted
        if round(weighted[p], 6) != round(visible[p], 6)
    ]
    assert diffs, "expected repeat buyers to separate weighted from visible"


def test_f04_visible_dedupes_at_measure_grain():
    db = db_for(800)
    # One visible customer counted once per group, however many orders.
    db.execute("CREATE OR REPLACE VIEW ec AS SELECT *, COUNT(*) AS MEASURE n FROM Customers")
    rows = db.execute(
        """SELECT o.prodName, c.n AT (VISIBLE) AS visibleCustomers,
                  COUNT(*) AS joinedRows
           FROM Orders AS o JOIN ec AS c USING (custName)
           GROUP BY o.prodName"""
    ).rows
    assert all(r[1] <= r[2] for r in rows)
    assert any(r[1] < r[2] for r in rows)  # fan-out exists in the workload
