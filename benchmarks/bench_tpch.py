"""F08: the TPC-H measure workload — cold vs matview-hit vs plan-cache-hot.

Every canonical drill-down from :data:`repro.workloads.tpch.TPCH_QUERIES`
is timed three ways:

* **cold** — no summary tables: the measure expands and aggregates over the
  full lineitem/orders join every time;
* **matview-hit** — the canonical summaries exist, so the subsumption
  rewriter answers roll-up queries from a handful of pre-aggregated rows;
* **plan-cache-hot** — the (summary-hit) plan is built once with
  ``Database.plan_query`` and replayed with ``execute_planned``, the query
  server's cache-hit path, so parse/rewrite/bind/optimize cost disappears.

This is the fixed harness later perf PRs (columnar executor, cost-based
strategy chooser) are judged against: the ROADMAP's bench trajectory at
hundred-thousand-row inputs.  ``benchmarks/report.py --snapshot`` embeds
:func:`measure_tpch` at SF 0.01 as the snapshot's ``tpch`` section.

Run standalone for a smoke check (used by CI)::

    python -m benchmarks.bench_tpch --quick
"""

from __future__ import annotations

import sys
import time

import pytest

from repro import Database
from repro.sql import ast, parse_statement
from repro.workloads.tpch import (
    TPCH_QUERIES,
    table_cardinalities,
    tpch_measure_database,
)

#: Queries the summary tables can answer (the matview-hit series).
SUMMARY_QUERIES = (
    "revenue_by_region",
    "revenue_by_region_year",
    "margin_by_returnflag",
    "orders_by_year",
)

#: AT drill-downs (never summary hits; they time measure expansion).
DRILLDOWN_QUERIES = (
    "revenue_share_by_region",
    "revenue_yoy_by_year",
    "visible_orders_by_region",
)

#: The scale the pytest-benchmark series runs at everywhere; 0.05 is the
#: opt-in slow tier (CI runs it in a separate non-blocking job).
FAST_SF = 0.001
SLOW_SF = 0.05

#: What the SF 0.01 snapshot times.  visible_orders_by_region is excluded
#: on purpose, not silently: its subquery expansion is quadratic in orders
#: (~19 s at SF 0.01 — the cost-model ROADMAP target) and would dominate
#: every snapshot and CI gate run.  It is still timed at SF 0.001 in the
#: pytest drill-down series above.
SNAPSHOT_QUERY_NAMES = tuple(
    name for name in TPCH_QUERIES if name != "visible_orders_by_region"
)


def build(sf: float, *, summaries: bool) -> Database:
    return tpch_measure_database(sf, summaries=summaries)


def _parse_query(sql: str) -> ast.Query:
    statement = parse_statement(sql)
    assert isinstance(statement, ast.QueryStatement)
    return statement.query


def _best_of(thunk, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - start)
    return best


def measure_tpch(
    sf: float = 0.01, *, repeats: int = 3, queries=None
) -> dict:
    """Time the canonical queries at ``sf``; the snapshot's ``tpch`` section.

    Returns::

        {"sf": ..., "cardinalities": {table: rows},
         "queries": {name: {"rows": n, "cold_ms": ..., "matview_hit_ms": ...,
                            "plan_cache_hot_ms": ...}}}

    ``matview_hit_ms``/``plan_cache_hot_ms`` are only present for queries
    the summaries can answer (AT drill-downs never hit a summary).
    """
    names = list(queries) if queries is not None else list(TPCH_QUERIES)
    cold_db = build(sf, summaries=False)
    hot_db = build(sf, summaries=True)
    out: dict = {
        "sf": sf,
        "cardinalities": table_cardinalities(sf),
        "queries": {},
    }
    for name in names:
        sql = TPCH_QUERIES[name]
        entry: dict = {"rows": len(cold_db.execute(sql).rows)}
        entry["cold_ms"] = round(
            _best_of(lambda: cold_db.execute(sql), repeats) * 1000.0, 3
        )
        if name in SUMMARY_QUERIES:
            entry["matview_hit_ms"] = round(
                _best_of(lambda: hot_db.execute(sql), repeats) * 1000.0, 3
            )
            planned = hot_db.plan_query(_parse_query(sql), sql=sql)
            entry["plan_cache_hot_ms"] = round(
                _best_of(lambda: hot_db.execute_planned(planned), repeats)
                * 1000.0,
                3,
            )
        out["queries"][name] = entry
    return out


# -- pytest-benchmark series --------------------------------------------------


@pytest.fixture(scope="module")
def cold_db() -> Database:
    return build(FAST_SF, summaries=False)


@pytest.fixture(scope="module")
def hot_db() -> Database:
    return build(FAST_SF, summaries=True)


@pytest.mark.parametrize("name", SUMMARY_QUERIES)
def test_f08_tpch_cold(benchmark, cold_db, name):
    benchmark.group = f"F08 tpch sf={FAST_SF} {name}"
    result = benchmark(cold_db.execute, TPCH_QUERIES[name])
    assert result.rows


@pytest.mark.parametrize("name", SUMMARY_QUERIES)
def test_f08_tpch_matview_hit(benchmark, hot_db, name):
    benchmark.group = f"F08 tpch sf={FAST_SF} {name}"
    result = benchmark(hot_db.execute, TPCH_QUERIES[name])
    assert result.rows


@pytest.mark.parametrize("name", SUMMARY_QUERIES)
def test_f08_tpch_plan_cache_hot(benchmark, hot_db, name):
    planned = hot_db.plan_query(_parse_query(TPCH_QUERIES[name]))
    benchmark.group = f"F08 tpch sf={FAST_SF} {name}"
    result, _ = benchmark(hot_db.execute_planned, planned)
    assert result.rows


@pytest.mark.parametrize("name", DRILLDOWN_QUERIES)
def test_f08_tpch_drilldown(benchmark, cold_db, name):
    benchmark.group = f"F08 tpch sf={FAST_SF} drilldowns"
    result = benchmark(cold_db.execute, TPCH_QUERIES[name])
    assert result.rows


@pytest.mark.slow
@pytest.mark.parametrize("name", SUMMARY_QUERIES)
@pytest.mark.parametrize(
    "summaries", [False, True], ids=["cold", "matview-hit"]
)
def test_f08_tpch_slow_tier(benchmark, name, summaries):
    """The SF 0.05 series: opt-in via ``-m slow`` (non-blocking CI job)."""
    db = build(SLOW_SF, summaries=summaries)
    benchmark.group = f"F08 tpch sf={SLOW_SF} {name}"
    result = benchmark.pedantic(
        db.execute, args=(TPCH_QUERIES[name],), rounds=2, iterations=1
    )
    assert result.rows


def test_f08_matview_hit_is_provable():
    """EXPLAIN must show the summary: hit line for the roll-up query."""
    db = build(FAST_SF, summaries=True)
    lines = [
        row[0]
        for row in db.execute(
            "EXPLAIN " + TPCH_QUERIES["revenue_by_region"]
        ).rows
    ]
    assert any(
        line.startswith("summary: answered from materialized view")
        for line in lines
    ), lines


def test_f08_hit_equals_cold_at_money_precision():
    cold = build(FAST_SF, summaries=False)
    hot = build(FAST_SF, summaries=True)
    for name in SUMMARY_QUERIES:
        a = cold.execute(TPCH_QUERIES[name]).rows
        b = hot.execute(TPCH_QUERIES[name]).rows
        assert len(a) == len(b)
        for ra, rb in zip(a, b):
            for va, vb in zip(ra, rb):
                if isinstance(va, float):
                    # Partial-sum roll-ups re-associate float addition; money
                    # agreement to the cent is the correctness bar.
                    assert vb == pytest.approx(va, rel=1e-9, abs=0.01)
                else:
                    assert va == vb


# -- standalone smoke (CI) ----------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    sf = FAST_SF if quick else 0.01
    repeats = 2 if quick else 3

    report = measure_tpch(
        sf, repeats=repeats, queries=None if quick else SNAPSHOT_QUERY_NAMES
    )
    failures = []
    print(f"F08 tpch sf={sf} (best of {repeats}):")
    for name, entry in report["queries"].items():
        cold = entry["cold_ms"]
        hit = entry.get("matview_hit_ms")
        hot = entry.get("plan_cache_hot_ms")
        line = f"  {name}: cold {cold:.2f} ms"
        if hit is not None:
            line += f", matview-hit {hit:.2f} ms, plan-cache-hot {hot:.2f} ms"
            if hit >= cold:
                failures.append(f"{name}: matview hit ({hit}ms) not faster than cold ({cold}ms)")
            if hot > hit * 1.5 + 1.0:
                failures.append(f"{name}: planned replay ({hot}ms) slower than full execute ({hit}ms)")
        print(line + f"  [{entry['rows']} rows]")
    hot_db = build(sf, summaries=True)
    for name in SUMMARY_QUERIES:
        hot_db.execute(TPCH_QUERIES[name])
    stats = hot_db.summary_stats()
    if not any(view["hits"] for view in stats.values()):
        failures.append("no summary hits recorded across the canonical queries")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
