"""Trace export: serialize profiler span trees to OTel-flavored JSON.

The profiler's :class:`~repro.profile.tracer.Span` tree is flattened into
a list of spans with ``trace_id`` / ``span_id`` / ``parent_span_id``
links, the shape OpenTelemetry tooling expects.  IDs are deterministic
counters rendered as fixed-width hex (16 hex chars for spans, 32 for
traces) — there is no global collector to collide with, and determinism
keeps the export testable.

Span timestamps come from ``time.perf_counter_ns`` (a monotonic clock
with an arbitrary epoch), so the export carries offsets relative to each
trace's root span (``start_ns`` / ``end_ns`` from root start) rather than
pretending to know wall-clock times; the wall-clock anchor is the
``captured_at`` timestamp on the trace envelope.

The envelope is versioned (``schema: repro-trace-v1``) like the bench
snapshot and QueryProfile schemas.
"""

from __future__ import annotations

import json
from collections import deque
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional

__all__ = ["TraceBuffer", "TRACE_SCHEMA"]

TRACE_SCHEMA = "repro-trace-v1"


class TraceBuffer:
    """Bounded ring of captured traces (one per profiled query)."""

    def __init__(self, capacity: int = 100):
        if capacity < 1:
            raise ValueError("trace buffer capacity must be >= 1")
        self.capacity = capacity
        self._traces: deque = deque(maxlen=capacity)
        self._next_trace = 0
        self._next_span = 0
        #: Traces that fell off the ring.
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._traces)

    def _trace_id(self) -> str:
        self._next_trace += 1
        return f"{self._next_trace:032x}"

    def _span_id(self) -> str:
        self._next_span += 1
        return f"{self._next_span:016x}"

    def capture(
        self,
        root_span: Any,
        *,
        sql: Optional[str] = None,
        spans_dropped: int = 0,
        traceparent: Optional[str] = None,
    ) -> str:
        """Flatten one span tree into the buffer; returns the trace_id.

        When a valid W3C ``traceparent`` is supplied, the captured trace
        adopts its trace id and parents the root span under the caller's
        span id, so the export splices into the caller's distributed
        trace.  Malformed values are ignored (a deterministic local id is
        minted instead), per the Trace Context spec.
        """
        from repro.telemetry import parse_traceparent

        parent = parse_traceparent(traceparent)
        trace_id = self._trace_id() if parent is None else parent[0]
        remote_parent = None if parent is None else parent[1]
        base_ns = root_span.start_ns
        flat: List[Dict[str, Any]] = []

        def visit(span: Any, parent_id: Optional[str]) -> None:
            span_id = self._span_id()
            # An unclosed span keeps end_ns == 0; export zero duration.
            end_ns = span.end_ns if span.end_ns else span.start_ns
            entry: Dict[str, Any] = {
                "trace_id": trace_id,
                "span_id": span_id,
                "parent_span_id": parent_id,
                "name": span.name,
                "kind": span.kind,
                "start_ns": span.start_ns - base_ns,
                "end_ns": end_ns - base_ns,
                "duration_ms": span.duration_ms,
            }
            if span.meta:
                entry["attributes"] = dict(span.meta)
            flat.append(entry)
            for child in span.children:
                visit(child, span_id)

        visit(root_span, remote_parent)
        trace: Dict[str, Any] = {
            "trace_id": trace_id,
            "captured_at": datetime.now(timezone.utc).isoformat(
                timespec="microseconds"
            ),
            "sql": sql,
            "spans_dropped": spans_dropped,
            "spans": flat,
        }
        if parent is not None:
            trace["traceparent"] = traceparent
        if len(self._traces) == self.capacity:
            self.dropped += 1
        self._traces.append(trace)
        return trace_id

    def export(self) -> Dict[str, Any]:
        """The versioned envelope holding every retained trace."""
        return {
            "schema": TRACE_SCHEMA,
            "trace_count": len(self._traces),
            "traces_dropped": self.dropped,
            "traces": list(self._traces),
        }

    def export_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.export(), indent=indent, default=str)
