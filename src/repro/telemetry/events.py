"""Structured event log and slow-query log.

Events are plain dicts with a monotonically increasing ``seq`` and an
ISO-8601 UTC ``ts``.  The log is a bounded ring buffer so a long-lived
Database cannot grow without limit; an optional *sink* (any object with a
``write`` method) receives each event as one JSON line the moment it is
recorded, which is how the log is tailed to a file.

The slow-query log is a separate, smaller ring holding the full
:meth:`QueryProfile.to_dict` of every query whose wall time met the
configured threshold.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional

__all__ = ["EventLog", "SlowQueryLog"]


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="microseconds")


class EventLog:
    """Bounded ring buffer of query-lifecycle events."""

    def __init__(self, capacity: int = 1000, sink: Any = None):
        if capacity < 1:
            raise ValueError("event log capacity must be >= 1")
        self.capacity = capacity
        self.sink = sink
        self._events: deque = deque(maxlen=capacity)
        self._seq = 0
        #: Guards seq assignment + append so concurrent sessions cannot
        #: interleave (two events sharing a seq, or a torn tail() read).
        self._lock = threading.Lock()
        #: Events that fell off the ring (observable data loss).
        self.dropped = 0

    def record(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Append one event; returns the stored dict (with seq/ts added)."""
        with self._lock:
            self._seq += 1
            entry: Dict[str, Any] = {
                "seq": self._seq,
                "ts": _utc_now(),
                "event": event,
            }
            entry.update(fields)
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(entry)
        if self.sink is not None:
            self.sink.write(json.dumps(entry, default=str) + "\n")
        return entry

    def __len__(self) -> int:
        return len(self._events)

    def tail(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        """The most recent ``n`` events, oldest first (all when ``n`` None)."""
        with self._lock:
            events = list(self._events)
        if n is not None and n >= 0:
            events = events[-n:] if n else []
        return events

    def to_jsonl(self, n: Optional[int] = None) -> str:
        """The tail rendered as JSON lines (one event per line)."""
        return "\n".join(
            json.dumps(event, default=str) for event in self.tail(n)
        )


class SlowQueryLog:
    """Ring buffer of queries that exceeded the slow-query threshold."""

    def __init__(self, threshold_ms: float, capacity: int = 100):
        if capacity < 1:
            raise ValueError("slow-query log capacity must be >= 1")
        self.threshold_ms = float(threshold_ms)
        self.capacity = capacity
        self._entries: deque = deque(maxlen=capacity)
        self._seq = 0
        self._lock = threading.Lock()

    def add(
        self,
        sql: Optional[str],
        duration_ms: float,
        profile: Optional[Dict[str, Any]],
    ) -> Dict[str, Any]:
        with self._lock:
            self._seq += 1
            entry = {
                "seq": self._seq,
                "ts": _utc_now(),
                "sql": sql,
                "duration_ms": duration_ms,
                "threshold_ms": self.threshold_ms,
                "profile": profile,
            }
            self._entries.append(entry)
            return entry

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[Dict[str, Any]]:
        """All retained entries, oldest first."""
        with self._lock:
            return list(self._entries)
