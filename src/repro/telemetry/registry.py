"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is deliberately passive: it never reads a clock and never
allocates on the query hot path beyond a dictionary update, so the cost
of a metric update is one dict lookup plus an add.  All wall-clock
measurement happens in the profiler; the registry only *stores* the
durations it is handed.

Histograms keep **per-bucket** (non-cumulative) counts internally so the
invariant ``sum(buckets) == count`` holds exactly; the cumulative view
required by the Prometheus text exposition format is computed only at
render time.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_DURATION_BUCKETS_MS",
]

#: Default latency buckets (milliseconds).  Roughly logarithmic, chosen to
#: bracket the paper-listing workloads (sub-millisecond) up to slow
#: analytical queries.
DEFAULT_DURATION_BUCKETS_MS: Tuple[float, ...] = (
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
)

LabelValues = Tuple[str, ...]


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """Escape HELP text per the exposition format: backslash and newline
    only (quotes are legal in HELP, unlike in label values)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    parts = ", ".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(names, values)
    )
    return "{" + parts + "}"


class _Metric:
    """Shared bookkeeping for one named metric family.

    Every mutation and every read of ``_series`` happens under the
    per-metric ``_lock``: concurrent sessions increment the same counter
    from worker threads, and ``value = value + amount`` on a plain dict
    would lose increments under that interleaving.
    """

    kind = "untyped"

    __slots__ = ("name", "help", "labelnames", "_series", "_lock")

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._series: Dict[LabelValues, object] = {}
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, object]) -> LabelValues:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def labelsets(self) -> List[Dict[str, str]]:
        """Every label combination observed so far, as dicts."""
        with self._lock:
            keys = sorted(self._series)
        return [dict(zip(self.labelnames, key)) for key in keys]


class Counter(_Metric):
    """A monotonically increasing value, optionally partitioned by labels."""

    kind = "counter"

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current value for one label combination (0.0 if never bumped)."""
        key = self._key(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))

    def total(self) -> float:
        """Sum across every label combination."""
        with self._lock:
            return float(sum(self._series.values()))

    def samples(self) -> Iterable[Tuple[LabelValues, float]]:
        with self._lock:
            snapshot = sorted(self._series.items())
        for key, value in snapshot:
            yield key, float(value)


class Gauge(_Metric):
    """A value that can go up and down (pool sizes, staleness flags...)."""

    kind = "gauge"

    __slots__ = ()

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))

    def samples(self) -> Iterable[Tuple[LabelValues, float]]:
        with self._lock:
            snapshot = sorted(self._series.items())
        for key, value in snapshot:
            yield key, float(value)


class _HistogramSeries:
    """Per-labelset histogram state: per-bucket counts plus sum."""

    __slots__ = ("buckets", "sum")

    def __init__(self, n_buckets: int):
        # One slot per finite bucket plus the +Inf overflow bucket.
        self.buckets = [0] * (n_buckets + 1)
        self.sum = 0.0

    @property
    def count(self) -> int:
        return sum(self.buckets)

    def copy(self) -> "_HistogramSeries":
        """A point-in-time copy (what :meth:`Histogram.samples` hands out)."""
        snap = _HistogramSeries.__new__(_HistogramSeries)
        snap.buckets = list(self.buckets)
        snap.sum = self.sum
        return snap


class Histogram(_Metric):
    """Fixed-boundary histogram (e.g. query latency distribution)."""

    kind = "histogram"

    __slots__ = ("boundaries",)

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS_MS,
    ):
        super().__init__(name, help, labelnames)
        boundaries = tuple(sorted(float(b) for b in buckets))
        if not boundaries:
            raise ValueError(f"histogram {self.name!r} needs >= 1 bucket")
        self.boundaries = boundaries

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = _HistogramSeries(len(self.boundaries))
                self._series[key] = series
            series.buckets[bisect_left(self.boundaries, value)] += 1
            series.sum += value

    def bucket_counts(self, **labels: object) -> List[int]:
        """Non-cumulative per-bucket counts (last entry is +Inf overflow)."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return [0] * (len(self.boundaries) + 1)
            return list(series.buckets)

    def count(self, **labels: object) -> int:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return 0 if series is None else series.count

    def sum_(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return 0.0 if series is None else series.sum

    def samples(self) -> Iterable[Tuple[LabelValues, _HistogramSeries]]:
        # Hand out copies: a renderer iterating buckets must not race
        # concurrent observe() calls mutating them in place.
        with self._lock:
            snapshot = [
                (key, series.copy())
                for key, series in sorted(self._series.items())
            ]
        yield from snapshot


class MetricsRegistry:
    """A named collection of metrics with idempotent registration."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    # -- registration -------------------------------------------------------

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric) or (
                    existing.labelnames != metric.labelnames
                ):
                    raise ValueError(
                        f"metric {metric.name!r} already registered with a "
                        "different kind or label set"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def counter(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        # Prometheus naming convention: counters carry a _total suffix.
        # Enforced at registration so every counter this engine ever
        # exposes scrapes cleanly into standard tooling.
        if not name.endswith("_total"):
            raise ValueError(
                f"counter {name!r} must end with '_total' "
                "(Prometheus naming convention)"
            )
        return self._register(Counter(name, help, labelnames))  # type: ignore[return-value]

    def gauge(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge(name, help, labelnames))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS_MS,
    ) -> Histogram:
        return self._register(  # type: ignore[return-value]
            Histogram(name, help, labelnames, buckets)
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> List[_Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    # -- export -------------------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """A plain-dict dump of every metric, for ``db.metrics()`` / JSON."""
        out: Dict[str, dict] = {}
        for metric in self.metrics():
            entry: dict = {
                "kind": metric.kind,
                "help": metric.help,
                "labels": list(metric.labelnames),
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.boundaries)
                entry["series"] = [
                    {
                        "labels": dict(zip(metric.labelnames, key)),
                        "bucket_counts": list(series.buckets),
                        "sum": series.sum,
                        "count": series.count,
                    }
                    for key, series in metric.samples()
                ]
            else:
                entry["series"] = [
                    {
                        "labels": dict(zip(metric.labelnames, key)),
                        "value": value,
                    }
                    for key, value in metric.samples()  # type: ignore[union-attr]
                ]
            out[metric.name] = entry
        return out

    def render_prometheus(self) -> str:
        """Render every metric in the Prometheus text exposition format."""
        lines: List[str] = []
        for metric in self.metrics():
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                le_names = metric.labelnames + ("le",)
                for key, series in metric.samples():
                    cumulative = 0
                    for boundary, bucket in zip(
                        metric.boundaries, series.buckets
                    ):
                        cumulative += bucket
                        labels = _render_labels(
                            le_names, key + (_format_value(boundary),)
                        )
                        lines.append(
                            f"{metric.name}_bucket{labels} {cumulative}"
                        )
                    labels = _render_labels(le_names, key + ("+Inf",))
                    lines.append(
                        f"{metric.name}_bucket{labels} {series.count}"
                    )
                    base = _render_labels(metric.labelnames, key)
                    lines.append(
                        f"{metric.name}_sum{base} {_format_value(series.sum)}"
                    )
                    lines.append(f"{metric.name}_count{base} {series.count}")
            else:
                for key, value in metric.samples():  # type: ignore[union-attr]
                    labels = _render_labels(metric.labelnames, key)
                    lines.append(
                        f"{metric.name}{labels} {_format_value(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def rows(self) -> List[Tuple[str, str, float]]:
        """Flat ``(metric, labels, value)`` rows for ``SHOW STATS``.

        Histograms contribute ``<name>_count`` and ``<name>_sum`` rows plus
        one non-cumulative ``<name>_bucket`` row per bucket boundary.
        """
        out: List[Tuple[str, str, float]] = []
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                for key, series in metric.samples():
                    base = ", ".join(
                        f"{n}={v}" for n, v in zip(metric.labelnames, key)
                    )
                    for boundary, bucket in zip(
                        metric.boundaries, series.buckets
                    ):
                        le = f"le={_format_value(boundary)}"
                        label = f"{base}, {le}" if base else le
                        out.append((f"{metric.name}_bucket", label, float(bucket)))
                    label = f"{base}, le=+Inf" if base else "le=+Inf"
                    out.append(
                        (f"{metric.name}_bucket", label, float(series.buckets[-1]))
                    )
                    out.append((f"{metric.name}_sum", base, float(series.sum)))
                    out.append(
                        (f"{metric.name}_count", base, float(series.count))
                    )
            else:
                for key, value in metric.samples():  # type: ignore[union-attr]
                    label = ", ".join(
                        f"{n}={v}" for n, v in zip(metric.labelnames, key)
                    )
                    out.append((metric.name, label, float(value)))
        return out
