"""Database-lifetime observability: metrics, events, slow log, traces.

Where :mod:`repro.profile` answers "what did *this query* do", this
package answers "what has *this Database* been doing" — cumulative
counters and latency histograms (Prometheus text exposition via
``Database.metrics_text()``), a structured JSON-lines event log, a
slow-query log capturing full :class:`QueryProfile` dumps, and an
OTel-flavored trace export of every profiled query's span tree.

The facade is :class:`Telemetry`.  ``Database(telemetry=True)`` creates
one; when telemetry is off (the default) ``Database.telemetry`` is None
and the only cost on the query path is that None check — the same
zero-cost-when-off discipline as the profiler.

All metric names, label sets, and schemas are documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import contextvars
import re
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.telemetry.events import EventLog, SlowQueryLog
from repro.telemetry.registry import (
    DEFAULT_DURATION_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.traces import TRACE_SCHEMA, TraceBuffer

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "EventLog",
    "SlowQueryLog",
    "TraceBuffer",
    "TRACE_SCHEMA",
    "DEFAULT_DURATION_BUCKETS_MS",
    "statement_kind",
    "current_session",
    "current_traceparent",
    "parse_traceparent",
]

_CAMEL = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")

#: The session id attached to telemetry recorded from the current execution
#: context, or "" for direct Database API use.  The query server sets it
#: around each statement it runs; a ContextVar (rather than a thread-local)
#: survives the ``asyncio.to_thread`` hop between the event loop and the
#: worker thread that actually executes the statement.
current_session: contextvars.ContextVar[str] = contextvars.ContextVar(
    "repro_current_session", default=""
)

#: The W3C ``traceparent`` propagated with the current statement, or ""
#: when the caller sent none.  Set by the session layer from the wire
#: protocol's optional ``traceparent`` field; read at capture time so the
#: exported trace joins the caller's distributed trace instead of minting
#: a fresh id.  Same ContextVar rationale as ``current_session``.
current_traceparent: contextvars.ContextVar[str] = contextvars.ContextVar(
    "repro_current_traceparent", default=""
)

#: ``version-trace_id-parent_span_id-flags`` per the W3C Trace Context
#: recommendation; all-zero trace/span ids are invalid per spec.
_TRACEPARENT = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>[0-9a-f]{32})"
    r"-(?P<span_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)


def parse_traceparent(value: Optional[str]):
    """Parse a W3C ``traceparent`` header value.

    Returns ``(trace_id, parent_span_id, flags)`` or None when the value
    is missing or malformed (invalid values are ignored, per spec, rather
    than rejected — a bad header must never fail the statement).
    """
    if not value or not isinstance(value, str):
        return None
    match = _TRACEPARENT.match(value.strip().lower())
    if match is None:
        return None
    trace_id = match.group("trace_id")
    span_id = match.group("span_id")
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return (trace_id, span_id, match.group("flags"))


def statement_kind(statement: Any) -> str:
    """Classify a parsed statement for the ``kind`` metric label.

    Queries are ``"select"`` (or ``"show_stats"``); everything else uses
    the snake_cased AST class name (``CreateMaterializedView`` ->
    ``"create_materialized_view"``), so new statement types pick up a
    sensible label with no registry to maintain.
    """
    from repro.sql import ast

    if isinstance(statement, ast.QueryStatement):
        if isinstance(statement.query, ast.ShowStats):
            return "show_stats"
        return "select"
    return _CAMEL.sub("_", type(statement).__name__).lower()


#: ExecutionContext counters mirrored as lifetime totals, profile name ->
#: metric name.
_PROFILE_COUNTER_METRICS = (
    ("rows_scanned", "rows_scanned_total"),
    ("subquery_executions", "subquery_executions_total"),
    ("subquery_cache_hits", "subquery_cache_hits_total"),
    ("measure_evaluations", "measure_evaluations_total"),
    ("measure_cache_hits", "measure_cache_hits_total"),
    ("hash_joins", "hash_joins_total"),
    ("nested_loop_joins", "nested_loop_joins_total"),
)


class Telemetry:
    """One Database's lifetime observability state.

    Composes a :class:`MetricsRegistry`, an :class:`EventLog`, an optional
    :class:`SlowQueryLog`, and a :class:`TraceBuffer`.  The Database calls
    the ``record_*`` methods at the query boundary and from the matview /
    expansion / winmagic / lint paths; nothing here reads a clock except
    event timestamping, which only happens when telemetry is on.
    """

    def __init__(
        self,
        *,
        slow_query_ms: Optional[float] = None,
        event_capacity: int = 1000,
        trace_capacity: int = 100,
        slow_log_capacity: int = 100,
        event_sink: Any = None,
        duration_buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS_MS,
    ):
        self.registry = MetricsRegistry()
        self.events = EventLog(capacity=event_capacity, sink=event_sink)
        self.traces = TraceBuffer(capacity=trace_capacity)
        self.slow_query_ms = (
            None if slow_query_ms is None else float(slow_query_ms)
        )
        self.slow_log = (
            None
            if self.slow_query_ms is None
            else SlowQueryLog(self.slow_query_ms, capacity=slow_log_capacity)
        )

        reg = self.registry
        self.queries_total = reg.counter(
            "queries_total",
            "Statements executed, by statement kind and execution strategy.",
            ("kind", "strategy"),
        )
        self.query_duration_ms = reg.histogram(
            "query_duration_ms",
            "Statement wall time in milliseconds.",
            ("kind",),
            buckets=duration_buckets,
        )
        self.rows_returned_total = reg.counter(
            "rows_returned_total", "Result rows returned to callers."
        )
        self.errors_total = reg.counter(
            "errors_total",
            "Statements that raised, by error class.",
            ("class",),
        )
        self.internal_queries_total = reg.counter(
            "internal_queries_total",
            "Internal summary-maintenance queries (excluded from "
            "queries_total and every per-query metric).",
        )
        self.introspection_queries_total = reg.counter(
            "introspection_queries_total",
            "Queries that scan only repro_* system tables (excluded from "
            "queries_total and every per-query metric, mirroring the "
            "internal-maintenance exclusion).",
        )
        self.plan_flips_total = reg.counter(
            "plan_flips_total",
            "Plan-hash changes detected between executions of one "
            "statement fingerprint.",
        )
        from repro.introspect.statements import StatementStatsStore

        #: Per-fingerprint statement statistics; backs the
        #: repro_stat_statements and repro_plan_flips system tables.
        self.statements = StatementStatsStore()
        self.matview_hits_total = reg.counter(
            "matview_hits_total",
            "Queries rewritten to read a materialized summary table.",
            ("view",),
        )
        self.matview_misses_total = reg.counter(
            "matview_misses_total",
            "Summary candidates considered but not used, by view and "
            "status (rejected or stale).",
            ("view", "status"),
        )
        self.matview_maintenance_total = reg.counter(
            "matview_maintenance_total",
            "Materialized-view maintenance events (refresh, "
            "incremental_merge, invalidation).",
            ("event", "view"),
        )
        self.expansions_total = reg.counter(
            "expansions_total",
            "Measure expansions requested, by strategy.",
            ("strategy",),
        )
        self.winmagic_total = reg.counter(
            "winmagic_total",
            "WinMagic rewrite attempts, by outcome.",
            ("outcome",),
        )
        self.lint_diagnostics_total = reg.counter(
            "lint_diagnostics_total",
            "Lint diagnostics produced, by rule code.",
            ("rule",),
        )
        self.slow_queries_total = reg.counter(
            "slow_queries_total",
            "Queries at or over the configured slow_query_ms threshold.",
        )
        self.spans_dropped_total = reg.counter(
            "spans_dropped_total",
            "Trace spans dropped by the per-query span budget.",
        )
        self.sessions_opened_total = reg.counter(
            "sessions_opened_total", "Server sessions opened."
        )
        self.sessions_closed_total = reg.counter(
            "sessions_closed_total", "Server sessions closed."
        )
        self.session_statements_total = reg.counter(
            "session_statements_total",
            "Statements executed through a server session, by session id.",
            ("session",),
        )
        self.plan_cache_hits_total = reg.counter(
            "plan_cache_hits_total",
            "Statements served from a session's prepared-plan cache.",
        )
        self.plan_cache_misses_total = reg.counter(
            "plan_cache_misses_total",
            "Statements planned cold (no usable plan-cache entry).",
        )
        self.plan_cache_evictions_total = reg.counter(
            "plan_cache_evictions_total",
            "Plan-cache entries evicted, by reason "
            "(lru, ddl, dml, refresh, flip, clear).",
            ("reason",),
        )
        self._profile_counters = tuple(
            (src, reg.counter(name, f"Lifetime total of the per-query "
                              f"'{src}' profile counter."))
            for src, name in _PROFILE_COUNTER_METRICS
        )

    # -- query boundary ------------------------------------------------------

    def record_query(
        self,
        kind: str,
        profile: Any,
        *,
        rows: int,
        sql: Optional[str] = None,
        reports: Iterable[Any] = (),
        fingerprint: Optional[str] = None,
        query_text: Optional[str] = None,
        plan_shape: Optional[str] = None,
        introspection: bool = False,
        strategy: Optional[str] = None,
    ) -> None:
        """Record one completed query (kind select/explain/...): metrics,
        a lifecycle event, the trace, and — if slow — a slow-log entry.

        ``fingerprint``/``query_text`` key the statement into the
        per-fingerprint statistics store; ``plan_shape`` (the bound plan's
        operator tree) combines with the decided strategy into the plan
        hash the flip detector watches.  ``introspection`` marks a query
        that scans only system tables: it increments
        ``introspection_queries_total`` and touches *nothing else*, the
        same exclusion internal maintenance gets — so the database
        observing itself never skews the statistics being observed.

        ``strategy`` overrides the strategy derived from ``reports``.  A
        plan-cache hit replays a stored plan without re-running the
        rewriter, so no reports exist; the session passes the strategy the
        cold run decided, keeping the plan hash stable and the flip
        detector quiet for cached executions.
        """
        session = current_session.get()
        traceparent = current_traceparent.get()
        if session:
            self.session_statements_total.inc(session=session)
        if introspection:
            self.introspection_queries_total.inc()
            return
        report_dicts = [
            {
                "view": getattr(r.view, "name", r.view),
                "status": r.status,
                "reason": r.reason,
                "rule": r.rule,
            }
            for r in reports
        ]
        if strategy is None:
            strategy = (
                "summary"
                if any(r["status"] == "hit" for r in report_dicts)
                else "interpreter"
            )
        duration_ms = profile.total_ms
        if fingerprint is not None:
            from repro.introspect.fingerprint import plan_hash

            phash = (
                None if plan_shape is None else plan_hash(strategy, plan_shape)
            )
            flip = self.statements.observe(
                fingerprint,
                query_text if query_text is not None else (sql or ""),
                duration_ms,
                rows=rows,
                strategy=strategy,
                plan_hash=phash,
            )
            if flip is not None:
                self.plan_flips_total.inc()
                self.events.record("plan_flip", **flip.as_dict())
        self.queries_total.inc(kind=kind, strategy=strategy)
        self.query_duration_ms.observe(duration_ms, kind=kind)
        self.rows_returned_total.inc(rows)
        counters = profile.counters
        for src, metric in self._profile_counters:
            amount = counters.get(src, 0)
            if amount:
                metric.inc(amount)
        if profile.spans_dropped:
            self.spans_dropped_total.inc(profile.spans_dropped)
        phases = {
            child.name: round(child.duration_ms, 3)
            for child in profile.root_span.children
            if child.kind == "phase"
        }
        event: Dict[str, Any] = {
            "kind": kind,
            "strategy": strategy,
            "duration_ms": round(duration_ms, 3),
            "rows": rows,
            "phases": phases,
            "sql": sql,
        }
        if session:
            event["session"] = session
        if traceparent:
            event["traceparent"] = traceparent
        if report_dicts:
            event["summary"] = report_dicts
        if profile.spans_dropped:
            event["spans_dropped"] = profile.spans_dropped
        self.events.record("query", **event)
        self.traces.capture(
            profile.root_span,
            sql=sql,
            spans_dropped=profile.spans_dropped,
            traceparent=traceparent or None,
        )
        if (
            self.slow_log is not None
            and duration_ms >= self.slow_log.threshold_ms
        ):
            self.slow_queries_total.inc()
            self.slow_log.add(sql, round(duration_ms, 3), profile.to_dict())
            slow_event: Dict[str, Any] = {
                "sql": sql,
                "duration_ms": round(duration_ms, 3),
                "threshold_ms": self.slow_log.threshold_ms,
            }
            if traceparent:
                # A slow query correlates across sessions and services by
                # the caller's trace context, not just by SQL text.
                slow_event["traceparent"] = traceparent
            self.events.record("slow_query", **slow_event)

    def record_statement(
        self,
        kind: str,
        duration_ms: float,
        *,
        rowcount: int = 0,
        sql: Optional[str] = None,
        fingerprint: Optional[str] = None,
        query_text: Optional[str] = None,
    ) -> None:
        """Record one non-query statement (DDL/DML/utility)."""
        session = current_session.get()
        if session:
            self.session_statements_total.inc(session=session)
        if fingerprint is not None:
            # No bound plan, so no plan hash: statements can never flip,
            # and observe() never overwrites a stored hash with None.
            self.statements.observe(
                fingerprint,
                query_text if query_text is not None else (sql or ""),
                duration_ms,
                rows=rowcount,
                strategy="none",
            )
        self.queries_total.inc(kind=kind, strategy="none")
        self.query_duration_ms.observe(duration_ms, kind=kind)
        detail: Dict[str, Any] = {
            "kind": kind,
            "duration_ms": round(duration_ms, 3),
            "rowcount": rowcount,
            "sql": sql,
        }
        if session:
            detail["session"] = session
        self.events.record("statement", **detail)
        if (
            self.slow_log is not None
            and duration_ms >= self.slow_log.threshold_ms
        ):
            self.slow_queries_total.inc()
            self.slow_log.add(sql, round(duration_ms, 3), None)
            self.events.record(
                "slow_query",
                sql=sql,
                duration_ms=round(duration_ms, 3),
                threshold_ms=self.slow_log.threshold_ms,
            )

    def record_error(
        self,
        exc: BaseException,
        *,
        sql: Optional[str] = None,
        fingerprint: Optional[str] = None,
        query_text: Optional[str] = None,
    ) -> None:
        if fingerprint is not None:
            self.statements.record_error(
                fingerprint, query_text if query_text is not None else (sql or "")
            )
        self.errors_total.inc(**{"class": type(exc).__name__})
        detail: Dict[str, Any] = {
            "error_class": type(exc).__name__,
            "message": str(exc),
            "sql": sql,
        }
        session = current_session.get()
        if session:
            detail["session"] = session
        traceparent = current_traceparent.get()
        if traceparent:
            # Cancels and failures correlate across sessions by the
            # caller's propagated trace context.
            detail["traceparent"] = traceparent
        self.events.record("error", **detail)

    def record_resource_exhausted(
        self, exc: BaseException, *, sql: Optional[str], profiler: Any
    ) -> None:
        """A query died on its memory budget: keep its *partial* profile.

        The profiler was live when :class:`ResourceExhausted` fired, so
        freezing it now captures everything up to the failing operator —
        exactly the evidence needed to size a budget or fix the query.
        The entry goes to the slow-query log (when configured) regardless
        of the duration threshold: an OOM-averted query is always worth
        keeping.
        """
        profile = None if profiler is None else profiler.finish(sql=sql)
        duration_ms = 0.0 if profile is None else round(profile.total_ms, 3)
        if self.slow_log is not None:
            self.slow_log.add(
                sql, duration_ms, None if profile is None else profile.to_dict()
            )
        detail: Dict[str, Any] = {
            "sql": sql,
            "message": str(exc),
            "duration_ms": duration_ms,
        }
        traceparent = current_traceparent.get()
        if traceparent:
            detail["traceparent"] = traceparent
        self.events.record("resource_exhausted", **detail)

    # -- subsystem feeds -----------------------------------------------------

    def record_rewrite(self, outcome: Any) -> None:
        """Feed matview hit/miss counters from one RewriteOutcome.

        Mirrors exactly what ``rewrite_query(record=True)`` adds to each
        view's :class:`SummaryStats`, so the lifetime counters stay
        consistent with ``summary_stats()``.
        """
        for report in outcome.reports:
            view = getattr(report.view, "name", report.view)
            if report.status == "hit":
                self.matview_hits_total.inc(view=view)
            else:
                self.matview_misses_total.inc(view=view, status=report.status)

    def record_maintenance(self, event: str, view: str) -> None:
        self.matview_maintenance_total.inc(event=event, view=view)
        self.events.record("matview_maintenance", op=event, view=view)

    def record_internal_query(self) -> None:
        """Count (only) an internal maintenance query; nothing else."""
        self.internal_queries_total.inc()

    def record_expansion(self, strategy: str) -> None:
        self.expansions_total.inc(strategy=strategy)

    def record_winmagic(self, outcome: str) -> None:
        self.winmagic_total.inc(outcome=outcome)

    def record_lint(self, diagnostics: Iterable[Any]) -> None:
        codes: List[str] = []
        for diag in diagnostics:
            self.lint_diagnostics_total.inc(rule=diag.code)
            codes.append(diag.code)
        if codes:
            self.events.record("lint", rules=codes)

    # -- export --------------------------------------------------------------

    def metrics_text(self) -> str:
        return self.registry.render_prometheus()

    def snapshot(self) -> Dict[str, dict]:
        return self.registry.snapshot()

    def slow_queries(self) -> List[Dict[str, Any]]:
        return [] if self.slow_log is None else self.slow_log.entries()

    def export_traces(self) -> Dict[str, Any]:
        return self.traces.export()
