"""The WinMagic rewrite: correlated subqueries to window aggregates.

Paper section 5.1 builds on Zuzarte et al. (SIGMOD 2003), whose WinMagic
algorithm rewrites Listing 12's query 1 (correlated subquery) into query 3
(window aggregate), eliminating the second scan of the input.  This module
implements that classic rewrite for the shape the paper discusses::

    SELECT ... FROM T AS o
    WHERE o.x <op> (SELECT AGG(expr) FROM T AS i WHERE i.k = o.k [AND ...])

becomes::

    SELECT ... FROM
      (SELECT *, AGG(expr) OVER (PARTITION BY k) AS __win FROM T) AS o
    WHERE o.x <op> o.__win

Applicability conditions (checked, with :class:`UnsupportedError` raised
otherwise):

* the subquery scans the same table as the outer query, with no further
  nesting, grouping, or set operations;
* every subquery WHERE conjunct is either an equality correlation
  ``i.col = o.col`` on the *same* column (it becomes PARTITION BY) or a
  purely local predicate matching an outer WHERE conjunct verbatim (both
  sides see the same rows, so it moves into the derived table);
* the aggregate is a plain single-argument aggregate (no DISTINCT needed
  by the classic algorithm, though DISTINCT is carried through).

Completing the strategy triangle of section 5.1: measures rewrite to both
correlated subqueries (:mod:`repro.core.expansion`) and window aggregates
(:mod:`repro.core.strategies`), and WinMagic connects the remaining pair.
"""

from __future__ import annotations

import copy
from typing import Optional, TYPE_CHECKING

from repro.engine.aggregates import is_aggregate_function
from repro.errors import UnsupportedError
from repro.sql import ast
from repro.sql.printer import to_sql
from repro.sql.visitor import transform_topdown

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import Database

__all__ = ["winmagic_rewrite"]


def winmagic_rewrite(db: "Database", query: ast.Query, *, tracer=None) -> ast.Query:
    """Rewrite eligible correlated subqueries in ``query`` to window
    aggregates.  Raises UnsupportedError when nothing is eligible.

    With a tracer attached, the attempt runs under an ``expand:winmagic``
    span annotated with how many window columns the rewrite introduced.
    """
    telemetry = getattr(db, "telemetry", None)
    try:
        result = _winmagic_rewrite_traced(db, query, tracer)
    except UnsupportedError:
        if telemetry is not None:
            telemetry.record_winmagic("unsupported")
        raise
    if telemetry is not None:
        telemetry.record_winmagic("rewritten")
    return result


def _winmagic_rewrite_traced(db: "Database", query: ast.Query, tracer) -> ast.Query:
    if tracer is not None:
        span = tracer.begin("expand:winmagic", "expand")
        try:
            result = _winmagic_rewrite_impl(db, query)
        except UnsupportedError:
            if span is not None:
                span.meta["outcome"] = "unsupported"
            tracer.end(span)
            raise
        if span is not None:
            span.meta["outcome"] = "ok"
        tracer.end(span)
        return result
    return _winmagic_rewrite_impl(db, query)


def _winmagic_rewrite_impl(db: "Database", query: ast.Query) -> ast.Query:
    if not isinstance(query, ast.Select):
        raise UnsupportedError("WinMagic requires a plain SELECT")
    select = copy.deepcopy(query)
    if not isinstance(select.from_clause, ast.TableName):
        raise UnsupportedError("WinMagic requires a single-table FROM clause")
    if select.group_by or select.having is not None:
        raise UnsupportedError("WinMagic applies to non-aggregate queries")

    table = select.from_clause
    outer_alias = table.alias or table.name
    outer_conjuncts = (
        _split_and(select.where) if select.where is not None else []
    )

    rewriter = _Rewriter(db, table.name, outer_alias, outer_conjuncts)
    if select.where is not None:
        select.where = rewriter.rewrite(select.where)
    select.items = [
        item
        if isinstance(item.expr, ast.Star)
        else ast.SelectItem(rewriter.rewrite(item.expr), item.alias)
        for item in select.items
    ]
    if not rewriter.windows:
        raise UnsupportedError("no eligible correlated subquery found")

    # Build the derived table: every base column plus the window columns.
    base = db.catalog.base_table(table.name)
    inner_items = [
        ast.SelectItem(ast.ColumnRef((c.name,)), c.name)
        for c in base.schema.columns
    ] + [ast.SelectItem(expr, name) for name, expr in rewriter.windows]
    derived = ast.Select(items=inner_items, from_clause=ast.TableName(table.name))
    select.from_clause = ast.SubqueryRef(derived, outer_alias)
    return select


class _Rewriter:
    def __init__(self, db, table_name: str, outer_alias: str, outer_conjuncts):
        self.db = db
        self.table_name = table_name.lower()
        self.outer_alias = outer_alias
        self.outer_conjuncts = outer_conjuncts
        self.windows: list[tuple[str, ast.Expression]] = []
        self._keys: dict[str, str] = {}

    def rewrite(self, expr: ast.Expression) -> ast.Expression:
        def visit(node: ast.Node):
            if isinstance(node, ast.ScalarSubquery):
                replacement = self._try_subquery(node.query)
                if replacement is not None:
                    return replacement
            return None

        return transform_topdown(copy.deepcopy(expr), visit)  # type: ignore[return-value]

    def _try_subquery(self, subquery: ast.Query) -> Optional[ast.Expression]:
        if not isinstance(subquery, ast.Select):
            return None
        if subquery.group_by or subquery.having is not None:
            return None
        if len(subquery.items) != 1:
            return None
        inner_from = subquery.from_clause
        if not isinstance(inner_from, ast.TableName):
            return None
        if inner_from.name.lower() != self.table_name:
            return None
        inner_alias = (inner_from.alias or inner_from.name).lower()

        call = subquery.items[0].expr
        if not (
            isinstance(call, ast.FunctionCall)
            and is_aggregate_function(call.name)
            and call.over is None
            and not call.star_arg
            and len(call.args) == 1
        ):
            return None

        partition: list[ast.Expression] = []
        conjuncts = (
            _split_and(subquery.where) if subquery.where is not None else []
        )
        for conjunct in conjuncts:
            key = self._correlation_key(conjunct, inner_alias)
            if key is not None:
                partition.append(ast.ColumnRef((key,)))
                continue
            # A purely local predicate is eligible only when the outer query
            # applies the same predicate verbatim — then both sides see the
            # same row set and the filter can live in the derived table...
            # but our derived table is built pre-filter, so local predicates
            # would change the window input.  Disqualify (classic WinMagic's
            # conservative case).
            return None

        windowed = ast.FunctionCall(
            call.name,
            [_strip_qualifier(a, inner_alias) for a in call.args],
            distinct=call.distinct,
            over=ast.WindowSpec(partition_by=partition),
        )
        name = self._window_name(windowed)
        return ast.ColumnRef((self.outer_alias, name))

    def _correlation_key(
        self, conjunct: ast.Expression, inner_alias: str
    ) -> Optional[str]:
        """``i.k = o.k`` (either side order) -> the column name ``k``."""
        if not (isinstance(conjunct, ast.Binary) and conjunct.op == "="):
            return None
        sides = [conjunct.left, conjunct.right]
        if not all(isinstance(s, ast.ColumnRef) for s in sides):
            return None
        left, right = sides  # type: ignore[misc]
        quals = {
            (left.qualifier or "").lower(),
            (right.qualifier or "").lower(),
        }
        if quals != {inner_alias, self.outer_alias.lower()}:
            return None
        if left.name.lower() != right.name.lower():
            return None
        return left.name

    def _window_name(self, windowed: ast.FunctionCall) -> str:
        key = to_sql(windowed)
        if key not in self._keys:
            name = f"__win{len(self.windows)}"
            self._keys[key] = name
            self.windows.append((name, windowed))
        return self._keys[key]


def _split_and(expr: ast.Expression) -> list[ast.Expression]:
    if isinstance(expr, ast.Binary) and expr.op == "AND":
        return _split_and(expr.left) + _split_and(expr.right)
    return [expr]


def _strip_qualifier(expr: ast.Expression, alias: str) -> ast.Expression:
    def visit(node: ast.Node):
        if (
            isinstance(node, ast.ColumnRef)
            and node.qualifier is not None
            and node.qualifier.lower() == alias
        ):
            return ast.ColumnRef((node.name,))
        return None

    return transform_topdown(copy.deepcopy(expr), visit)  # type: ignore[return-value]
