"""Evaluation contexts for context-sensitive expressions.

The paper (section 3.4) defines the evaluation context as *a predicate whose
terms are one or more columns from the same table*.  We represent it as a
list of :class:`Term` objects; a source row is in the context iff every term
accepts it.  Term kinds:

* :class:`EqTerm` — ``dim IS NOT DISTINCT FROM value`` (group keys, SET);
* :class:`PredTerm` — an arbitrary predicate over the source row (AT WHERE,
  and the translatable part of VISIBLE);
* :class:`VisibleTerm` — the cross-relation part of VISIBLE in join queries:
  a source row is visible iff some row of the current group still satisfies
  the query's WHERE clause and join conditions after substituting the
  candidate's dimension values for the measure relation's columns;
* :class:`SemiMatchTerm` — inherited context for measures over measures: the
  candidate's dimension projection must match one of the outer filtered rows.

:class:`ContextSpec` is the *bind-time* description of how a call site builds
its context: which group keys map onto the measure's dimensions, where the
hidden grouping-id and captured-rows columns live, what VISIBLE would add,
and the bound ``AT`` modifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.semantics.bound import BoundExpr, walk
from repro.types import is_not_distinct

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.modifiers import BoundModifier
    from repro.engine.evaluator import EvalEnv, ExecutionContext

__all__ = [
    "Term",
    "summarize_terms",
    "EqTerm",
    "PredTerm",
    "VisibleTerm",
    "SemiMatchTerm",
    "GroupTermSpec",
    "VisibleInfo",
    "ContextSpec",
]


class Term:
    """One conjunct of an evaluation context.

    ``dim_key`` is the dimension identity for ALL/SET matching; it is None
    for non-dimension terms (predicates, VISIBLE, inherited matches).
    """

    def test(self, source_row: tuple, ctx: "ExecutionContext") -> bool:
        raise NotImplementedError  # pragma: no cover - interface

    def cache_key(self) -> tuple:
        raise NotImplementedError  # pragma: no cover - interface

    def current_value(self) -> tuple[bool, Any]:
        """(pinned, value) for CURRENT dim resolution."""
        return False, None

    @property
    def kind(self) -> str:
        """Stable lowercase slug (``eqterm`` ...) for profiling counters."""
        return type(self).__name__.lower()


def summarize_terms(terms: list["Term"]) -> dict[str, int]:
    """Term-kind histogram for one evaluation context.

    The measure evaluator feeds this to the profiler so a trace shows what a
    context was made of (e.g. ``{"eqterm": 2, "visibleterm": 1}``) without
    serializing the terms themselves.
    """
    histogram: dict[str, int] = {}
    for term in terms:
        key = term.kind
        histogram[key] = histogram.get(key, 0) + 1
    return histogram


@dataclass
class EqTerm(Term):
    """``source_expr IS NOT DISTINCT FROM value`` — or, when ``strict``,
    plain SQL ``=`` (NULLs never match), used for decomposed AT WHERE
    equality conjuncts.

    WHERE-derived terms carry ``dim_key`` None: they are predicate terms for
    the modifier algebra (``ALL dim`` does not remove them — the context's
    meaning must not depend on how its predicate was spelled, paper section
    3.5) while still being servable from the dimension indexes via their
    source-expression fingerprint.
    """

    dim_key: Optional[str]
    source_expr: BoundExpr
    value: Any
    strict: bool = False

    @property
    def index_key(self) -> str:
        from repro.semantics.bound import fingerprint

        return self.dim_key or fingerprint(self.source_expr)

    def test(self, source_row: tuple, ctx: "ExecutionContext") -> bool:
        from repro.engine.evaluator import EvalEnv, evaluate

        actual = evaluate(self.source_expr, EvalEnv(source_row), ctx)
        if self.strict:
            from repro.types import sql_eq

            return sql_eq(actual, self.value) is True
        return is_not_distinct(actual, self.value)

    def cache_key(self) -> tuple:
        return ("eq", self.index_key, self.value, self.strict)

    def current_value(self) -> tuple[bool, Any]:
        return True, self.value


@dataclass
class PredTerm(Term):
    """An arbitrary predicate over the source row.

    ``parent_env`` supplies the call-site row for correlated references
    (depth >= 1) inside the predicate; ``key_values`` are the runtime values
    of those references, used for memoization.
    """

    pred: BoundExpr
    parent_env: Optional["EvalEnv"]
    key_values: tuple
    label: str
    dim_key: Optional[str] = None

    def test(self, source_row: tuple, ctx: "ExecutionContext") -> bool:
        from repro.engine.evaluator import EvalEnv, evaluate

        env = EvalEnv(source_row, self.parent_env)
        return evaluate(self.pred, env, ctx) is True

    def cache_key(self) -> tuple:
        return ("pred", self.label, self.key_values)


@dataclass
class VisibleTerm(Term):
    """Cross-relation VISIBLE semantics for join queries.

    A candidate source row ``i`` is accepted iff there exists a row ``g`` in
    ``group_rows`` (the current group's joined input rows) such that every
    predicate in ``preds`` holds on ``g`` *with the measure relation's column
    positions replaced by* ``i``'s dimension values.
    """

    preds: list[BoundExpr]
    group_rows: tuple
    range_start: int
    range_end: int
    offset_dim_exprs: list[Optional[BoundExpr]]
    parent_env: Optional["EvalEnv"]
    dim_key: Optional[str] = None

    def test(self, source_row: tuple, ctx: "ExecutionContext") -> bool:
        from repro.engine.evaluator import EvalEnv, evaluate

        env = EvalEnv(source_row)
        substituted = [
            None
            if expr is None
            else evaluate(expr, env, ctx)
            for expr in self.offset_dim_exprs
        ]
        for group_row in self.group_rows:
            candidate = (
                group_row[: self.range_start]
                + tuple(substituted)
                + group_row[self.range_end :]
            )
            row_env = EvalEnv(candidate, self.parent_env)
            if all(evaluate(p, row_env, ctx) is True for p in self.preds):
                return True
        return False

    def cache_key(self) -> tuple:
        return ("vis", id(self.group_rows))


@dataclass
class SemiMatchTerm(Term):
    """Inherited context for measures composed from input measures.

    A candidate source row is accepted iff its projection through
    ``dim_exprs`` matches (IS NOT DISTINCT FROM, per column) some row of
    ``rows`` restricted to ``offsets``.
    """

    rows: tuple
    offsets: list[int]
    dim_exprs: list[BoundExpr]
    dim_key: Optional[str] = None

    def test(self, source_row: tuple, ctx: "ExecutionContext") -> bool:
        from repro.engine.evaluator import EvalEnv, evaluate

        env = EvalEnv(source_row)
        projection = tuple(evaluate(expr, env, ctx) for expr in self.dim_exprs)
        for row in self.rows:
            if all(
                is_not_distinct(row[offset], value)
                for offset, value in zip(self.offsets, projection)
            ):
                return True
        return False

    def cache_key(self) -> tuple:
        return ("semi", id(self.rows), tuple(self.offsets))


# ---------------------------------------------------------------------------
# Bind-time specification
# ---------------------------------------------------------------------------


@dataclass
class GroupTermSpec:
    """A potential EqTerm: one call-site group key mapped onto a dimension.

    ``value_expr`` is evaluated on the call-site row; ``grouping_bit`` is the
    group key's position for grouping-set suppression (None = always active,
    used for row-grain contexts).
    """

    dim_key: str
    source_expr: BoundExpr
    value_expr: BoundExpr
    grouping_bit: Optional[int] = None


@dataclass
class VisibleInfo:
    """What VISIBLE adds: the query's WHERE and join-condition conjuncts over
    the FROM row, plus the measure relation's position within that row."""

    preds: list[BoundExpr]
    range_start: int
    range_end: int
    offset_dim_exprs: list[Optional[BoundExpr]]


@dataclass
class ContextSpec:
    """Bind-time recipe for a call site's evaluation context.

    ``kind`` is ``'group'`` (aggregate query), ``'row'`` (row-grain call
    sites: WHERE clause, non-aggregate SELECT), or ``'inherited'`` (inside a
    composed measure's formula).
    """

    kind: str
    group_terms: list[GroupTermSpec] = field(default_factory=list)
    grouping_id_offset: Optional[int] = None
    captured_rows_offset: Optional[int] = None
    visible: Optional[VisibleInfo] = None
    modifiers: list["BoundModifier"] = field(default_factory=list)
    #: dim offsets/exprs for inherited contexts (measure-over-measure).
    inherit_offsets: list[int] = field(default_factory=list)
    inherit_dim_exprs: list[BoundExpr] = field(default_factory=list)

    def child_exprs(self) -> Iterator[BoundExpr]:
        """Expressions evaluated against the call-site row (for walkers)."""
        for term in self.group_terms:
            yield term.value_expr
        for modifier in self.modifiers:
            yield from modifier.child_exprs()

    def fingerprint(self) -> str:
        from repro.semantics.bound import fingerprint as fp

        parts = [self.kind]
        for term in self.group_terms:
            parts.append(f"{term.dim_key}={fp(term.value_expr)}@{term.grouping_bit}")
        for modifier in self.modifiers:
            parts.append(repr(type(modifier).__name__))
        return ";".join(parts)
