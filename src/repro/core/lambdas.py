"""The paper's lambda exposition of measure semantics (section 4).

Section 4.2 explains measures with a functional device: every measure ``M``
gets an auxiliary function ``computeM(rowPredicate)`` that aggregates the
source rows accepted by the predicate, and each measure reference becomes a
call ``computeM(r -> <context predicate>)`` (paper Listing 11).  The lambdas
exist only during planning — "there are no function values at runtime"
(section 4.1) — and this engine honours that: this module *renders* the
lambda form for study; execution always goes through the interpreter or the
plain-SQL expansion.

:func:`explain_lambda_semantics` reproduces Listing 11 for any supported
query::

    -- Row definition
    CREATE TYPE OrdersRow AS ROW (prodName VARCHAR, ...);
    -- Auxiliary computation for sumRevenue
    CREATE FUNCTION computeSumRevenue(rowPredicate FUNCTION(OrdersRow)
      RETURNS BOOLEAN) AS
      SELECT SUM(o.revenue) FROM Orders AS o WHERE APPLY(rowPredicate, o);
    -- After expansion of sumRevenue occurrences
    SELECT ... computeSumRevenue(r -> r.prodName = o.prodName AND ...) ...
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.catalog.objects import BaseTable
from repro.core.expansion import (
    Expander,
    ExpRelation,
    _and_all,
    _apply_rename,
    _Term,
)
from repro.errors import UnsupportedError
from repro.sql import ast, parse_statement
from repro.sql.printer import to_sql

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import Database

__all__ = ["explain_lambda_semantics"]


@dataclass
class _Use:
    measure_name: str
    table_name: str
    formula: ast.Expression
    source_where: ast.Expression | None
    predicate_sql: str


class _LambdaExpander(Expander):
    """An Expander that emits ``computeM($LAMBDAi)`` placeholders instead of
    scalar subqueries, recording the row predicate for each use."""

    def __init__(self, db: "Database"):
        super().__init__(db)
        self.uses: list[_Use] = []

    def build_measure_subquery(
        self,
        relation: ExpRelation,
        measure_name: str,
        terms: list[_Term],
    ):
        table = relation.table
        assert table is not None
        if not isinstance(table.source_from, ast.TableName):
            raise UnsupportedError(
                "the lambda exposition requires single-table measure sources"
            )
        rename = {"": "r"}
        conjuncts = []
        if table.source_where is not None:
            conjuncts.append(
                _apply_rename(copy.deepcopy(table.source_where), rename)
            )
        for term in terms:
            conjuncts.append(_apply_rename(term.to_predicate(), rename))
        predicate = _and_all(conjuncts)
        predicate_sql = "TRUE" if predicate is None else to_sql(predicate)

        index = len(self.uses)
        self.uses.append(
            _Use(
                measure_name=measure_name,
                table_name=table.source_from.name,
                formula=_apply_rename(
                    copy.deepcopy(table.measures[measure_name.lower()]),
                    {"": "o"},
                ),
                source_where=table.source_where,
                predicate_sql=predicate_sql,
            )
        )
        return ast.FunctionCall("APPLY_LAMBDA", [ast.Literal(index)])


def explain_lambda_semantics(db: "Database", sql: str) -> str:
    """Render a measure query per the paper's section 4.2 rules."""
    statement = parse_statement(sql)
    if not isinstance(statement, ast.QueryStatement):
        raise UnsupportedError("explain_lambda_semantics requires a query")

    expander = _LambdaExpander(db)
    expanded = expander.expand_query(copy.deepcopy(statement.query))
    if not expander.uses:
        raise UnsupportedError("the query uses no measures")

    body = to_sql(expanded)
    for index, use in enumerate(expander.uses):
        call = f"compute{_title(use.measure_name)}(r -> {use.predicate_sql})"
        body = body.replace(f"APPLY_LAMBDA({index})", call)
        # ANY_VALUE wrapping (global aggregates) reads oddly in the lambda
        # exposition; the paper presents the bare call.
        body = body.replace(f"ANY_VALUE({call})", call)

    lines: list[str] = []
    seen_types: set[str] = set()
    seen_functions: set[str] = set()
    for use in expander.uses:
        table = db.catalog.resolve(use.table_name)
        if not isinstance(table, BaseTable):
            raise UnsupportedError(
                "the lambda exposition requires base-table measure sources"
            )
        row_type = f"{_title(table.name)}Row"
        if row_type not in seen_types:
            seen_types.add(row_type)
            columns = ", ".join(
                f"{c.name} {c.dtype}" for c in table.schema.columns
            )
            lines.append("-- Row definition")
            lines.append(f"CREATE TYPE {row_type} AS ROW ({columns});")
            lines.append("")
        function = f"compute{_title(use.measure_name)}"
        if function not in seen_functions:
            seen_functions.add(function)
            lines.append(f"-- Auxiliary computation for {use.measure_name}")
            lines.append(
                f"CREATE FUNCTION {function}(rowPredicate FUNCTION({row_type})"
                " RETURNS BOOLEAN) AS"
            )
            where = f"APPLY(rowPredicate, o)"
            if use.source_where is not None:
                baked = to_sql(
                    _apply_rename(copy.deepcopy(use.source_where), {"": "o"})
                )
                where = f"{baked} AND {where}"
            lines.append(
                f"  SELECT {to_sql(use.formula)} FROM {table.name} AS o"
                f" WHERE {where};"
            )
            lines.append("")
    lines.append(f"-- After expansion of measure occurrences")
    lines.append(body)
    return "\n".join(lines)


def _title(name: str) -> str:
    return name[:1].upper() + name[1:] if name else name
