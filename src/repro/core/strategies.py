"""Alternative measure-rewrite strategies (paper sections 5.1 and 6.4).

The general correlated-subquery expansion (:mod:`repro.core.expansion`) is,
as the paper notes, "general-purpose but not very efficient".  Two special
shapes admit cheaper rewrites:

* :func:`inline_expand` — "in simple cases (such as a query with GROUP BY and
  no JOIN) it may be valid to inline the measure definition": a plain
  aggregate query over one measure table, where every measure use carries the
  default VISIBLE context, becomes an ordinary GROUP BY over the source
  (the paper's Listing 3 rewritten back to Listing 1);

* :func:`window_expand` — the measures/window-aggregate correspondence of
  section 5.1: a row-grain measure use whose context is an equality partition
  becomes a window aggregate computed in a derived table (Listing 12's
  query 4 rewritten to query 3).

Both raise :class:`~repro.errors.UnsupportedError` when the query does not
match their shape, so callers can fall back to the general strategy.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Optional

from repro.core.expansion import (
    ExpRelation,
    Expander,
    _apply_rename,
    _detect_aggregate,
    _split_and,
)
from repro.errors import MeasureError, UnsupportedError
from repro.sql import ast
from repro.sql.printer import to_sql
from repro.sql.visitor import transform, transform_topdown

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import Database

__all__ = ["inline_expand", "window_expand"]


def _single_measure_relation(
    expander: Expander, select: ast.Select
) -> tuple[ExpRelation, ast.TableRef]:
    """The query's FROM must be exactly one measure-bearing relation."""
    if select.from_clause is None or isinstance(select.from_clause, ast.Join):
        raise UnsupportedError("strategy requires a single-table FROM clause")
    relations: list[ExpRelation] = []
    new_from = expander._expand_from(select.from_clause, relations, [])
    if len(relations) != 1 or relations[0].table is None:
        raise UnsupportedError("strategy requires one measure-bearing relation")
    return relations[0], new_from


def inline_expand(db: "Database", query: ast.Query, *, tracer=None) -> ast.Query:
    """Inline measure formulas into a simple GROUP BY query.

    Shape: ``SELECT g..., AGGREGATE(m)... FROM MT [WHERE w] GROUP BY g...``
    over a single measure table with no AT modifiers.  The result reads the
    source directly — one scan, no correlated subqueries.
    """
    if not isinstance(query, ast.Select):
        raise UnsupportedError("inline strategy requires a plain SELECT")
    select = query
    if not _detect_aggregate(select):
        raise UnsupportedError("inline strategy requires an aggregate query")
    for element in select.group_by:
        if not isinstance(element, ast.SimpleGrouping):
            raise UnsupportedError("inline strategy does not support grouping sets")

    expander = Expander(db)
    relation, _ = _single_measure_relation(expander, select)
    table = relation.table
    assert table is not None

    rename = {"": "", **{}}  # leave source refs unqualified; single relation

    def translate(expr: ast.Expression) -> ast.Expression:
        """Rewrite exposed-column refs to source expressions; inline
        AGGREGATE(m) to the measure formula.  Top-down so that AGGREGATE(m)
        is matched before its bare measure argument."""

        def visit(node: ast.Node):
            if isinstance(node, ast.At):
                raise UnsupportedError(
                    "inline strategy does not support AT modifiers"
                )
            if isinstance(node, ast.FunctionCall) and node.name in (
                "AGGREGATE",
                "EVAL",
            ):
                inner = node.args[0] if node.args else None
                if not isinstance(inner, ast.ColumnRef) or not relation.has_measure(
                    inner.name
                ):
                    raise MeasureError(f"{node.name} argument must be a measure")
                formula = copy.deepcopy(table.measures[inner.name.lower()])
                return _apply_rename(formula, rename)
            if isinstance(node, ast.ColumnRef):
                if relation.has_measure(node.name):
                    raise UnsupportedError(
                        "inline strategy requires AGGREGATE(...) around "
                        "measure uses (bare uses ignore the WHERE clause)"
                    )
                dim = table.dims.get(node.name.lower())
                if dim is not None:
                    return _apply_rename(copy.deepcopy(dim), rename)
            return None

        return transform_topdown(copy.deepcopy(expr), visit)

    new_items = [
        ast.SelectItem(translate(item.expr), item.alias) for item in select.items
    ]
    new_group = [
        ast.SimpleGrouping(translate(element.expr))  # type: ignore[union-attr]
        for element in select.group_by
    ]
    conjuncts: list[ast.Expression] = []
    if table.source_where is not None:
        conjuncts.append(_apply_rename(copy.deepcopy(table.source_where), rename))
    if select.where is not None:
        conjuncts.append(translate(select.where))
    where: Optional[ast.Expression] = None
    for conjunct in conjuncts:
        where = conjunct if where is None else ast.Binary("AND", where, conjunct)

    if tracer is not None and tracer.current is not None:
        tracer.current.meta["inlined_items"] = len(new_items)
    return ast.Select(
        items=new_items,
        from_clause=copy.deepcopy(table.source_from),
        where=where,
        group_by=new_group,
        having=translate(select.having) if select.having is not None else None,
        order_by=[
            ast.OrderItem(translate(o.expr), o.descending, o.nulls_first)
            for o in select.order_by
        ],
        limit=select.limit,
        offset=select.offset,
        distinct=select.distinct,
    )


def window_expand(db: "Database", query: ast.Query, *, tracer=None) -> ast.Query:
    """Rewrite row-grain measure uses to window aggregates (section 5.1).

    Shape: a non-aggregate query over a single measure table where every
    measure use is either bare (row grain: partition by all dimensions) or
    ``m AT (WHERE dim = alias.dim AND ...)`` (partition by those dimensions).
    The measure formula's aggregate calls become window aggregates over the
    partition, computed in a derived table so that the WHERE clause can
    reference them (exactly how the paper's Listing 12 query 3 is written).
    """
    if not isinstance(query, ast.Select):
        raise UnsupportedError("window strategy requires a plain SELECT")
    select = query
    if _detect_aggregate(select):
        raise UnsupportedError(
            "window strategy applies to row-grain (non-aggregate) queries"
        )

    expander = Expander(db)
    relation, _ = _single_measure_relation(expander, select)
    table = relation.table
    assert table is not None
    if select.distinct:
        raise UnsupportedError("window strategy does not support DISTINCT")

    rename = {"": ""}
    window_columns: list[tuple[str, ast.Expression]] = []  # (name, window expr)
    column_keys: dict[str, str] = {}

    def window_column_for(measure_name: str, partition: list[ast.Expression]) -> str:
        formula = _apply_rename(
            copy.deepcopy(table.measures[measure_name.lower()]), rename
        )
        spec = ast.WindowSpec(partition_by=[copy.deepcopy(p) for p in partition])

        def add_over(node: ast.Expression) -> ast.Expression:
            from repro.engine.aggregates import is_aggregate_function

            if (
                isinstance(node, ast.FunctionCall)
                and is_aggregate_function(node.name)
                and node.over is None
            ):
                return ast.FunctionCall(
                    node.name,
                    node.args,
                    distinct=node.distinct,
                    star_arg=node.star_arg,
                    over=copy.deepcopy(spec),
                )
            return node

        windowed = transform(formula, add_over, into_queries=False)
        key = f"{measure_name.lower()}|{to_sql(windowed)}"
        if key in column_keys:
            return column_keys[key]
        name = f"__{measure_name}_{len(window_columns)}"
        window_columns.append((name, windowed))
        column_keys[key] = name
        return name

    def partition_of_where(pred: ast.Expression) -> list[ast.Expression]:
        """AT WHERE as an equality partition: every conjunct must be
        ``dim = alias.samedim``."""
        partition = []
        for conjunct in _split_and(pred):
            if not (
                isinstance(conjunct, ast.Binary)
                and conjunct.op == "="
                and isinstance(conjunct.left, ast.ColumnRef)
                and isinstance(conjunct.right, ast.ColumnRef)
            ):
                raise UnsupportedError(
                    "window strategy requires AT WHERE conjuncts of the form "
                    "dim = alias.dim"
                )
            left, right = conjunct.left, conjunct.right
            if len(left.parts) != 1 or left.name.lower() not in table.dims:
                raise UnsupportedError("AT WHERE left side must be a dimension")
            if right.name.lower() != left.name.lower():
                raise UnsupportedError(
                    "window strategy requires self-correlation on the same "
                    "dimension"
                )
            source_dim = table.dims[left.name.lower()]
            partition.append(_apply_rename(copy.deepcopy(source_dim), rename))
        return partition

    def rewrite_use(node: ast.Node):
        if not isinstance(node, (ast.FunctionCall, ast.At, ast.ColumnRef)):
            return None
        modifiers: list[ast.AtModifier] = []
        inner: ast.Expression = node  # type: ignore[assignment]
        if isinstance(inner, ast.FunctionCall):
            if inner.name != "EVAL" or not inner.args:
                return None
            inner = inner.args[0]
        while isinstance(inner, ast.At):
            modifiers.extend(inner.modifiers)
            inner = inner.operand
        if not isinstance(inner, ast.ColumnRef) or not relation.has_measure(inner.name):
            return None
        if len(modifiers) > 1:
            raise UnsupportedError("window strategy supports at most one modifier")
        if modifiers and isinstance(modifiers[0], ast.WhereModifier):
            partition = partition_of_where(modifiers[0].predicate)
        elif modifiers:
            raise UnsupportedError(
                "window strategy only supports AT (WHERE ...) modifiers"
            )
        else:
            partition = [
                _apply_rename(copy.deepcopy(table.dims[c.lower()]), rename)
                for c in table.columns
            ]
        name = window_column_for(inner.name, partition)
        return ast.ColumnRef((relation.alias, name))

    def rewrite(expr: Optional[ast.Expression]) -> Optional[ast.Expression]:
        if expr is None:
            return None
        return transform_topdown(copy.deepcopy(expr), rewrite_use)

    new_items = [
        item
        if isinstance(item.expr, ast.Star)
        else ast.SelectItem(rewrite(item.expr), item.alias)
        for item in select.items
    ]
    new_where = rewrite(select.where)
    new_order = [
        ast.OrderItem(rewrite(o.expr), o.descending, o.nulls_first)
        for o in select.order_by
    ]

    if not window_columns:
        raise UnsupportedError("query uses no measures; nothing to rewrite")
    if tracer is not None and tracer.current is not None:
        tracer.current.meta["window_columns"] = len(window_columns)

    inner_items = [
        ast.SelectItem(copy.deepcopy(table.dims[c.lower()]), c)
        for c in table.columns
    ] + [ast.SelectItem(expr, name) for name, expr in window_columns]
    derived = ast.Select(
        items=[
            ast.SelectItem(
                _apply_rename(item.expr, rename)
                if not isinstance(item.expr, ast.Star)
                else item.expr,
                item.alias,
            )
            for item in inner_items
        ],
        from_clause=copy.deepcopy(table.source_from),
        where=(
            _apply_rename(copy.deepcopy(table.source_where), rename)
            if table.source_where is not None
            else None
        ),
    )
    return ast.Select(
        items=new_items,
        from_clause=ast.SubqueryRef(derived, relation.alias),
        where=new_where,
        order_by=new_order,
        limit=select.limit,
        offset=select.offset,
    )
