"""The paper's contribution: measures, contexts, modifiers, expansion."""

from repro.core.context import ContextSpec, EqTerm, PredTerm, Term, VisibleTerm
from repro.core.definition import Dimension, MeasureGroup, MeasureInstance

__all__ = [
    "ContextSpec",
    "Dimension",
    "EqTerm",
    "MeasureGroup",
    "MeasureInstance",
    "PredTerm",
    "Term",
    "VisibleTerm",
]
