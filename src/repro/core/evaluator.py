"""Top-down evaluation of measures (context-sensitive expressions).

This is the interpretation strategy: build the evaluation-context predicate,
filter the measure's source rows, and run the formula's aggregates over the
survivors.  Results are memoized per (measure, context) — value-based keys
mean that e.g. ``AT (ALL)`` grand totals are computed once per query, and
repeated group contexts are computed once per group.  This cache is the
engine's realization of the paper's "localized self-join" execution strategy
(section 5.1); disable it with ``Database(cache=False)`` to see the quadratic
behaviour the paper's rewrite avoids (benchmarks/bench_cache.py).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.context import (
    ContextSpec,
    EqTerm,
    SemiMatchTerm,
    Term,
    VisibleTerm,
)
from repro.core.modifiers import apply_modifiers
from repro.engine.evaluator import (
    EvalEnv,
    ExecutionContext,
    evaluate,
    evaluate_formula,
)
from repro.errors import ExecutionError
from repro.semantics import bound as b

__all__ = ["evaluate_measure", "source_rows_for"]


def evaluate_measure(
    node: b.BoundMeasureEval,
    env: Optional[EvalEnv],
    ctx: ExecutionContext,
    formula_rows: Optional[list[tuple]] = None,
) -> Any:
    """Evaluate a measure at a call site.

    ``env`` is the call-site environment (the row being produced).
    ``formula_rows`` is only set for inherited contexts: the outer measure's
    already-filtered source rows.

    With a profiler attached, each evaluation is a ``measure:<name>`` span
    annotated with the cache verdict; otherwise the wrapper is one ``is
    None`` check.
    """
    profiler = ctx.profiler
    if profiler is None:
        return _evaluate_measure_impl(node, env, ctx, formula_rows)
    token = profiler.enter_measure(node.measure.name)
    hits_before = ctx.measure_cache_hits
    try:
        result = _evaluate_measure_impl(node, env, ctx, formula_rows)
    except BaseException:
        profiler.exit_measure(token, cache_hit=False)
        raise
    profiler.exit_measure(
        token, cache_hit=ctx.measure_cache_hits > hits_before
    )
    return result


def _evaluate_measure_impl(
    node: b.BoundMeasureEval,
    env: Optional[EvalEnv],
    ctx: ExecutionContext,
    formula_rows: Optional[list[tuple]] = None,
) -> Any:
    spec = node.context
    if _first_modifier_replaces(spec):
        # The first modifier discards the incoming context (WHERE / bare
        # ALL): skip building the default terms per call.
        terms = apply_modifiers([], spec, env, ctx)
    else:
        terms = _base_terms(spec, env, ctx, formula_rows)
        terms = apply_modifiers(terms, spec, env, ctx)

    if ctx.profiler is not None:
        from repro.core.context import summarize_terms

        for kind, count in summarize_terms(terms).items():
            ctx.profiler.bump(f"context_terms.{kind}", count)

    ctx.measure_evaluations += 1
    cache_key = None
    if ctx.enable_cache:
        for term in terms:
            # Terms keyed by object identity must keep that object alive for
            # the whole execution, or a recycled id would alias cache entries.
            if isinstance(term, SemiMatchTerm):
                ctx.pinned.append(term.rows)
            elif isinstance(term, VisibleTerm):
                ctx.pinned.append(term.group_rows)
        try:
            cache_key = (
                id(node.measure),
                frozenset(term.cache_key() for term in terms),
            )
        except TypeError:
            cache_key = None
        if cache_key is not None and cache_key in ctx.measure_cache:
            ctx.measure_cache_hits += 1
            return ctx.measure_cache[cache_key]

    filtered = _context_rows(node.measure, terms, ctx, env)
    result = evaluate_formula(node.measure.formula, filtered, env, ctx)
    if cache_key is not None:
        ctx.measure_cache[cache_key] = result
    return result


def _context_rows(measure, terms: list[Term], ctx: ExecutionContext, env) -> list[tuple]:
    """Source rows satisfying the context.

    Equality terms are served from per-dimension hash indexes built once per
    measure source (the 'localized self-join' of paper section 5.1 made
    concrete): a context of k EqTerms costs an index intersection instead of
    a full scan per evaluation.  Remaining term kinds filter the candidates.
    """
    rows = source_rows_for(measure, ctx, env)
    eq_terms = [t for t in terms if isinstance(t, EqTerm)]
    other_terms = [t for t in terms if not isinstance(t, EqTerm)]

    candidate_indexes = None
    if ctx.enable_cache and eq_terms:
        buckets = []
        for term in eq_terms:
            index = _dimension_index(measure, term, ctx, rows)
            if index is None:
                other_terms.append(term)
                continue
            try:
                buckets.append(index.get(term.value, ()))
            except TypeError:  # unhashable context value
                other_terms.append(term)
        if buckets:
            buckets.sort(key=len)
            candidate_indexes = buckets[0]
            for bucket in buckets[1:]:
                as_set = set(bucket)
                candidate_indexes = [
                    i for i in candidate_indexes if i in as_set
                ]
    else:
        other_terms = terms

    if candidate_indexes is None:
        candidates = rows
    else:
        candidates = [rows[i] for i in candidate_indexes]
    if not other_terms:
        return list(candidates)
    return [row for row in candidates if _accept(other_terms, row, ctx)]


def _dimension_index(measure, term: EqTerm, ctx: ExecutionContext, rows):
    """value -> row indexes for one dimension of one measure source."""
    key = (id(measure.group.source_plan), term.index_key)
    cache = ctx.dim_indexes
    if key in cache:
        return cache[key]
    index: dict = {}
    try:
        for position, row in enumerate(rows):
            value = evaluate(term.source_expr, EvalEnv(row), ctx)
            index.setdefault(value, []).append(position)
    except TypeError:
        cache[key] = None  # unhashable dimension values: no index
        return None
    cache[key] = index
    return index


def _first_modifier_replaces(spec: ContextSpec) -> bool:
    if spec.kind == "inherited" or not spec.modifiers:
        return False
    from repro.core.modifiers import BoundAll, BoundWhere

    first = spec.modifiers[0]
    if isinstance(first, BoundWhere):
        return True
    return isinstance(first, BoundAll) and first.dim_keys is None


def _accept(terms: list[Term], row: tuple, ctx: ExecutionContext) -> bool:
    for term in terms:
        if not term.test(row, ctx):
            return False
    return True


def _base_terms(
    spec: ContextSpec,
    env: Optional[EvalEnv],
    ctx: ExecutionContext,
    formula_rows: Optional[list[tuple]],
) -> list[Term]:
    if spec.kind == "inherited":
        if formula_rows is None:
            raise ExecutionError(
                "inherited measure context evaluated outside a formula"
            )
        return [
            SemiMatchTerm(
                tuple(formula_rows), spec.inherit_offsets, spec.inherit_dim_exprs
            )
        ]

    terms: list[Term] = []
    bitmap = 0
    if spec.grouping_id_offset is not None and env is not None:
        bitmap = env.row[spec.grouping_id_offset] or 0
    for term_spec in spec.group_terms:
        if term_spec.grouping_bit is not None and (
            (bitmap >> term_spec.grouping_bit) & 1
        ):
            # This dimension is rolled up in the current grouping set, so it
            # contributes no term (paper Listing 8's grand-total row).
            continue
        value = evaluate(term_spec.value_expr, env, ctx) if env is not None else None
        terms.append(EqTerm(term_spec.dim_key, term_spec.source_expr, value))
    return terms


def source_rows_for(
    measure, ctx: ExecutionContext, env: Optional[EvalEnv]
) -> list[tuple]:
    """Materialize (and cache) the measure's source relation."""
    from repro.engine.executor import execute_plan

    plan = measure.group.source_plan
    cache = getattr(ctx, "source_rows_cache", None)
    if cache is None:
        cache = {}
        ctx.source_rows_cache = cache
    key = id(plan)
    if key not in cache:
        # Source plans are self-contained (the defining query's FROM/WHERE),
        # so no outer environment is needed.
        cache[key] = execute_plan(plan, ctx, None)
    return cache[key]
