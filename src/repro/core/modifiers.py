"""Bound AT modifiers and their application to evaluation contexts.

The AT operator (paper section 3.5, Table 3) transforms the evaluation
context.  Modifiers apply **left to right**: ``cse AT (m1 m2)`` is equivalent
to ``(cse AT (m2)) AT (m1)``, i.e. the context is transformed by m1 first and
the result handed to m2.

Application happens at runtime in :func:`apply_modifiers`, because SET values
and WHERE predicates may reference the call-site row (correlations) and the
incoming context (``CURRENT dim``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.core.context import (
    ContextSpec,
    EqTerm,
    PredTerm,
    Term,
    VisibleTerm,
)
from repro.errors import MeasureError
from repro.semantics import bound as b

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.evaluator import EvalEnv, ExecutionContext

__all__ = [
    "BoundModifier",
    "BoundAll",
    "BoundSet",
    "BoundVisible",
    "BoundWhere",
    "apply_modifiers",
    "build_visible_term",
]


class BoundModifier:
    """Base class for bound context modifiers."""

    def child_exprs(self) -> Iterator[b.BoundExpr]:
        return iter(())


@dataclass
class BoundAll(BoundModifier):
    """``ALL`` (dim_keys None: clear the entire context) or ``ALL dim...``
    (remove the named dimensions' terms, keeping everything else)."""

    dim_keys: Optional[list[str]] = None


@dataclass
class BoundSet(BoundModifier):
    """``SET dim = value``: pin a dimension to a computed value.

    ``value_expr`` is evaluated on the call-site row; any
    :class:`~repro.semantics.bound.BoundCurrentDim` inside it reads the
    incoming context.
    """

    dim_key: str
    source_expr: b.BoundExpr
    value_expr: b.BoundExpr

    def child_exprs(self) -> Iterator[b.BoundExpr]:
        yield self.value_expr


@dataclass
class BoundVisible(BoundModifier):
    """``VISIBLE``: conjoin the query's WHERE clause and join conditions."""


@dataclass
class BoundWhere(BoundModifier):
    """``WHERE predicate``: replace the context with ``predicate``.

    The predicate is bound over the measure's source row; call-site columns
    appear as outer references (depth >= 1).  ``outer_refs`` lists them for
    memoization; ``label`` is the predicate's fingerprint.

    Equality conjuncts of the form ``source_expr = call_site_expr`` are
    decomposed at bind time into ``eq_pairs`` so that evaluation can use the
    per-dimension source indexes; ``pred`` holds the residual conjuncts
    (None when fully decomposed).
    """

    pred: Optional[b.BoundExpr]
    outer_refs: list[tuple[int, int]] = field(default_factory=list)
    label: str = ""
    eq_pairs: list[tuple[b.BoundExpr, b.BoundExpr]] = field(default_factory=list)

    def child_exprs(self) -> Iterator[b.BoundExpr]:
        return iter(())


def apply_modifiers(
    terms: list[Term],
    spec: ContextSpec,
    env: Optional["EvalEnv"],
    ctx: "ExecutionContext",
) -> list[Term]:
    """Apply ``spec.modifiers`` to ``terms``, left to right."""
    for modifier in spec.modifiers:
        if isinstance(modifier, BoundAll):
            if modifier.dim_keys is None:
                terms = []
            else:
                removed = set(modifier.dim_keys)
                terms = [t for t in terms if t.dim_key not in removed]
        elif isinstance(modifier, BoundSet):
            value = _evaluate_set_value(modifier, terms, env, ctx)
            terms = [t for t in terms if t.dim_key != modifier.dim_key]
            terms = terms + [EqTerm(modifier.dim_key, modifier.source_expr, value)]
        elif isinstance(modifier, BoundVisible):
            visible = build_visible_term(spec, env)
            if visible is not None:
                terms = terms + [visible]
        elif isinstance(modifier, BoundWhere):
            terms = _build_where_terms(modifier, env, ctx)
        else:  # pragma: no cover - defensive
            raise MeasureError(f"unknown modifier {type(modifier).__name__}")
    return terms


def _evaluate_set_value(
    modifier: BoundSet,
    terms: list[Term],
    env: Optional["EvalEnv"],
    ctx: "ExecutionContext",
) -> Any:
    from repro.engine.evaluator import evaluate

    def lookup(dim_key: str) -> Any:
        # CURRENT dim: the single value the context pins the dimension to,
        # NULL when the dimension is unconstrained (paper section 3.5).
        for term in terms:
            if term.dim_key == dim_key:
                pinned, value = term.current_value()
                if pinned:
                    return value
        return None

    substituted = substitute_current(modifier.value_expr, lookup)
    return evaluate(substituted, env, ctx)


def substitute_current(expr: b.BoundExpr, lookup) -> b.BoundExpr:
    """Replace every BoundCurrentDim with a literal from ``lookup``."""
    if isinstance(expr, b.BoundCurrentDim):
        return b.BoundLiteral(lookup(expr.dim_key), expr.dtype)
    changes = {}
    for f in dataclasses.fields(expr):  # type: ignore[arg-type]
        value = getattr(expr, f.name)
        if isinstance(value, b.BoundExpr):
            new = substitute_current(value, lookup)
            if new is not value:
                changes[f.name] = new
        elif isinstance(value, list) and value and isinstance(value[0], b.BoundExpr):
            new_list = [substitute_current(item, lookup) for item in value]
            if any(a is not old for a, old in zip(new_list, value)):
                changes[f.name] = new_list
        elif (
            isinstance(value, list)
            and value
            and isinstance(value[0], tuple)
            and len(value[0]) == 2
            and isinstance(value[0][0], b.BoundExpr)
        ):
            new_pairs = [
                (substitute_current(cond, lookup), substitute_current(result, lookup))
                for cond, result in value
            ]
            changes[f.name] = new_pairs
    if not changes:
        return expr
    return dataclasses.replace(expr, **changes)  # type: ignore[arg-type]


def _build_where_terms(
    modifier: BoundWhere,
    env: Optional["EvalEnv"],
    ctx: "ExecutionContext",
) -> list[Term]:
    from repro.engine.evaluator import EvalEnv, evaluate

    terms: list[Term] = []
    for source_expr, value_expr in modifier.eq_pairs:
        # The value side references the call site at depth 1.  dim_key=None:
        # these are predicate terms, not removable dimension terms.
        value = evaluate(value_expr, EvalEnv((), env), ctx)
        terms.append(EqTerm(None, source_expr, value, strict=True))
    if modifier.pred is not None:
        key_values: tuple = ()
        if modifier.outer_refs and env is not None:
            try:
                key_values = tuple(
                    env.at_depth(depth - 1).row[offset]
                    for depth, offset in modifier.outer_refs
                )
            except Exception:  # noqa: BLE001 - fall back to uncacheable
                key_values = (object(),)
        terms.append(PredTerm(modifier.pred, env, key_values, modifier.label))
    return terms


def build_visible_term(
    spec: ContextSpec,
    env: Optional["EvalEnv"],
) -> Optional[VisibleTerm]:
    """Materialize the VISIBLE term for the current call site.

    The visible row set is the current group's input rows (captured by the
    Aggregate operator) or, at row-grain call sites, the current row itself.
    """
    info = spec.visible
    if info is None:
        return None
    if not info.preds:
        # Nothing filters the query; VISIBLE adds no constraint.
        return None
    if spec.captured_rows_offset is not None and env is not None:
        group_rows = env.row[spec.captured_rows_offset]
    elif env is not None:
        group_rows = (env.row,)
    else:
        group_rows = ()
    parent = env.parent if env is not None else None
    return VisibleTerm(
        preds=info.preds,
        group_rows=group_rows,
        range_start=info.range_start,
        range_end=info.range_end,
        offset_dim_exprs=info.offset_dim_exprs,
        parent_env=parent,
    )
