"""Static expansion of measures to plain SQL (paper sections 3.3 and 4.2).

Every measure reference can be rewritten to a correlated scalar subquery over
the measure's source table whose WHERE clause expresses the evaluation
context (Listing 5).  This module implements that rewrite at the AST level:
the input is a query using measures, the output is measure-free SQL that the
same engine (or any SQL engine) can run, and equivalence with the top-down
interpreter is property-tested.

Example (the paper's Listing 3 becomes its Listing 5)::

    SELECT prodName, AGGREGATE(profitMargin)
    FROM EnhancedOrders GROUP BY prodName

expands to::

    SELECT prodName,
           (SELECT (SUM(i1.revenue) - SUM(i1.cost)) / SUM(i1.revenue)
            FROM Orders AS i1
            WHERE i1.prodName IS NOT DISTINCT FROM o.prodName)
    FROM (SELECT orderDate, prodName FROM Orders) AS o
    GROUP BY prodName

Scope: the general correlated-subquery strategy supports plain GROUP BY
queries, row-grain call sites, all AT modifiers, and grouping sets (rewritten
to a UNION ALL of plain branches); measures composed from other measures and
VISIBLE across join inputs are only supported by the interpreter (see
DESIGN.md).  The ``inline`` and ``window`` strategies in
:mod:`repro.core.strategies` cover the special shapes of paper section 6.4.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.catalog.objects import BaseTable, View
from repro.errors import BindError, MeasureError, UnsupportedError
from repro.sql import ast
from repro.sql.printer import to_sql
from repro.sql.visitor import transform, transform_topdown

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import Database

__all__ = ["expand_to_sql", "expand_query_ast", "Expander"]


def expand_to_sql(
    db: "Database", query: ast.Query, *, strategy: str = "subquery", tracer=None
) -> str:
    """Expand ``query``'s measures and render the result as SQL text."""
    return to_sql(expand_query_ast(db, query, strategy=strategy, tracer=tracer))


def _traced_attempt(tracer, name: str, thunk):
    """Run one strategy attempt under an ``expand:<name>`` span (if any),
    recording whether the shape was supported."""
    if tracer is None:
        return thunk()
    span = tracer.begin(f"expand:{name}", "expand")
    try:
        result = thunk()
    except UnsupportedError:
        if span is not None:
            span.meta["outcome"] = "unsupported"
        tracer.end(span)
        raise
    if span is not None:
        span.meta["outcome"] = "ok"
    tracer.end(span)
    return result


def expand_query_ast(
    db: "Database", query: ast.Query, *, strategy: str = "subquery", tracer=None
) -> ast.Query:
    if strategy == "auto":
        # Cheapest shape first: inline produces a plain GROUP BY, window a
        # single-pass window query, subquery the general (but correlated)
        # form.  The specialized strategies reject unsupported shapes with
        # UnsupportedError, so the cascade is safe.
        for candidate in ("inline", "window"):
            try:
                return expand_query_ast(
                    db, query, strategy=candidate, tracer=tracer
                )
            except UnsupportedError:
                continue
        return expand_query_ast(db, query, strategy="subquery", tracer=tracer)
    if strategy == "subquery":
        return _traced_attempt(
            tracer,
            "subquery",
            lambda: Expander(db).expand_query(copy.deepcopy(query)),
        )
    if strategy == "inline":
        from repro.core.strategies import inline_expand

        return _traced_attempt(
            tracer,
            "inline",
            lambda: inline_expand(db, copy.deepcopy(query), tracer=tracer),
        )
    if strategy == "window":
        from repro.core.strategies import window_expand

        return _traced_attempt(
            tracer,
            "window",
            lambda: window_expand(db, copy.deepcopy(query), tracer=tracer),
        )
    if strategy == "winmagic":
        # Section 6.3: expand to the general correlated-subquery form,
        # then de-correlate it into window aggregates.  Raises
        # UnsupportedError when the expanded shape is not a WinMagic
        # pattern, so the strategy composes with the others' contract.
        from repro.core.winmagic import winmagic_rewrite

        def _winmagic() -> ast.Query:
            expanded = Expander(db).expand_query(copy.deepcopy(query))
            if isinstance(expanded, ast.Select):
                expanded.from_clause = _collapse_identity_projection(
                    expanded.from_clause
                )
            return winmagic_rewrite(db, expanded, tracer=tracer)

        return _traced_attempt(tracer, "winmagic", _winmagic)
    raise UnsupportedError(f"unknown expansion strategy {strategy!r}")


def _collapse_identity_projection(
    from_clause: Optional[ast.TableRef],
) -> Optional[ast.TableRef]:
    """``(SELECT c AS c, ... FROM T) AS o`` -> ``T AS o`` when trivial.

    The subquery expander wraps the source table in an identity
    projection of the referenced columns; WinMagic wants the bare table.
    Collapsing is only done when the inner query is a pure column-list
    projection of a single base table — no predicate, grouping, DISTINCT,
    ordering, or computed item — so it never changes row multiplicity or
    values.
    """
    if not isinstance(from_clause, ast.SubqueryRef):
        return from_clause
    inner = from_clause.query
    if not isinstance(inner, ast.Select):
        return from_clause
    if not isinstance(inner.from_clause, ast.TableName):
        return from_clause
    if (
        inner.where is not None
        or inner.group_by
        or inner.having is not None
        or inner.qualify is not None
        or inner.order_by
        or inner.limit is not None
        or inner.offset is not None
        or inner.distinct
        or inner.from_clause.alias is not None
    ):
        return from_clause
    for item in inner.items:
        if not isinstance(item.expr, ast.ColumnRef) or len(item.expr.parts) != 1:
            return from_clause
        if item.alias is not None and item.alias.lower() != item.expr.name.lower():
            return from_clause
    return ast.TableName(inner.from_clause.name, alias=from_clause.alias)


# ---------------------------------------------------------------------------
# Descriptors
# ---------------------------------------------------------------------------


@dataclass
class ExpTable:
    """Expansion-time description of a measure-bearing relation."""

    #: Exposed non-measure column names (original case), in order.
    columns: list[str]
    #: lower name -> dimension expression over the source (refs unqualified).
    dims: dict[str, ast.Expression]
    #: lower name -> measure formula over the source.
    measures: dict[str, ast.Expression]
    #: The defining query's FROM clause (shared; deep-copied per use).
    source_from: ast.TableRef
    source_where: Optional[ast.Expression]


@dataclass
class ExpRelation:
    """One FROM item as seen by the expander."""

    alias: str
    columns: list[str]  # exposed non-measure column names (original case)
    table: Optional[ExpTable] = None  # set when the relation has measures

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(c.lower() == lowered for c in self.columns)

    def has_measure(self, name: str) -> bool:
        return self.table is not None and name.lower() in self.table.measures


@dataclass
class _Term:
    """One conjunct of an expansion-time evaluation context."""

    kind: str  # 'dim' or 'pred'
    key: str  # canonical source-expression text ('' for preds)
    source_expr: ast.Expression  # over the scalar subquery's source
    outer_value: Optional[ast.Expression]  # correlated value (dim terms)
    predicate: Optional[ast.Expression] = None  # pred terms

    def to_predicate(self) -> ast.Expression:
        if self.kind == "pred":
            assert self.predicate is not None
            return self.predicate
        assert self.outer_value is not None
        return ast.IsDistinctFrom(self.source_expr, self.outer_value, negated=True)


# ---------------------------------------------------------------------------
# The expander
# ---------------------------------------------------------------------------


class Expander:
    """Rewrites measure references into correlated scalar subqueries."""

    def __init__(self, db: "Database"):
        self.db = db
        self._alias_counter = 0
        self._cte_tables: list[dict[str, tuple[ExpTable, list[str]]]] = []

    def fresh_alias(self, prefix: str = "i") -> str:
        self._alias_counter += 1
        return f"{prefix}{self._alias_counter}"

    # -- queries -------------------------------------------------------------

    def expand_query(self, query: ast.Query) -> ast.Query:
        if isinstance(query, ast.WithQuery):
            return self._expand_with(query)
        if isinstance(query, ast.Select):
            if any(
                not isinstance(e, ast.SimpleGrouping) for e in query.group_by
            ):
                return self._expand_grouping_sets(query)
            select, _ = self._expand_select(query)
            return select
        if isinstance(query, ast.SetOp):
            query.left = self.expand_query(query.left)
            query.right = self.expand_query(query.right)
            return query
        if isinstance(query, ast.Values):
            return query
        raise UnsupportedError(f"cannot expand {type(query).__name__}")

    def _expand_with(self, query: ast.WithQuery) -> ast.Query:
        frame: dict[str, tuple[ExpTable, list[str]]] = {}
        self._cte_tables.append(frame)
        try:
            kept_ctes: list[ast.Cte] = []
            for cte in query.ctes:
                if isinstance(cte.query, ast.Select) and any(
                    item.is_measure for item in cte.query.items
                ):
                    table, stripped = self._measure_table_of(cte.query)
                    frame[cte.name.lower()] = (table, table.columns)
                    kept_ctes.append(ast.Cte(cte.name, cte.columns, stripped))
                else:
                    kept_ctes.append(
                        ast.Cte(cte.name, cte.columns, self.expand_query(cte.query))
                    )
            body = self.expand_query(query.body)
            return ast.WithQuery(kept_ctes, body)
        finally:
            self._cte_tables.pop()

    def _lookup_cte(self, name: str) -> Optional[tuple[ExpTable, list[str]]]:
        lowered = name.lower()
        for frame in reversed(self._cte_tables):
            if lowered in frame:
                return frame[lowered]
        return None

    # -- measure-table extraction ----------------------------------------------

    def _measure_table_of(
        self, select: ast.Select
    ) -> tuple[ExpTable, ast.Select]:
        """Build an ExpTable from a measure-defining SELECT and return the
        stripped (measure-free) version of the query."""
        if select.group_by or select.having is not None:
            raise UnsupportedError(
                "expansion of measures defined in grouped queries is not supported"
            )
        # The defining query's FROM may itself use measures: expand first.
        inner_from = select.from_clause
        if inner_from is None:
            raise UnsupportedError("measure definitions require a FROM clause")
        source_relations: list[ExpRelation] = []
        inner_from = self._expand_from(inner_from, source_relations, [])
        source_scope = _ExpScope(source_relations)

        columns: list[str] = []
        dims: dict[str, ast.Expression] = {}
        measures: dict[str, ast.Expression] = {}
        kept_items: list[ast.SelectItem] = []
        star_columns = self._star_columns(inner_from)

        def add_dim(name: str, expr: ast.Expression) -> None:
            columns.append(name)
            dims[name.lower()] = _mark_source_refs(copy.deepcopy(expr))

        for item in select.items:
            if item.is_measure:
                assert item.alias is not None
                measures[item.alias.lower()] = item.expr
                continue
            if isinstance(item.expr, ast.Star):
                for col in star_columns:
                    add_dim(col, ast.ColumnRef((col,)))
                    kept_items.append(
                        ast.SelectItem(ast.ColumnRef((col,)), col)
                    )
                continue
            name = item.alias or (
                item.expr.name if isinstance(item.expr, ast.ColumnRef) else None
            )
            if name is None:
                raise UnsupportedError(
                    "measure-defining queries must name computed columns"
                )
            add_dim(name, item.expr)
            kept_items.append(ast.SelectItem(item.expr, name))

        # Measures composed from the input's measures cannot be expanded
        # statically (paper section 6.4); the interpreter handles them.
        for formula in measures.values():
            if _contains_measure_use(formula, source_scope):
                raise UnsupportedError(
                    "static expansion of measures composed from other "
                    "measures is not supported; use the interpreter"
                )

        # Resolve sibling measure references by textual inlining, then mark
        # source-side references for the alias rename at use sites.
        measures = _inline_siblings(measures)
        measures = {
            name: _mark_source_refs(formula) for name, formula in measures.items()
        }

        table = ExpTable(
            columns=columns,
            dims=dims,
            measures=measures,
            source_from=inner_from,
            source_where=(
                _mark_source_refs(copy.deepcopy(select.where))
                if select.where is not None
                else None
            ),
        )
        stripped = ast.Select(
            items=kept_items,
            from_clause=inner_from,
            where=select.where,
            distinct=select.distinct,
            order_by=select.order_by,
            limit=select.limit,
            offset=select.offset,
        )
        return table, stripped

    def _star_columns(self, from_clause: ast.TableRef) -> list[str]:
        """Column names produced by ``SELECT *`` over ``from_clause``."""
        if isinstance(from_clause, ast.TableName):
            cte = self._lookup_cte(from_clause.name)
            if cte is not None:
                return list(cte[1])
            obj = self.db.catalog.resolve(from_clause.name)
            if isinstance(obj, BaseTable):
                return [c.name for c in obj.schema.columns]
            assert isinstance(obj, View)
            from repro.semantics.binder import Binder

            bound = Binder(self.db.catalog).bind_query_as_relation(obj.query, None)
            return [c.name for c in bound.columns if not c.is_measure]
        if isinstance(from_clause, ast.SubqueryRef):
            from repro.semantics.binder import Binder

            bound = Binder(self.db.catalog).bind_query_as_relation(
                from_clause.query, None
            )
            return [c.name for c in bound.columns if not c.is_measure]
        if isinstance(from_clause, ast.Join):
            return self._star_columns(from_clause.left) + self._star_columns(
                from_clause.right
            )
        raise UnsupportedError("cannot expand * over this FROM clause")

    # -- SELECT expansion -----------------------------------------------------

    def _expand_select(
        self, select: ast.Select
    ) -> tuple[ast.Select, list[ExpRelation]]:
        relations: list[ExpRelation] = []
        join_conds: list[ast.Expression] = []
        if select.from_clause is not None:
            select.from_clause = self._expand_from(
                select.from_clause, relations, join_conds
            )

        scope = _ExpScope(relations)
        is_aggregate = _detect_aggregate(select)

        # Group terms available to measures at aggregate call sites.
        group_exprs: list[ast.Expression] = []
        if is_aggregate:
            for element in select.group_by:
                group_exprs.append(element.expr)  # type: ignore[union-attr]

        rewriter = _UseRewriter(
            self, scope, select, group_exprs, is_aggregate, join_conds
        )
        for item in select.items:
            if not isinstance(item.expr, ast.Star):
                item.expr = rewriter.rewrite(item.expr, site="select")
        if select.where is not None:
            select.where = rewriter.rewrite(select.where, site="row")
        if select.having is not None:
            select.having = rewriter.rewrite(select.having, site="select")
        for order_item in select.order_by:
            order_item.expr = rewriter.rewrite(order_item.expr, site="select")
        return select, relations

    def _expand_grouping_sets(self, select: ast.Select) -> ast.Query:
        """Rewrite ROLLUP/CUBE/GROUPING SETS as a UNION ALL of plain GROUP BY
        branches, then expand each branch (so measures work under grouping
        sets too — the paper's Listing 8 becomes statically expandable).

        Per branch: inactive grouping keys become NULL literals in the
        projection and GROUPING/GROUPING_ID calls become constants.
        """
        if select.distinct:
            raise UnsupportedError(
                "expansion of DISTINCT with grouping sets is not supported"
            )

        registry: dict[str, ast.Expression] = {}

        def register(expr: ast.Expression) -> str:
            key = to_sql(expr)
            registry.setdefault(key, expr)
            return key

        element_sets: list[list[list[str]]] = []
        for element in select.group_by:
            if isinstance(element, ast.SimpleGrouping):
                element_sets.append([[register(element.expr)]])
            elif isinstance(element, ast.Rollup):
                keys = [register(e) for e in element.exprs]
                element_sets.append(
                    [keys[:i] for i in range(len(keys), -1, -1)]
                )
            elif isinstance(element, ast.Cube):
                keys = [register(e) for e in element.exprs]
                sets = []
                for mask in range(1 << len(keys)):
                    sets.append(
                        [keys[i] for i in range(len(keys)) if mask & (1 << i)]
                    )
                sets.sort(key=len, reverse=True)
                element_sets.append(sets)
            elif isinstance(element, ast.GroupingSets):
                element_sets.append(
                    [[register(e) for e in group] for group in element.sets]
                )
            else:  # pragma: no cover - parser guarantees
                raise UnsupportedError(type(element).__name__)

        grouping_sets: list[list[str]] = [[]]
        for sets in element_sets:
            grouping_sets = [
                existing + candidate
                for existing in grouping_sets
                for candidate in sets
            ]

        branches: list[ast.Query] = []
        for keys in grouping_sets:
            active: list[str] = []
            for key in keys:
                if key not in active:
                    active.append(key)
            branch = ast.Select(
                items=copy.deepcopy(select.items),
                from_clause=copy.deepcopy(select.from_clause),
                where=copy.deepcopy(select.where),
                group_by=[
                    ast.SimpleGrouping(copy.deepcopy(registry[key]))
                    for key in active
                ],
                having=copy.deepcopy(select.having),
                force_aggregate=True,
            )
            active_set = set(active)
            transform = _GroupingSetBranch(registry, active_set).transform
            branch.items = [
                ast.SelectItem(transform(item.expr), item.alias, item.is_measure)
                for item in branch.items
            ]
            if branch.having is not None:
                branch.having = transform(branch.having)
            branches.append(self.expand_query(branch))

        union: ast.Query = branches[0]
        for branch in branches[1:]:
            union = ast.SetOp("UNION", True, union, branch)

        if select.order_by and isinstance(union, ast.Select):
            # A single grouping set degenerates to one plain branch.
            union.order_by = copy.deepcopy(select.order_by)
        elif select.order_by:
            item_keys = [to_sql(item.expr) for item in select.items]
            mapped: list[ast.OrderItem] = []
            for order_item in select.order_by:
                expr = order_item.expr
                if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                    mapped.append(order_item)
                    continue
                key = to_sql(expr)
                if key in item_keys:
                    mapped.append(
                        ast.OrderItem(
                            ast.Literal(item_keys.index(key) + 1),
                            order_item.descending,
                            order_item.nulls_first,
                        )
                    )
                    continue
                aliases = [
                    (item.alias or "").lower() for item in select.items
                ]
                if (
                    isinstance(expr, ast.ColumnRef)
                    and len(expr.parts) == 1
                    and expr.parts[0].lower() in aliases
                ):
                    mapped.append(
                        ast.OrderItem(
                            ast.Literal(aliases.index(expr.parts[0].lower()) + 1),
                            order_item.descending,
                            order_item.nulls_first,
                        )
                    )
                    continue
                raise UnsupportedError(
                    "ORDER BY on a grouping-set expansion must reference "
                    "output columns"
                )
            union.order_by = mapped
        if select.limit is not None:
            union.limit = copy.deepcopy(select.limit)  # type: ignore[union-attr]
        if select.offset is not None:
            union.offset = copy.deepcopy(select.offset)  # type: ignore[union-attr]
        return union

    def _expand_from(
        self,
        ref: ast.TableRef,
        relations: list[ExpRelation],
        join_conds: list[ast.Expression],
    ) -> ast.TableRef:
        if isinstance(ref, ast.TableName):
            cte = self._lookup_cte(ref.name)
            if cte is not None:
                table, columns = cte
                relations.append(
                    ExpRelation(ref.alias or ref.name, list(columns), table)
                )
                return ref
            obj = self.db.catalog.resolve(ref.name)
            if isinstance(obj, BaseTable):
                relations.append(
                    ExpRelation(
                        ref.alias or ref.name,
                        [c.name for c in obj.schema.columns],
                    )
                )
                return ref
            assert isinstance(obj, View)
            view_query = copy.deepcopy(obj.query)
            return self._relation_from_query(
                view_query, ref.alias or obj.name, relations
            )
        if isinstance(ref, ast.SubqueryRef):
            alias = ref.alias or self.fresh_alias("t")
            return self._relation_from_query(ref.query, alias, relations)
        if isinstance(ref, ast.Join):
            ref.left = self._expand_from(ref.left, relations, join_conds)
            ref.right = self._expand_from(ref.right, relations, join_conds)
            if ref.condition is not None:
                join_conds.append(ref.condition)
            elif ref.using:
                for name in ref.using:
                    left_rel = _owner_of(relations[:-1], name)
                    right_rel = relations[-1]
                    if left_rel is not None:
                        join_conds.append(
                            ast.Binary(
                                "=",
                                ast.ColumnRef((left_rel.alias, name)),
                                ast.ColumnRef((right_rel.alias, name)),
                            )
                        )
            return ref
        raise UnsupportedError(f"cannot expand {type(ref).__name__} in FROM")

    def _relation_from_query(
        self, query: ast.Query, alias: str, relations: list[ExpRelation]
    ) -> ast.TableRef:
        if isinstance(query, ast.Select) and any(
            item.is_measure for item in query.items
        ):
            table, stripped = self._measure_table_of(query)
            relations.append(ExpRelation(alias, list(table.columns), table))
            return ast.SubqueryRef(stripped, alias)
        expanded = self.expand_query(query)
        from repro.semantics.binder import Binder

        bound = Binder(self.db.catalog).bind_query_as_relation(expanded, None)
        relations.append(
            ExpRelation(alias, [c.name for c in bound.columns])
        )
        return ast.SubqueryRef(expanded, alias)

    # -- scalar-subquery construction -------------------------------------------

    def build_measure_subquery(
        self,
        relation: ExpRelation,
        measure_name: str,
        terms: list[_Term],
    ) -> ast.ScalarSubquery:
        """The paper's rewrite: measure -> correlated scalar subquery."""
        table = relation.table
        assert table is not None
        source, rename = self._instantiate_source(table)
        formula = _apply_rename(copy.deepcopy(table.measures[measure_name.lower()]), rename)
        conjuncts: list[ast.Expression] = []
        if table.source_where is not None:
            conjuncts.append(
                _apply_rename(copy.deepcopy(table.source_where), rename)
            )
        for term in terms:
            pred = term.to_predicate()
            conjuncts.append(_apply_rename(pred, rename))
        where = _and_all(conjuncts)
        inner = ast.Select(
            items=[ast.SelectItem(formula)],
            from_clause=source,
            where=where,
        )
        return ast.ScalarSubquery(inner)

    def _instantiate_source(
        self, table: ExpTable
    ) -> tuple[ast.TableRef, dict[str, str]]:
        """Deep-copy the measure source with fresh aliases.

        Returns the copied FROM tree and the alias-rename map (old lower
        name -> new alias), used to re-qualify references in the formula,
        dimension expressions, and baked WHERE clause.
        """
        source = copy.deepcopy(table.source_from)
        rename: dict[str, str] = {}
        alias_map: dict[str, str] = {}

        def assign(ref: ast.TableRef) -> None:
            if isinstance(ref, ast.TableName):
                old = (ref.alias or ref.name).lower()
                ref.alias = self.fresh_alias()
                rename[old] = ref.alias
                alias_map[old] = ref.alias
            elif isinstance(ref, ast.SubqueryRef):
                old = (ref.alias or "").lower()
                ref.alias = self.fresh_alias()
                if old:
                    rename[old] = ref.alias
                    alias_map[old] = ref.alias
            elif isinstance(ref, ast.Join):
                assign(ref.left)
                assign(ref.right)
                if ref.condition is not None:
                    ref.condition = _rename_plain_qualifiers(
                        ref.condition, alias_map
                    )

        assign(source)
        if isinstance(source, (ast.TableName, ast.SubqueryRef)):
            rename[""] = source.alias or ""
        else:
            rename[""] = ""  # multi-relation source: leave refs unqualified
        return source, rename

    def translate_to_source(
        self,
        expr: ast.Expression,
        relation: ExpRelation,
        scope: "_ExpScope",
    ) -> Optional[ast.Expression]:
        """Rewrite a call-site expression onto the measure source, or None if
        it references columns outside the relation's dimensions."""
        table = relation.table
        assert table is not None
        failed = False

        def visit(node: ast.Expression) -> ast.Expression:
            nonlocal failed
            if isinstance(node, ast.ColumnRef):
                owner = scope.owner(node)
                if owner is not relation:
                    failed = True
                    return node
                dim = table.dims.get(node.name.lower())
                if dim is None:
                    failed = True
                    return node
                return copy.deepcopy(dim)
            if isinstance(node, (ast.ScalarSubquery, ast.Exists, ast.InSubquery)):
                failed = True
            return node

        rewritten = transform(expr, visit, into_queries=False)
        return None if failed else rewritten


class _GroupingSetBranch:
    """Rewrites one grouping-set branch: inactive keys -> NULL, GROUPING ->
    constants."""

    def __init__(self, registry: dict[str, ast.Expression], active: set[str]):
        self.registry = registry
        self.active = active

    def transform(self, expr: ast.Expression) -> ast.Expression:
        from repro.sql.visitor import transform_topdown

        def visit(node: ast.Node):
            if isinstance(node, ast.FunctionCall) and node.name in (
                "GROUPING",
                "GROUPING_ID",
            ):
                bitmap = 0
                for argument in node.args:
                    key = to_sql(argument)
                    if key not in self.registry:
                        raise UnsupportedError(
                            "GROUPING arguments must be grouping expressions"
                        )
                    bitmap = (bitmap << 1) | (0 if key in self.active else 1)
                return ast.Literal(bitmap)
            if isinstance(node, ast.Expression):
                key = to_sql(node)
                if key in self.registry and key not in self.active:
                    return ast.Literal(None)
            return None

        return transform_topdown(copy.deepcopy(expr), visit)  # type: ignore[return-value]


class _ExpScope:
    def __init__(self, relations: list[ExpRelation]):
        self.relations = relations

    def owner(self, ref: ast.ColumnRef) -> Optional[ExpRelation]:
        if ref.qualifier is not None:
            lowered = ref.qualifier.lower()
            for relation in self.relations:
                if relation.alias.lower() == lowered:
                    return relation
            return None
        matches = [
            r
            for r in self.relations
            if r.has_column(ref.name) or r.has_measure(ref.name)
        ]
        return matches[0] if len(matches) >= 1 else None

    def qualify(self, expr: ast.Expression) -> ast.Expression:
        """Qualify unqualified column references with their relation alias."""

        def visit(node: ast.Expression) -> ast.Expression:
            if isinstance(node, ast.ColumnRef) and len(node.parts) == 1:
                owner = self.owner(node)
                if owner is not None:
                    return ast.ColumnRef((owner.alias, node.parts[0]))
            return node

        return transform(copy.deepcopy(expr), visit, into_queries=False)


class _UseRewriter:
    """Rewrites measure uses in one query's clauses."""

    def __init__(
        self,
        expander: Expander,
        scope: _ExpScope,
        select: ast.Select,
        group_exprs: list[ast.Expression],
        is_aggregate: bool,
        join_conds: list[ast.Expression],
    ):
        self.expander = expander
        self.scope = scope
        self.select = select
        self.group_exprs = group_exprs
        self.is_aggregate = is_aggregate
        self.join_conds = join_conds

    def rewrite(self, expr: ast.Expression, *, site: str) -> ast.Expression:
        def visit(node: ast.Node):
            if not isinstance(
                node, (ast.FunctionCall, ast.At, ast.ColumnRef)
            ):
                return None
            use = self._match_measure_use(node)
            if use is None:
                return None
            relation, measure_name, modifiers = use
            terms = self._base_terms(relation, site)
            terms = self._apply_modifiers(terms, modifiers, relation)
            subquery = self.expander.build_measure_subquery(
                relation, measure_name, terms
            )
            if self.is_aggregate and not self.group_exprs and site != "row":
                # No group keys: the subquery is the same for every input
                # row, but the query must stay an aggregate query so that it
                # returns exactly one row.  ANY_VALUE keeps that shape.
                return ast.FunctionCall("ANY_VALUE", [subquery])
            return subquery

        return transform_topdown(expr, visit)

    def _match_measure_use(
        self, node: ast.Expression
    ) -> Optional[tuple[ExpRelation, str, list[ast.AtModifier]]]:
        """Match m / m AT (...) / AGGREGATE(m) / EVAL(m AT ...)."""
        modifiers: list[ast.AtModifier] = []
        if isinstance(node, ast.FunctionCall) and node.name in ("AGGREGATE", "EVAL"):
            if len(node.args) != 1:
                raise BindError(f"{node.name} takes exactly one argument")
            inner = node.args[0]
            if node.name == "AGGREGATE":
                modifiers.append(ast.VisibleModifier())
            node = inner
        while isinstance(node, ast.At):
            modifiers.extend(node.modifiers)
            node = node.operand
        if not isinstance(node, ast.ColumnRef):
            return None
        owner = self.scope.owner(node)
        if owner is None or not owner.has_measure(node.name):
            if modifiers:
                raise MeasureError("AT can only be applied to a measure")
            return None
        return owner, node.name, modifiers

    # -- context construction ------------------------------------------------

    def _base_terms(self, relation: ExpRelation, site: str) -> list[_Term]:
        table = relation.table
        assert table is not None
        terms: list[_Term] = []
        if site == "row" or not self.is_aggregate:
            for column in table.columns:
                dim = table.dims[column.lower()]
                terms.append(
                    _Term(
                        "dim",
                        to_sql(dim),
                        copy.deepcopy(dim),
                        ast.ColumnRef((relation.alias, column)),
                    )
                )
            return terms
        for group_expr in self.group_exprs:
            translated = self.expander.translate_to_source(
                copy.deepcopy(group_expr), relation, self.scope
            )
            if translated is None:
                continue
            terms.append(
                _Term(
                    "dim",
                    to_sql(translated),
                    translated,
                    self.scope.qualify(group_expr),
                )
            )
        return terms

    def _apply_modifiers(
        self,
        terms: list[_Term],
        modifiers: list[ast.AtModifier],
        relation: ExpRelation,
    ) -> list[_Term]:
        for modifier in modifiers:
            if isinstance(modifier, ast.AllModifier):
                if not modifier.dims:
                    terms = []
                    continue
                removed = set()
                for dim in modifier.dims:
                    translated = self.expander.translate_to_source(
                        copy.deepcopy(dim), relation, self.scope
                    )
                    if translated is None:
                        raise MeasureError(
                            f"{to_sql(dim)} is not a dimension of the measure's table"
                        )
                    removed.add(to_sql(translated))
                terms = [t for t in terms if t.key not in removed]
            elif isinstance(modifier, ast.SetModifier):
                translated = self.expander.translate_to_source(
                    copy.deepcopy(modifier.dim), relation, self.scope
                )
                if translated is None:
                    raise MeasureError(
                        f"{to_sql(modifier.dim)} is not a dimension of the "
                        "measure's table"
                    )
                key = to_sql(translated)
                value = self._resolve_current(modifier.value, terms, relation)
                terms = [t for t in terms if t.key != key]
                terms.append(_Term("dim", key, translated, value))
            elif isinstance(modifier, ast.VisibleModifier):
                terms = terms + self._visible_terms(relation)
            elif isinstance(modifier, ast.WhereModifier):
                pred = self._translate_at_where(modifier.predicate, relation)
                terms = [_Term("pred", "", ast.Literal(True), None, pred)]
            else:
                raise UnsupportedError(type(modifier).__name__)
        return terms

    def _resolve_current(
        self,
        value: ast.Expression,
        terms: list[_Term],
        relation: ExpRelation,
    ) -> ast.Expression:
        def visit(node: ast.Expression) -> ast.Expression:
            if isinstance(node, ast.CurrentDim):
                translated = self.expander.translate_to_source(
                    copy.deepcopy(node.dim), relation, self.scope
                )
                if translated is None:
                    raise MeasureError(
                        f"CURRENT {to_sql(node.dim)}: not a dimension"
                    )
                key = to_sql(translated)
                for term in terms:
                    if term.kind == "dim" and term.key == key:
                        assert term.outer_value is not None
                        return copy.deepcopy(term.outer_value)
                return ast.Literal(None)
            return node

        resolved = transform(copy.deepcopy(value), visit, into_queries=False)
        return self.scope.qualify(resolved)

    def _visible_terms(self, relation: ExpRelation) -> list[_Term]:
        preds: list[ast.Expression] = []
        if self.select.where is not None:
            preds.extend(_split_and(self.select.where))
        for cond in self.join_conds:
            preds.extend(_split_and(cond))
        terms: list[_Term] = []
        for pred in preds:
            if _contains_measure_use(pred, self.scope):
                continue
            translated = self.expander.translate_to_source(
                copy.deepcopy(pred), relation, self.scope
            )
            if translated is None:
                raise UnsupportedError(
                    "static expansion of VISIBLE across join inputs is not "
                    "supported; use the interpreter (see DESIGN.md)"
                )
            terms.append(_Term("pred", "", ast.Literal(True), None, translated))
        return terms

    def _translate_at_where(
        self, predicate: ast.Expression, relation: ExpRelation
    ) -> ast.Expression:
        """Inside AT WHERE, unqualified dimension names denote the source row;
        qualified names denote the enclosing query (correlated)."""
        table = relation.table
        assert table is not None

        def visit(node: ast.Expression) -> ast.Expression:
            if isinstance(node, ast.ColumnRef):
                if len(node.parts) == 1:
                    dim = table.dims.get(node.name.lower())
                    if dim is not None:
                        return copy.deepcopy(dim)
                return self.scope.qualify(node)
            return node

        return transform(copy.deepcopy(predicate), visit, into_queries=False)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


SRC_MARKER = "$src"


def _owner_of(relations: list["ExpRelation"], name: str) -> Optional["ExpRelation"]:
    """First relation exposing column ``name`` (for USING translation)."""
    for relation in relations:
        if relation.has_column(name):
            return relation
    return None


def _rename_plain_qualifiers(
    expr: ast.Expression, alias_map: dict[str, str]
) -> ast.Expression:
    """Rename alias qualifiers inside the instantiated source tree itself
    (join conditions of a multi-relation measure source)."""

    def visit(node: ast.Expression) -> ast.Expression:
        if isinstance(node, ast.ColumnRef) and len(node.parts) >= 2:
            new_alias = alias_map.get(node.qualifier.lower())
            if new_alias:
                return ast.ColumnRef((new_alias, node.name))
        return node

    return transform(expr, visit, into_queries=False)


def _mark_source_refs(expr: ast.Expression) -> ast.Expression:
    """Tag source-side column references with a marker qualifier.

    Inside context-term predicates, source-row references coexist with
    correlated call-site references; marking the source side makes the later
    alias rename unambiguous (call-site aliases are never rewritten even if
    they collide with the defining query's aliases).
    """

    def visit(node: ast.Expression) -> ast.Expression:
        if isinstance(node, ast.ColumnRef):
            if node.parts and node.parts[0].startswith(SRC_MARKER):
                return node
            if len(node.parts) == 1:
                return ast.ColumnRef((SRC_MARKER, node.parts[0]))
            return ast.ColumnRef(
                (f"{SRC_MARKER}${node.qualifier.lower()}", node.name)
            )
        return node

    return transform(expr, visit, into_queries=False)


def _split_and(expr: ast.Expression) -> list[ast.Expression]:
    if isinstance(expr, ast.Binary) and expr.op == "AND":
        return _split_and(expr.left) + _split_and(expr.right)
    return [expr]


def _and_all(conjuncts: list[ast.Expression]) -> Optional[ast.Expression]:
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = ast.Binary("AND", result, conjunct)
    return result


def _detect_aggregate(select: ast.Select) -> bool:
    from repro.engine.aggregates import is_aggregate_function

    if select.group_by or select.having is not None or select.force_aggregate:
        return True

    def scan(expr: ast.Node) -> bool:
        if isinstance(expr, ast.Query):
            return False
        if isinstance(expr, ast.FunctionCall):
            name = expr.name.upper()
            if name == "AGGREGATE":
                return True
            if (
                is_aggregate_function(name)
                and expr.over is None
                and expr.over_name is None
            ):
                return True
        return any(scan(child) for child in expr.children())

    return any(not item.is_measure and scan(item.expr) for item in select.items)


def _uses_measures(select: ast.Select, scope: _ExpScope) -> bool:
    def scan(expr: ast.Node) -> bool:
        if isinstance(expr, ast.Query):
            return False
        if isinstance(expr, ast.ColumnRef):
            owner = scope.owner(expr)
            if owner is not None and owner.has_measure(expr.name):
                return True
        return any(scan(child) for child in expr.children())

    for item in select.items:
        if scan(item.expr):
            return True
    for clause in (select.where, select.having):
        if clause is not None and scan(clause):
            return True
    return False


def _contains_measure_use(expr: ast.Expression, scope: _ExpScope) -> bool:
    for node in expr.walk():
        if isinstance(node, ast.ColumnRef):
            owner = scope.owner(node)
            if owner is not None and owner.has_measure(node.name):
                return True
    return False


def _inline_siblings(measures: dict[str, ast.Expression]) -> dict[str, ast.Expression]:
    """Inline references between measures defined in the same SELECT."""
    resolved: dict[str, ast.Expression] = {}
    visiting: list[str] = []

    def resolve(name: str) -> ast.Expression:
        if name in resolved:
            return resolved[name]
        if name in visiting:
            cycle = " -> ".join(visiting + [name])
            raise MeasureError(f"recursive measure definition: {cycle}")
        visiting.append(name)
        try:
            formula = measures[name]

            def visit(node: ast.Expression) -> ast.Expression:
                if (
                    isinstance(node, ast.ColumnRef)
                    and len(node.parts) == 1
                    and node.name.lower() in measures
                ):
                    return copy.deepcopy(resolve(node.name.lower()))
                return node

            result = transform(copy.deepcopy(formula), visit, into_queries=False)
        finally:
            visiting.pop()
        resolved[name] = result
        return result

    return {name: resolve(name) for name in measures}


def _apply_rename(expr: ast.Expression, rename: dict[str, str]) -> ast.Expression:
    """Resolve ``$src`` markers to the instantiated source's fresh aliases.

    Unmarked references (correlated call-site refs) pass through untouched.
    ``rename[""]`` is the default alias for unqualified source refs; an empty
    value means "leave unqualified" (multi-relation sources, where innermost
    scoping resolves the name).
    """

    def visit(node: ast.Expression) -> ast.Expression:
        if isinstance(node, ast.ColumnRef) and node.parts[0].startswith(SRC_MARKER):
            marker = node.parts[0]
            if marker == SRC_MARKER:
                default = rename.get("", "")
                if default:
                    return ast.ColumnRef((default, node.name))
                return ast.ColumnRef((node.name,))
            old_alias = marker[len(SRC_MARKER) + 1 :]
            new_alias = rename.get(old_alias)
            if new_alias is None:
                raise MeasureError(
                    f"unknown source alias {old_alias!r} in measure expansion"
                )
            return ast.ColumnRef((new_alias, node.name))
        return node

    return transform(expr, visit, into_queries=False)
