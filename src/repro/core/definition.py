"""Measure definitions.

A measure is defined by a query with ``AS MEASURE`` items (paper section 3.2).
All measures defined in one query share a :class:`MeasureGroup`: the **source
plan** (the defining query's FROM and WHERE — the WHERE is baked in and cannot
be subverted by users of the measure) and the **dimensions** (the defining
query's non-measure output columns, each an expression over the source row).

A measure's *dimensionality* is exactly its group's dimension set; evaluation
contexts are predicates over those dimensions (paper section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Optional

from repro.semantics.bound import BoundExpr, fingerprint
from repro.types import DataType

if TYPE_CHECKING:  # pragma: no cover
    from repro.plan.logical import LogicalPlan
    from repro.sql import ast

__all__ = ["Dimension", "MeasureGroup", "MeasureInstance"]


@dataclass
class Dimension:
    """One dimension column of a measure table."""

    name: str
    source_expr: BoundExpr
    dtype: DataType

    @cached_property
    def key(self) -> str:
        """Canonical identity of this dimension (over the source row)."""
        return fingerprint(self.source_expr)


@dataclass
class MeasureGroup:
    """The shared context of all measures defined by one query."""

    source_plan: "LogicalPlan"
    dims: dict[str, Dimension]  # keyed by lower-case exposed name
    dim_order: list[str] = field(default_factory=list)
    #: AST of the defining query's source (used by SQL expansion); optional.
    source_sql: Optional["ast.Query"] = None

    def dim(self, name: str) -> Optional[Dimension]:
        return self.dims.get(name.lower())

    def dim_by_key(self, key: str) -> Optional[Dimension]:
        for dimension in self.dims.values():
            if dimension.key == key:
                return dimension
        return None


@dataclass
class MeasureInstance:
    """A single measure: a formula over its group's source rows.

    ``formula`` is a bound expression whose aggregate calls range over the
    context-filtered source rows; scalar operators combine aggregate results
    (e.g. ``(SUM(revenue) - SUM(cost)) / SUM(revenue)``).  The formula may
    contain nested :class:`~repro.semantics.bound.BoundMeasureEval` nodes when
    a measure is built from measures of an input table (paper section 5.4).
    """

    name: str
    group: MeasureGroup
    formula: BoundExpr
    value_type: DataType
    #: AST of the original formula (used by SQL expansion); optional.
    formula_sql: Optional["ast.Expression"] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        dims = ", ".join(self.group.dim_order)
        return f"MeasureInstance({self.name}; dims=[{dims}])"
