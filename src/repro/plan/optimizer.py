"""Logical plan optimizer.

A small rule-based optimizer applied between binding and execution:

* **constant folding** — literal-only scalar expressions are evaluated once
  (in filters, projections, join conditions, sort keys, LIMIT bounds, and
  VALUES rows), with boolean identity simplification (``x AND TRUE`` →
  ``x``) and strict-NULL propagation (``col = NULL`` → ``NULL``) on top;
* **contradiction elimination** — a Filter whose predicate folded to a
  constant FALSE/NULL is replaced by an empty VALUES relation;
* **outer-join strengthening** — a LEFT/RIGHT/FULL join under a filter that
  rejects the padded NULL rows (per the dataflow analysis in
  :mod:`repro.analysis.dataflow`) is converted to the matching stricter
  join kind;
* **filter merging** — adjacent Filter nodes combine into one;
* **filter pushdown** — Filters move below Projects (when the projection is
  column-pruning) and into the probe side of inner joins when the predicate
  only references one side;
* **trivial project elimination** — identity Projects are dropped.

The optimizer never rewrites measure machinery (BoundMeasureEval contexts
reference column offsets that must stay stable), so rules bail out whenever a
measure evaluation is involved.  The A02 ablation benchmark runs with the
optimizer disabled to measure the rules' effect.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import InternalError, SqlError, ValidationError
from repro.plan import logical as plans
from repro.semantics import bound as b
from repro.semantics.correlate import transform_expr
from repro.types import BOOLEAN, infer_literal_type

__all__ = ["optimize"]

#: Safety valve for the fixpoint loop.  Each pass fires at most one rule per
#: node, so deep plans legitimately need many passes (e.g. pushing a filter
#: down one join level per pass), but a rule pair that keeps undoing each
#: other would loop forever — at this bound we assume that happened.
MAX_PASSES = 50


def optimize(
    plan: plans.LogicalPlan, *, validate: Optional[bool] = None
) -> plans.LogicalPlan:
    """Apply the rule set bottom-up until a fixpoint.

    With ``validate`` (default: the ``REPRO_VALIDATE`` environment flag) the
    plan's structural invariants are checked before the first pass and after
    every pass, and the fixpoint loop additionally fingerprints the plan
    between passes: a pass that reports progress while leaving the plan
    structurally identical is a broken rewrite rule, reported immediately as
    a :class:`~repro.errors.ValidationError` instead of spinning to the
    ``MAX_PASSES`` cap and surfacing as an opaque InternalError.
    """
    from repro.analysis.validator import (
        check_plan,
        plan_fingerprint,
        validation_enabled,
    )

    if validate is None:
        validate = validation_enabled()
    fp = None
    if validate:
        check_plan(plan, "binding")
        fp = plan_fingerprint(plan)
    for pass_number in range(1, MAX_PASSES + 1):
        new_plan, changed = _rewrite(plan)
        plan = new_plan
        if not changed:
            return plan
        if validate:
            check_plan(plan, f"optimizer pass {pass_number}")
            new_fp = plan_fingerprint(plan)
            if new_fp == fp:
                raise ValidationError(
                    f"optimizer pass {pass_number} claimed progress but "
                    f"produced a structurally identical plan; a rewrite rule "
                    f"is rebuilding nodes without changing them"
                )
            fp = new_fp
    raise InternalError(
        f"plan optimizer did not reach a fixpoint after {MAX_PASSES} passes; "
        f"a rewrite rule is oscillating"
    )


def _rewrite(plan: plans.LogicalPlan) -> tuple[plans.LogicalPlan, bool]:
    changed = False

    # Recurse into inputs first.
    if isinstance(plan, plans.Filter):
        child, child_changed = _rewrite(plan.input)
        if child_changed:
            plan = plans.Filter(child, plan.predicate)
            changed = True
    elif isinstance(plan, plans.Project):
        child, child_changed = _rewrite(plan.input)
        if child_changed:
            plan = plans.Project(child, plan.exprs, plan.schema)
            changed = True
    elif isinstance(plan, plans.Join):
        left, left_changed = _rewrite(plan.left)
        right, right_changed = _rewrite(plan.right)
        if left_changed or right_changed:
            plan = plans.Join(plan.kind, left, right, plan.condition, list(plan.schema))
            changed = True
    elif isinstance(plan, plans.Aggregate):
        child, child_changed = _rewrite(plan.input)
        if child_changed:
            plan = plans.Aggregate(
                child,
                plan.group_exprs,
                plan.agg_calls,
                plan.grouping_sets,
                plan.schema,
                plan.emit_grouping_id,
                plan.capture_rows,
            )
            changed = True
    elif isinstance(plan, (plans.Sort, plans.Limit, plans.Distinct)):
        child, child_changed = _rewrite(plan.input)
        if child_changed:
            if isinstance(plan, plans.Sort):
                plan = plans.Sort(child, plan.keys)
            elif isinstance(plan, plans.Limit):
                plan = plans.Limit(child, plan.limit, plan.offset)
            else:
                plan = plans.Distinct(child)
            changed = True
    elif isinstance(plan, plans.SetOpPlan):
        left, lc = _rewrite(plan.left)
        right, rc = _rewrite(plan.right)
        if lc or rc:
            plan = plans.SetOpPlan(plan.op, plan.all, left, right)
            changed = True
    elif isinstance(plan, plans.Window):
        child, child_changed = _rewrite(plan.input)
        if child_changed:
            plan = plans.Window(child, plan.calls, plan.schema)
            changed = True

    # Apply local rules.
    rewritten = _fold_plan_constants(plan)
    if rewritten is not None:
        return rewritten, True
    rewritten = _eliminate_contradiction(plan)
    if rewritten is not None:
        return rewritten, True
    rewritten = _strengthen_outer_join(plan)
    if rewritten is not None:
        return rewritten, True
    rewritten = _merge_filters(plan)
    if rewritten is not None:
        return rewritten, True
    rewritten = _push_filter_into_join(plan)
    if rewritten is not None:
        return rewritten, True
    rewritten = _drop_identity_project(plan)
    if rewritten is not None:
        return rewritten, True
    return plan, changed


def _is_pure(expr: b.BoundExpr) -> bool:
    """True when the expression is literal-only and side-effect free."""
    if isinstance(expr, b.BoundLiteral):
        return True
    if isinstance(expr, b.BoundCall) and expr.op not in ("$GROUPING",):
        return all(_is_pure(arg) for arg in expr.args)
    if isinstance(expr, b.BoundCase):
        parts = [c for pair in expr.whens for c in pair]
        if expr.else_result is not None:
            parts.append(expr.else_result)
        return all(_is_pure(p) for p in parts)
    if isinstance(expr, b.BoundCast):
        return _is_pure(expr.operand)
    return False


def _cannot_error(expr: b.BoundExpr) -> bool:
    """True when evaluating ``expr`` can never raise: dropping it from a
    plan cannot suppress a runtime error the original query would surface."""
    return isinstance(
        expr, (b.BoundLiteral, b.BoundColumn, b.BoundParameter)
    )


def _is_literal(expr: b.BoundExpr, value) -> bool:
    return isinstance(expr, b.BoundLiteral) and expr.value is value


def _simplify_call(node: b.BoundCall) -> Optional[b.BoundExpr]:
    """Boolean identities and strict-NULL propagation, justified by the
    dataflow lattice (see ``repro.analysis.dataflow.STRICT_OPS``).

    The evaluator computes AND/OR left-to-right with short-circuiting, so a
    simplification may only drop an operand that either would never have
    been evaluated or provably cannot raise.
    """
    if node.op == "AND" and len(node.args) == 2:
        left, right = node.args
        if _is_literal(left, False):
            return left
        if _is_literal(left, True):
            return right
        if _is_literal(right, True):
            return left
        if _is_literal(right, False) and _cannot_error(left):
            return right
        return None
    if node.op == "OR" and len(node.args) == 2:
        left, right = node.args
        if _is_literal(left, True):
            return left
        if _is_literal(left, False):
            return right
        if _is_literal(right, False):
            return left
        if _is_literal(right, True) and _cannot_error(left):
            return right
        return None
    from repro.analysis.dataflow import STRICT_OPS

    if node.op in STRICT_OPS and any(
        _is_literal(arg, None) for arg in node.args
    ):
        # A strict operator with a known-NULL operand is NULL — but only
        # fold when the discarded operands cannot raise at runtime.
        if all(
            _cannot_error(arg) for arg in node.args
            if not _is_literal(arg, None)
        ):
            return b.BoundLiteral(None, node.dtype)
    return None


def fold_constants(expr: b.BoundExpr) -> b.BoundExpr:
    """Evaluate literal-only subtrees once; simplify boolean identities and
    strict-NULL applications as their operands fold to literals."""

    def visit(node: b.BoundExpr) -> Optional[b.BoundExpr]:
        if isinstance(node, b.BoundLiteral):
            return node
        if _is_pure(node):
            from repro.engine.evaluator import EvalEnv, ExecutionContext, evaluate

            try:
                value = evaluate(node, EvalEnv(()), ExecutionContext(None))
            except SqlError:
                return node  # fold nothing that errors (e.g. 1/0 under CASE)
            return b.BoundLiteral(value, infer_literal_type(value))
        if isinstance(node, b.BoundCall):
            simplified = _simplify_call(node)
            if simplified is not None:
                # Re-fold: the surviving operand may simplify further.
                return fold_constants(simplified)
        return None

    return transform_expr(expr, visit)


def _fold_plan_constants(plan: plans.LogicalPlan) -> Optional[plans.LogicalPlan]:
    if isinstance(plan, plans.Filter):
        folded = fold_constants(plan.predicate)
        if isinstance(folded, b.BoundLiteral) and folded.value is True:
            return plan.input
        if folded is not plan.predicate:
            return plans.Filter(plan.input, folded)
    if isinstance(plan, plans.Project):
        folded = [fold_constants(e) for e in plan.exprs]
        if any(new is not old for new, old in zip(folded, plan.exprs)):
            return plans.Project(plan.input, folded, plan.schema)
    if isinstance(plan, plans.Join) and plan.condition is not None:
        folded = fold_constants(plan.condition)
        if isinstance(folded, b.BoundLiteral) and folded.value is True:
            # A TRUE condition matches every pair — same as no condition
            # for every join kind the executor implements.
            return plans.Join(
                plan.kind, plan.left, plan.right, None, list(plan.schema)
            )
        if folded is not plan.condition:
            return plans.Join(
                plan.kind, plan.left, plan.right, folded, list(plan.schema)
            )
    if isinstance(plan, plans.Sort) and plan.keys:
        folded_keys = [
            b.SortSpec(fold_constants(spec.expr), spec.descending, spec.nulls_first)
            if fold_constants(spec.expr) is not spec.expr
            else spec
            for spec in plan.keys
        ]
        if any(new is not old for new, old in zip(folded_keys, plan.keys)):
            return plans.Sort(plan.input, folded_keys)
    if isinstance(plan, plans.Limit):
        limit = None if plan.limit is None else fold_constants(plan.limit)
        offset = None if plan.offset is None else fold_constants(plan.offset)
        if limit is not plan.limit or offset is not plan.offset:
            return plans.Limit(plan.input, limit, offset)
    if isinstance(plan, plans.ValuesPlan) and plan.rows:
        folded_rows = [[fold_constants(cell) for cell in row] for row in plan.rows]
        if any(
            new is not old
            for new_row, old_row in zip(folded_rows, plan.rows)
            for new, old in zip(new_row, old_row)
        ):
            return plans.ValuesPlan(folded_rows, plan.schema)
    return None


def _eliminate_contradiction(plan: plans.LogicalPlan) -> Optional[plans.LogicalPlan]:
    """Filter with a statically FALSE/NULL predicate → empty relation.

    Only fires on an already-folded literal predicate: the fold machinery
    guarantees nothing that could raise at runtime was discarded to get
    there, so replacing the whole subtree with zero rows is exact.
    """
    if (
        isinstance(plan, plans.Filter)
        and isinstance(plan.predicate, b.BoundLiteral)
        and plan.predicate.value is not True
    ):
        return plans.ValuesPlan([], list(plan.schema))
    return None


def _strengthen_outer_join(plan: plans.LogicalPlan) -> Optional[plans.LogicalPlan]:
    """Convert an outer join under a padded-row-rejecting filter to the
    matching stricter kind.

    Justified by the dataflow facts: re-inferring the filter predicate with
    one side's columns pinned to the constant NULL yields a constant
    FALSE/NULL, so the NULL-padded rows that distinguish the outer join
    from its stricter counterpart never survive the filter.  Surviving rows
    keep their order (both join algorithms emit matches in left-row order),
    so results are byte-identical.
    """
    if not (isinstance(plan, plans.Filter) and isinstance(plan.input, plans.Join)):
        return None
    join = plan.input
    if join.kind not in ("LEFT", "RIGHT", "FULL"):
        return None
    from repro.analysis.dataflow import analyze_plan, is_null_rejecting

    left_width = len(join.left.schema)
    input_facts = analyze_plan(join)
    left_offsets = set(range(left_width))
    right_offsets = set(range(left_width, len(join.schema)))
    rejects_left_pad = join.kind in ("RIGHT", "FULL") and is_null_rejecting(
        plan.predicate, input_facts, left_offsets
    )
    rejects_right_pad = join.kind in ("LEFT", "FULL") and is_null_rejecting(
        plan.predicate, input_facts, right_offsets
    )
    if join.kind == "LEFT":
        new_kind = "INNER" if rejects_right_pad else None
    elif join.kind == "RIGHT":
        new_kind = "INNER" if rejects_left_pad else None
    else:  # FULL
        if rejects_left_pad and rejects_right_pad:
            new_kind = "INNER"
        elif rejects_right_pad:
            # Right-padded rows (left + NULLs) die: what survives is what a
            # RIGHT join produces (matches + NULL-padded left side).
            new_kind = "RIGHT"
        elif rejects_left_pad:
            new_kind = "LEFT"
        else:
            new_kind = None
    if new_kind is None:
        return None
    stricter = plans.Join(
        new_kind, join.left, join.right, join.condition, list(join.schema)
    )
    return plans.Filter(stricter, plan.predicate)


def _merge_filters(plan: plans.LogicalPlan) -> Optional[plans.LogicalPlan]:
    from repro.types import sql_and

    if isinstance(plan, plans.Filter) and isinstance(plan.input, plans.Filter):
        inner = plan.input
        merged = b.BoundCall(
            "AND", [inner.predicate, plan.predicate], BOOLEAN, sql_and
        )
        return plans.Filter(inner.input, merged)
    return None


def _references_measures(expr: b.BoundExpr) -> bool:
    return any(
        isinstance(node, (b.BoundMeasureEval, b.BoundSubquery))
        for node in b.walk(expr)
    )


def _push_filter_into_join(plan: plans.LogicalPlan) -> Optional[plans.LogicalPlan]:
    if not (isinstance(plan, plans.Filter) and isinstance(plan.input, plans.Join)):
        return None
    join = plan.input
    if join.kind != "INNER":
        return None
    if _references_measures(plan.predicate):
        return None
    left_width = len(join.left.schema)

    def side_of(expr: b.BoundExpr) -> Optional[str]:
        sides = set()
        for node in b.walk(expr):
            if isinstance(node, b.BoundColumn):
                sides.add("L" if node.offset < left_width else "R")
            elif isinstance(node, b.BoundOuterColumn):
                return None
        if len(sides) == 1:
            return sides.pop()
        return None

    conjuncts = _split_and(plan.predicate)
    left_preds, right_preds, rest = [], [], []
    for conjunct in conjuncts:
        side = side_of(conjunct)
        if side == "L":
            left_preds.append(conjunct)
        elif side == "R":
            right_preds.append(_shift(conjunct, -left_width))
        else:
            rest.append(conjunct)
    if not left_preds and not right_preds:
        return None
    new_left = join.left
    new_right = join.right
    if left_preds:
        new_left = plans.Filter(join.left, _and_all(left_preds))
    if right_preds:
        new_right = plans.Filter(join.right, _and_all(right_preds))
    new_join = plans.Join(join.kind, new_left, new_right, join.condition, list(join.schema))
    if rest:
        return plans.Filter(new_join, _and_all(rest))
    return new_join


def _split_and(expr: b.BoundExpr) -> list[b.BoundExpr]:
    if isinstance(expr, b.BoundCall) and expr.op == "AND":
        result = []
        for arg in expr.args:
            result.extend(_split_and(arg))
        return result
    return [expr]


def _and_all(conjuncts: list[b.BoundExpr]) -> b.BoundExpr:
    from repro.types import sql_and

    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = b.BoundCall("AND", [result, conjunct], BOOLEAN, sql_and)
    return result


def _shift(expr: b.BoundExpr, delta: int) -> b.BoundExpr:
    def visit(node: b.BoundExpr) -> Optional[b.BoundExpr]:
        if isinstance(node, b.BoundColumn):
            return b.BoundColumn(node.offset + delta, node.dtype, node.name)
        return None

    return transform_expr(expr, visit)


def _drop_identity_project(plan: plans.LogicalPlan) -> Optional[plans.LogicalPlan]:
    if not isinstance(plan, plans.Project):
        return None
    if len(plan.exprs) != len(plan.input.schema):
        return None
    for index, expr in enumerate(plan.exprs):
        if not (isinstance(expr, b.BoundColumn) and expr.offset == index):
            return None
    # Keep output names: only drop when they match the input's, otherwise the
    # projection is a (cheap but meaningful) rename.
    if [name for name, _ in plan.schema] != [name for name, _ in plan.input.schema]:
        return None
    return plan.input
