"""Logical plan operators.

Plans are trees of these nodes; the binder emits them directly and the
executor interprets them.  Every node knows its output schema as a list of
``(name, DataType)`` pairs; rows are flat tuples in schema order.

The :class:`Aggregate` node is grouping-sets aware: ``grouping_sets`` lists,
for each output grouping, which positions of ``group_exprs`` are active.  When
more than one grouping set exists (ROLLUP/CUBE), a hidden grouping-id column
is appended; when any projection above needs measure VISIBLE semantics, a
hidden column capturing the group's input rows is appended as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.semantics.bound import BoundAggCall, BoundExpr, BoundWindowCall, SortSpec
from repro.types import DataType

__all__ = [
    "LogicalPlan",
    "Scan",
    "SystemScan",
    "ValuesPlan",
    "Filter",
    "Project",
    "Join",
    "Aggregate",
    "Window",
    "Sort",
    "Limit",
    "Distinct",
    "SetOpPlan",
    "plan_tree_string",
]

Schema = list[tuple[str, DataType]]


class LogicalPlan:
    """Base class for plan nodes."""

    schema: Schema

    #: Dataflow facts (``repro.analysis.dataflow.OperatorFacts``) attached
    #: by :func:`~repro.analysis.dataflow.analyze_plan` after optimization.
    #: An instance attribute, not a dataclass field, so plan equality and
    #: structural fingerprints are unaffected.
    facts = None

    def inputs(self) -> Iterator["LogicalPlan"]:
        return iter(())

    @property
    def arity(self) -> int:
        return len(self.schema)

    def walk(self) -> Iterator["LogicalPlan"]:
        yield self
        for child in self.inputs():
            yield from child.walk()

    def label(self) -> str:
        return type(self).__name__


@dataclass
class Scan(LogicalPlan):
    """Read all rows of a base table from the catalog at execution time."""

    table_name: str
    schema: Schema

    def label(self) -> str:
        return f"Scan({self.table_name})"


@dataclass
class SystemScan(Scan):
    """Read a snapshot of a virtual system table (``repro.introspect``).

    Subclasses :class:`Scan` so every structural pass (optimizer,
    validator, plan fingerprint) treats it as a leaf relation; only the
    executor dispatches differently — it materializes the provider's rows
    once per query and serves every scan from that snapshot.
    """

    def label(self) -> str:
        return f"SystemScan({self.table_name})"


@dataclass
class ValuesPlan(LogicalPlan):
    """Literal rows; each cell is a bound expression (usually a literal)."""

    rows: list[list[BoundExpr]]
    schema: Schema


@dataclass
class Filter(LogicalPlan):
    input: LogicalPlan
    predicate: BoundExpr

    def __post_init__(self) -> None:
        self.schema = self.input.schema

    def inputs(self) -> Iterator[LogicalPlan]:
        yield self.input


@dataclass
class Project(LogicalPlan):
    input: LogicalPlan
    exprs: list[BoundExpr]
    schema: Schema

    def inputs(self) -> Iterator[LogicalPlan]:
        yield self.input


@dataclass
class Join(LogicalPlan):
    """Nested-loop join; output row = left columns ++ right columns.

    For LEFT/RIGHT/FULL joins, unmatched rows are padded with NULLs.
    ``condition`` is evaluated over the combined row.
    """

    kind: str  # INNER, LEFT, RIGHT, FULL, CROSS
    left: LogicalPlan
    right: LogicalPlan
    condition: Optional[BoundExpr]
    schema: Schema = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.schema:
            self.schema = list(self.left.schema) + list(self.right.schema)

    def inputs(self) -> Iterator[LogicalPlan]:
        yield self.left
        yield self.right

    def label(self) -> str:
        return f"Join({self.kind})"


@dataclass
class Aggregate(LogicalPlan):
    """Hash aggregation with grouping sets.

    Output columns, in order:

    1. one column per entry of ``group_exprs`` (NULL when the column is not
       part of the current grouping set),
    2. one column per entry of ``agg_calls``,
    3. if ``len(grouping_sets) > 1`` or ``emit_grouping_id``: the grouping id
       (bitmap, most-significant bit = first group expr; bit set = column
       absent from the grouping set),
    4. if ``capture_rows``: a tuple of the group's input rows (hidden column
       used by measure VISIBLE evaluation).
    """

    input: LogicalPlan
    group_exprs: list[BoundExpr]
    agg_calls: list[BoundAggCall]
    grouping_sets: list[list[int]]
    schema: Schema
    emit_grouping_id: bool = False
    capture_rows: bool = False

    def inputs(self) -> Iterator[LogicalPlan]:
        yield self.input

    @property
    def has_grouping_id(self) -> bool:
        return self.emit_grouping_id or len(self.grouping_sets) > 1

    @property
    def grouping_id_offset(self) -> int:
        return len(self.group_exprs) + len(self.agg_calls)

    @property
    def captured_rows_offset(self) -> int:
        return len(self.group_exprs) + len(self.agg_calls) + (
            1 if self.has_grouping_id else 0
        )

    def label(self) -> str:
        return (
            f"Aggregate(keys={len(self.group_exprs)}, aggs={len(self.agg_calls)},"
            f" sets={len(self.grouping_sets)})"
        )


@dataclass
class Window(LogicalPlan):
    """Appends one column per window call to the input rows."""

    input: LogicalPlan
    calls: list[BoundWindowCall]
    schema: Schema

    def inputs(self) -> Iterator[LogicalPlan]:
        yield self.input


@dataclass
class Sort(LogicalPlan):
    input: LogicalPlan
    keys: list[SortSpec]

    def __post_init__(self) -> None:
        self.schema = self.input.schema

    def inputs(self) -> Iterator[LogicalPlan]:
        yield self.input


@dataclass
class Limit(LogicalPlan):
    input: LogicalPlan
    limit: Optional[BoundExpr]
    offset: Optional[BoundExpr]

    def __post_init__(self) -> None:
        self.schema = self.input.schema

    def inputs(self) -> Iterator[LogicalPlan]:
        yield self.input


@dataclass
class Distinct(LogicalPlan):
    input: LogicalPlan

    def __post_init__(self) -> None:
        self.schema = self.input.schema

    def inputs(self) -> Iterator[LogicalPlan]:
        yield self.input


@dataclass
class SetOpPlan(LogicalPlan):
    op: str  # UNION, INTERSECT, EXCEPT
    all: bool
    left: LogicalPlan
    right: LogicalPlan

    def __post_init__(self) -> None:
        self.schema = self.left.schema

    def inputs(self) -> Iterator[LogicalPlan]:
        yield self.left
        yield self.right

    def label(self) -> str:
        return f"{self.op}{' ALL' if self.all else ''}"


def plan_tree_string(plan: LogicalPlan, indent: int = 0) -> str:
    """Render a plan tree for EXPLAIN-style debugging output."""
    lines = ["  " * indent + plan.label()]
    for child in plan.inputs():
        lines.append(plan_tree_string(child, indent + 1))
    return "\n".join(lines)
