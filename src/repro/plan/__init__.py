"""Logical plans and the rule-based optimizer."""

from repro.plan.logical import LogicalPlan, plan_tree_string
from repro.plan.optimizer import optimize

__all__ = ["LogicalPlan", "optimize", "plan_tree_string"]
