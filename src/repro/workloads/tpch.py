"""TPC-H-derived measure workload: deterministic generator + measure layer.

This module moves the benchmark trajectory off the paper's 5-row listing
tables and onto inputs where the summary-table rewriter, hash joins, and the
plan cache are actually measurable.  It provides:

* a **pure-Python, seed-deterministic generator** for the 8 TPC-H tables
  (``region``, ``nation``, ``supplier``, ``part``, ``partsupp``,
  ``customer``, ``orders``, ``lineitem``).  dbgen-compatible distributions
  are *not* a goal — stable pseudo-random columns with realistic
  cardinalities and foreign-key integrity are.  The same
  :class:`TpchConfig` always produces byte-identical tables, across
  processes and platforms (guarded by a regression test), so committed
  bench baselines stay comparable;
* a ``.tbl`` **loader/writer** (:func:`read_tbl`, :func:`load_tbl_dir`,
  :func:`write_tbl_dir`) for externally generated dbgen data, plus
  :func:`table_digest` for provenance fingerprints;
* a **measure layer** (:func:`tpch_measures`): views over
  lineitem/orders/customer defining ``revenue``, ``margin``,
  ``avg_discount`` and ``order_count`` as measures, with canonical
  drill-down queries (:data:`TPCH_QUERIES`) using ``AT`` — by region, by
  year, by returnflag — and summary-table definitions
  (:data:`TPCH_SUMMARIES`) the matview rewriter can hit.

Scale is parameterized by the TPC-H scale factor.  Presets
(:data:`SCALE_FACTORS`): SF 0.001 (~6k lineitem rows, the differential/
property-test scale), 0.01 (~60k rows, the committed bench scale), and
0.05/0.1 (opt-in via the ``slow`` pytest marker).

Usage::

    from repro.workloads.tpch import tpch_database, tpch_measures, TPCH_QUERIES
    db = tpch_database(sf=0.001)
    tpch_measures(db)
    db.execute(TPCH_QUERIES["revenue_by_region"])

or, interactively, ``python -m repro.workloads --tpch``.

See docs/WORKLOADS.md for the schema, the measure definitions, and how the
differential battery (tests/test_differential_tpch.py) derives its oracle
queries.
"""

from __future__ import annotations

import datetime
import hashlib
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

from repro.api import Database

__all__ = [
    "SCALE_FACTORS",
    "TPCH_QUERIES",
    "TPCH_SUMMARIES",
    "TPCH_TABLES",
    "TPCH_VIEWS",
    "TpchConfig",
    "generate_tpch",
    "load_tbl_dir",
    "load_tpch",
    "read_tbl",
    "table_cardinalities",
    "table_digest",
    "tpch_database",
    "tpch_measure_database",
    "tpch_measures",
    "write_tbl_dir",
]

#: Scale-factor presets.  0.001 and 0.01 run everywhere; 0.05 and 0.1 are
#: opt-in (pytest ``slow`` marker / the non-blocking CI tier).
SCALE_FACTORS = (0.001, 0.01, 0.05, 0.1)

#: The 8 TPC-H tables with their standard columns, in dbgen's ``.tbl``
#: column order (so external dbgen files load without a mapping step).
TPCH_TABLES: dict[str, list[tuple[str, str]]] = {
    "region": [
        ("r_regionkey", "INTEGER"),
        ("r_name", "VARCHAR"),
        ("r_comment", "VARCHAR"),
    ],
    "nation": [
        ("n_nationkey", "INTEGER"),
        ("n_name", "VARCHAR"),
        ("n_regionkey", "INTEGER"),
        ("n_comment", "VARCHAR"),
    ],
    "supplier": [
        ("s_suppkey", "INTEGER"),
        ("s_name", "VARCHAR"),
        ("s_address", "VARCHAR"),
        ("s_nationkey", "INTEGER"),
        ("s_phone", "VARCHAR"),
        ("s_acctbal", "DOUBLE"),
        ("s_comment", "VARCHAR"),
    ],
    "part": [
        ("p_partkey", "INTEGER"),
        ("p_name", "VARCHAR"),
        ("p_mfgr", "VARCHAR"),
        ("p_brand", "VARCHAR"),
        ("p_type", "VARCHAR"),
        ("p_size", "INTEGER"),
        ("p_container", "VARCHAR"),
        ("p_retailprice", "DOUBLE"),
        ("p_comment", "VARCHAR"),
    ],
    "partsupp": [
        ("ps_partkey", "INTEGER"),
        ("ps_suppkey", "INTEGER"),
        ("ps_availqty", "INTEGER"),
        ("ps_supplycost", "DOUBLE"),
        ("ps_comment", "VARCHAR"),
    ],
    "customer": [
        ("c_custkey", "INTEGER"),
        ("c_name", "VARCHAR"),
        ("c_address", "VARCHAR"),
        ("c_nationkey", "INTEGER"),
        ("c_phone", "VARCHAR"),
        ("c_acctbal", "DOUBLE"),
        ("c_mktsegment", "VARCHAR"),
        ("c_comment", "VARCHAR"),
    ],
    "orders": [
        ("o_orderkey", "INTEGER"),
        ("o_custkey", "INTEGER"),
        ("o_orderstatus", "VARCHAR"),
        ("o_totalprice", "DOUBLE"),
        ("o_orderdate", "DATE"),
        ("o_orderpriority", "VARCHAR"),
        ("o_clerk", "VARCHAR"),
        ("o_shippriority", "INTEGER"),
        ("o_comment", "VARCHAR"),
    ],
    "lineitem": [
        ("l_orderkey", "INTEGER"),
        ("l_partkey", "INTEGER"),
        ("l_suppkey", "INTEGER"),
        ("l_linenumber", "INTEGER"),
        ("l_quantity", "INTEGER"),
        ("l_extendedprice", "DOUBLE"),
        ("l_discount", "DOUBLE"),
        ("l_tax", "DOUBLE"),
        ("l_returnflag", "VARCHAR"),
        ("l_linestatus", "VARCHAR"),
        ("l_shipdate", "DATE"),
        ("l_commitdate", "DATE"),
        ("l_receiptdate", "DATE"),
        ("l_shipinstruct", "VARCHAR"),
        ("l_shipmode", "VARCHAR"),
        ("l_comment", "VARCHAR"),
    ],
}

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

# The spec's 25 nations with their region assignment (nation -> region index).
_NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_SHIPMODES = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"]
_SHIPINSTRUCT = ["COLLECT COD", "DELIVER IN PERSON", "NONE", "TAKE BACK RETURN"]
_CONTAINERS = ["SM BOX", "SM CASE", "MED BOX", "MED PACK", "LG BOX", "LG CASE"]
_TYPES = ["ECONOMY ANODIZED", "LARGE BRUSHED", "MEDIUM POLISHED",
          "PROMO BURNISHED", "SMALL PLATED", "STANDARD POLISHED"]
_BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]
_NOUNS = ["packages", "deposits", "requests", "accounts", "foxes",
          "pinto beans", "instructions", "theodolites", "platelets", "ideas"]
_VERBS = ["sleep", "haggle", "nag", "wake", "cajole", "detect", "integrate"]
_ADVERBS = ["quickly", "slowly", "carefully", "furiously", "blithely", "never"]

#: Order dates span the spec's [1992-01-01, 1998-08-02] window.
_START_DATE = datetime.date(1992, 1, 1)
_DATE_SPAN_DAYS = 2406


@dataclass(frozen=True)
class TpchConfig:
    """Parameters of the TPC-H workload: scale factor and RNG seed.

    Every derived quantity (table cardinalities, every generated value) is a
    pure function of these two numbers.
    """

    sf: float = 0.001
    seed: int = 19920101


def table_cardinalities(sf: float) -> dict[str, int]:
    """Target row counts per table at scale factor ``sf``.

    Follows the spec's SF-1 cardinalities (supplier 10k, part 200k,
    customer 150k, orders 1.5M; partsupp = 4/part; lineitem 1-7/order)
    scaled linearly, with small floors so tiny scale factors stay joinable.
    ``lineitem`` is approximate: the exact count is drawn per order.
    """
    return {
        "region": len(_REGIONS),
        "nation": len(_NATIONS),
        "supplier": max(5, int(10_000 * sf)),
        "part": max(20, int(200_000 * sf)),
        "partsupp": 4 * max(20, int(200_000 * sf)),
        "customer": max(30, int(150_000 * sf)),
        "orders": max(150, int(1_500_000 * sf)),
        "lineitem": 4 * max(150, int(1_500_000 * sf)),
    }


def _comment(rng: random.Random) -> str:
    return (
        f"{_ADVERBS[rng.randrange(len(_ADVERBS))]} "
        f"{_VERBS[rng.randrange(len(_VERBS))]} "
        f"{_NOUNS[rng.randrange(len(_NOUNS))]}"
    )


def _money(rng: random.Random, low: float, high: float) -> float:
    # Two-decimal money amounts; round() on a double is deterministic.
    return round(low + (high - low) * rng.random(), 2)


def _phone(rng: random.Random, nationkey: int) -> str:
    return (
        f"{10 + nationkey}-{rng.randrange(100, 1000)}-"
        f"{rng.randrange(100, 1000)}-{rng.randrange(1000, 10000)}"
    )


def _table_rng(config: TpchConfig, table: str) -> random.Random:
    """A per-table RNG stream, so each table's content is independent of
    the generation order of the others."""
    # Stable across processes: string seeding hashes with SHA-512 (CPython
    # seeds str deterministically), but derive an int explicitly anyway so
    # the scheme is obvious and version-proof.
    digest = hashlib.sha256(
        f"tpch:{config.seed}:{table}".encode("ascii")
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def generate_tpch(config: TpchConfig) -> dict[str, list[tuple]]:
    """Generate all 8 tables as ``{name: [row tuples]}``, deterministically.

    Foreign keys are consistent by construction: every ``lineitem``
    references an existing order and an existing ``(partkey, suppkey)``
    pair of ``partsupp``; every order references an existing customer.
    """
    counts = table_cardinalities(config.sf)
    tables: dict[str, list[tuple]] = {}

    rng = _table_rng(config, "region")
    tables["region"] = [
        (key, name, _comment(rng)) for key, name in enumerate(_REGIONS)
    ]

    rng = _table_rng(config, "nation")
    tables["nation"] = [
        (key, name, region, _comment(rng))
        for key, (name, region) in enumerate(_NATIONS)
    ]

    rng = _table_rng(config, "supplier")
    n_supplier = counts["supplier"]
    tables["supplier"] = [
        (
            key,
            f"Supplier#{key:09d}",
            f"{rng.randrange(1, 999)} Supply St",
            (nk := rng.randrange(len(_NATIONS))),
            _phone(rng, nk),
            _money(rng, -999.99, 9999.99),
            _comment(rng),
        )
        for key in range(1, n_supplier + 1)
    ]

    rng = _table_rng(config, "part")
    n_part = counts["part"]
    part_rows = []
    for key in range(1, n_part + 1):
        name = (
            f"{_ADVERBS[rng.randrange(len(_ADVERBS))]} "
            f"{_NOUNS[rng.randrange(len(_NOUNS))]}"
        )
        part_rows.append(
            (
                key,
                name,
                f"Manufacturer#{1 + key % 5}",
                _BRANDS[rng.randrange(len(_BRANDS))],
                f"{_TYPES[rng.randrange(len(_TYPES))]} "
                f"{['TIN', 'NICKEL', 'BRASS', 'STEEL', 'COPPER'][key % 5]}",
                rng.randrange(1, 51),
                _CONTAINERS[rng.randrange(len(_CONTAINERS))],
                # The spec's retail price formula keyed on partkey.
                round(900 + (key % 1000) / 10 + 100 * (key % 10), 2),
                _comment(rng),
            )
        )
    tables["part"] = part_rows
    retail_price = {row[0]: row[7] for row in part_rows}

    rng = _table_rng(config, "partsupp")
    partsupp_rows = []
    for partkey in range(1, n_part + 1):
        # 4 distinct suppliers per part, spread like dbgen does.
        for i in range(4):
            suppkey = 1 + (partkey + i * (n_supplier // 4 + 1)) % n_supplier
            partsupp_rows.append(
                (
                    partkey,
                    suppkey,
                    rng.randrange(1, 10_000),
                    # Supply cost sits below retail so margins stay positive
                    # on average but individual lines can lose money.
                    round(retail_price[partkey] * (0.4 + 0.5 * rng.random()) / 4, 2),
                    _comment(rng),
                )
            )
    tables["partsupp"] = partsupp_rows

    rng = _table_rng(config, "customer")
    n_customer = counts["customer"]
    tables["customer"] = [
        (
            key,
            f"Customer#{key:09d}",
            f"{rng.randrange(1, 999)} Market Rd",
            (nk := rng.randrange(len(_NATIONS))),
            _phone(rng, nk),
            _money(rng, -999.99, 9999.99),
            _SEGMENTS[rng.randrange(len(_SEGMENTS))],
            _comment(rng),
        )
        for key in range(1, n_customer + 1)
    ]

    # Orders and lineitem share one RNG stream: each order's lines are drawn
    # right after the order itself, so o_totalprice can be the exact sum of
    # its lines' extended charges (FK + aggregate integrity in one pass).
    rng = _table_rng(config, "orders")
    n_orders = counts["orders"]
    order_rows: list[tuple] = []
    line_rows: list[tuple] = []
    for orderkey in range(1, n_orders + 1):
        custkey = rng.randrange(1, n_customer + 1)
        orderdate = _START_DATE + datetime.timedelta(
            days=rng.randrange(_DATE_SPAN_DAYS)
        )
        priority = _PRIORITIES[rng.randrange(len(_PRIORITIES))]
        n_lines = rng.randrange(1, 8)
        total = 0.0
        all_filled = True
        any_filled = False
        for linenumber in range(1, n_lines + 1):
            partkey = rng.randrange(1, n_part + 1)
            suppkey = 1 + (partkey + rng.randrange(4) * (n_supplier // 4 + 1)) % n_supplier
            quantity = rng.randrange(1, 51)
            extendedprice = round(quantity * retail_price[partkey], 2)
            discount = rng.randrange(0, 11) / 100.0
            tax = rng.randrange(0, 9) / 100.0
            shipdate = orderdate + datetime.timedelta(days=rng.randrange(1, 122))
            commitdate = orderdate + datetime.timedelta(days=rng.randrange(30, 91))
            receiptdate = shipdate + datetime.timedelta(days=rng.randrange(1, 31))
            shipped = shipdate <= _START_DATE + datetime.timedelta(
                days=_DATE_SPAN_DAYS - 120
            )
            if shipped:
                any_filled = True
                returnflag = "R" if rng.random() < 0.25 else "A" if rng.random() < 0.5 else "N"
                linestatus = "F"
            else:
                all_filled = False
                returnflag = "N"
                linestatus = "O"
            total += round(extendedprice * (1 + tax) * (1 - discount), 2)
            line_rows.append(
                (
                    orderkey,
                    partkey,
                    suppkey,
                    linenumber,
                    quantity,
                    extendedprice,
                    discount,
                    tax,
                    returnflag,
                    linestatus,
                    shipdate.isoformat(),
                    commitdate.isoformat(),
                    receiptdate.isoformat(),
                    _SHIPINSTRUCT[rng.randrange(len(_SHIPINSTRUCT))],
                    _SHIPMODES[rng.randrange(len(_SHIPMODES))],
                    _comment(rng),
                )
            )
        status = "F" if all_filled else "P" if any_filled else "O"
        order_rows.append(
            (
                orderkey,
                custkey,
                status,
                round(total, 2),
                orderdate.isoformat(),
                priority,
                f"Clerk#{rng.randrange(1, 1001):09d}",
                0,
                _comment(rng),
            )
        )
    tables["orders"] = order_rows
    tables["lineitem"] = line_rows
    return tables


def load_tpch(
    db: Database,
    config: Optional[TpchConfig] = None,
    *,
    tables: Optional[dict[str, list[tuple]]] = None,
) -> dict[str, int]:
    """Create and populate the 8 TPC-H tables; returns per-table row counts.

    Pass ``tables`` (e.g. from :func:`read_tbl`/:func:`load_tbl_dir`'s
    underlying reader) to load externally generated data instead of
    generating.
    """
    if tables is None:
        tables = generate_tpch(config or TpchConfig())
    counts = {}
    for name, columns in TPCH_TABLES.items():
        rows = tables.get(name, [])
        counts[name] = db.create_table_from_rows(name, columns, rows)
    return counts


def tpch_database(
    sf: float = 0.001, *, seed: int = TpchConfig.seed, **db_kwargs
) -> Database:
    """A fresh database loaded with generated TPC-H tables at ``sf``."""
    db = Database(**db_kwargs)
    load_tpch(db, TpchConfig(sf=sf, seed=seed))
    return db


# -- .tbl interchange --------------------------------------------------------


def read_tbl(path: str | Path, table: str) -> list[tuple]:
    """Parse one dbgen ``.tbl`` file (pipe-separated, trailing pipe).

    Values are returned in the column order of :data:`TPCH_TABLES`; numeric
    columns are converted, DATE columns stay ISO strings (the table loader
    coerces them).
    """
    if table not in TPCH_TABLES:
        raise ValueError(f"unknown TPC-H table {table!r}")
    columns = TPCH_TABLES[table]
    rows: list[tuple] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("|")
            if parts and parts[-1] == "":
                parts = parts[:-1]  # dbgen writes a trailing separator
            if len(parts) != len(columns):
                raise ValueError(
                    f"{path}:{lineno}: expected {len(columns)} fields for "
                    f"{table}, got {len(parts)}"
                )
            row = []
            for value, (_, type_name) in zip(parts, columns):
                if type_name == "INTEGER":
                    row.append(int(value))
                elif type_name == "DOUBLE":
                    row.append(float(value))
                else:
                    row.append(value)
            rows.append(tuple(row))
    return rows


def load_tbl_dir(
    db: Database, directory: str | Path, *, tables: Optional[Iterable[str]] = None
) -> dict[str, int]:
    """Load ``<table>.tbl`` files from ``directory`` into ``db``.

    Missing files are skipped (dbgen runs sometimes omit tiny tables);
    returns the per-table row counts actually loaded.
    """
    directory = Path(directory)
    counts: dict[str, int] = {}
    for name in tables if tables is not None else TPCH_TABLES:
        path = directory / f"{name}.tbl"
        if not path.exists():
            continue
        counts[name] = db.create_table_from_rows(
            name, TPCH_TABLES[name], read_tbl(path, name)
        )
    return counts


def _tbl_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    if isinstance(value, (datetime.date, datetime.datetime)):
        return value.isoformat()
    return str(value)


def write_tbl_dir(
    tables: dict[str, list[tuple]], directory: str | Path
) -> dict[str, Path]:
    """Write generated tables as dbgen-style ``.tbl`` files; the inverse of
    :func:`read_tbl` (floats as 2-decimal money, trailing pipe)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: dict[str, Path] = {}
    for name, rows in tables.items():
        path = directory / f"{name}.tbl"
        with open(path, "w", encoding="utf-8") as handle:
            for row in rows:
                handle.write("|".join(_tbl_cell(v) for v in row) + "|\n")
        written[name] = path
    return written


def table_digest(tables: dict[str, list[tuple]]) -> str:
    """A SHA-256 hex digest over a canonical serialization of the tables.

    Byte-identical generation across two processes is a committed-baseline
    guarantee; the determinism regression test compares this digest across
    interpreter invocations.
    """
    hasher = hashlib.sha256()
    for name in sorted(tables):
        hasher.update(name.encode("ascii"))
        for row in tables[name]:
            hasher.update(repr(row).encode("utf-8"))
    return hasher.hexdigest()


# -- the measure layer -------------------------------------------------------

#: Views created by :func:`tpch_measures`, in creation order.
TPCH_VIEWS: dict[str, str] = {
    # Denormalized lineitem grain: every sale with its order, customer,
    # geography, and supply-cost attributes.  Plain view — measures live in
    # tpch_sales_m so the summary rewriter can classify their formulas.
    "tpch_sales": """
        CREATE VIEW tpch_sales AS
        SELECT l.l_orderkey AS orderkey,
               l.l_quantity AS quantity,
               l.l_extendedprice AS extendedprice,
               l.l_discount AS discount,
               l.l_returnflag AS returnflag,
               l.l_shipmode AS shipmode,
               ps.ps_supplycost AS supplycost,
               o.o_orderdate AS orderdate,
               c.c_mktsegment AS mktsegment,
               n.n_name AS nation,
               r.r_name AS region
        FROM lineitem AS l
        JOIN orders AS o ON l.l_orderkey = o.o_orderkey
        JOIN partsupp AS ps
          ON l.l_partkey = ps.ps_partkey AND l.l_suppkey = ps.ps_suppkey
        JOIN customer AS c ON o.o_custkey = c.c_custkey
        JOIN nation AS n ON c.c_nationkey = n.n_nationkey
        JOIN region AS r ON n.n_regionkey = r.r_regionkey
    """,
    # Lineitem-grain measures.  revenue is a single SUM, so summaries
    # storing it roll up; margin is a ratio (OPAQUE: exact-grain summary
    # matches only); avg_discount re-aggregates via hidden SUM/COUNT pairs.
    "tpch_sales_m": """
        CREATE VIEW tpch_sales_m AS
        SELECT region, nation, mktsegment, returnflag, shipmode,
               YEAR(orderdate) AS orderYear,
               SUM(extendedprice * (1 - discount)) AS MEASURE revenue,
               (SUM(extendedprice * (1 - discount)) - SUM(supplycost * quantity))
                 / SUM(extendedprice * (1 - discount)) AS MEASURE margin,
               AVG(discount) AS MEASURE avg_discount,
               SUM(quantity) AS MEASURE total_qty
        FROM tpch_sales
    """,
    # Order-grain facts and measures (order_count must count orders, not
    # lineitems, so it gets its own grain).
    "tpch_order_facts": """
        CREATE VIEW tpch_order_facts AS
        SELECT o.o_orderkey AS orderkey,
               o.o_totalprice AS totalprice,
               o.o_orderdate AS orderdate,
               o.o_orderpriority AS orderpriority,
               c.c_mktsegment AS mktsegment,
               n.n_name AS nation,
               r.r_name AS region
        FROM orders AS o
        JOIN customer AS c ON o.o_custkey = c.c_custkey
        JOIN nation AS n ON c.c_nationkey = n.n_nationkey
        JOIN region AS r ON n.n_regionkey = r.r_regionkey
    """,
    "tpch_orders_m": """
        CREATE VIEW tpch_orders_m AS
        SELECT region, nation, mktsegment, orderpriority,
               YEAR(orderdate) AS orderYear,
               COUNT(*) AS MEASURE order_count,
               SUM(totalprice) AS MEASURE total_price
        FROM tpch_order_facts
    """,
}

#: Canonical drill-down queries over the measure layer.  These are the
#: queries the differential battery cross-checks against SQLite oracles and
#: the bench suite times; names are stable (the bench snapshot keys on them).
TPCH_QUERIES: dict[str, str] = {
    # Plain roll-ups (summary-rewriter candidates).
    "revenue_by_region": """
        SELECT region, revenue
        FROM tpch_sales_m GROUP BY region ORDER BY region
    """,
    "revenue_by_region_year": """
        SELECT region, orderYear, revenue, total_qty
        FROM tpch_sales_m GROUP BY region, orderYear
        ORDER BY region, orderYear
    """,
    "margin_by_returnflag": """
        SELECT returnflag, margin, avg_discount
        FROM tpch_sales_m GROUP BY returnflag ORDER BY returnflag
    """,
    "orders_by_year": """
        SELECT orderYear, order_count
        FROM tpch_orders_m GROUP BY orderYear ORDER BY orderYear
    """,
    # AT drill-downs (never answered from summaries: AT disables the
    # rewriter by design — context modifiers need base-grain evaluation).
    "revenue_share_by_region": """
        SELECT region, revenue,
               revenue / revenue AT (ALL region) AS share
        FROM tpch_sales_m GROUP BY region ORDER BY region
    """,
    "revenue_yoy_by_year": """
        SELECT orderYear, revenue,
               revenue AT (SET orderYear = CURRENT orderYear - 1) AS prevRevenue
        FROM tpch_sales_m GROUP BY orderYear ORDER BY orderYear
    """,
    # VISIBLE runs at the order grain: lineitem-grain VISIBLE evaluation is
    # the known-quadratic subquery shape the cost-model ROADMAP item targets.
    "visible_orders_by_region": """
        SELECT region, order_count AT (VISIBLE) AS visibleOrders,
               order_count
        FROM tpch_orders_m WHERE mktsegment <> 'MACHINERY'
        GROUP BY region ORDER BY region
    """,
}

#: Summary tables over the measure layer.  The rewriter answers
#: ``revenue_by_region``/``revenue_by_region_year`` from
#: ``tpch_rev_by_region_year`` (SUM measures roll up from (region, year) to
#: (region)); ``margin_by_returnflag`` needs the exact-grain
#: ``tpch_margin_by_returnflag`` because a ratio measure is opaque.
TPCH_SUMMARIES: dict[str, str] = {
    "tpch_rev_by_region_year": """
        CREATE MATERIALIZED VIEW tpch_rev_by_region_year AS
        SELECT region, orderYear,
               AGGREGATE(revenue) AS revenue,
               AGGREGATE(total_qty) AS total_qty
        FROM tpch_sales_m GROUP BY region, orderYear
    """,
    "tpch_margin_by_returnflag": """
        CREATE MATERIALIZED VIEW tpch_margin_by_returnflag AS
        SELECT returnflag,
               AGGREGATE(margin) AS margin,
               AGGREGATE(avg_discount) AS avg_discount
        FROM tpch_sales_m GROUP BY returnflag
    """,
    "tpch_orders_by_year": """
        CREATE MATERIALIZED VIEW tpch_orders_by_year AS
        SELECT orderYear, AGGREGATE(order_count) AS order_count
        FROM tpch_orders_m GROUP BY orderYear
    """,
}


def tpch_measures(db: Database, *, summaries: bool = False) -> None:
    """Create the measure layer (and optionally its summary tables).

    Idempotent per database: raises if the views already exist (create a
    fresh :func:`tpch_database` instead of re-layering).
    """
    for ddl in TPCH_VIEWS.values():
        db.execute(ddl)
    if summaries:
        for ddl in TPCH_SUMMARIES.values():
            db.execute(ddl)


def tpch_measure_database(
    sf: float = 0.001,
    *,
    seed: int = TpchConfig.seed,
    summaries: bool = False,
    **db_kwargs,
) -> Database:
    """Generated tables + measure layer (+ summaries) in one call."""
    db = tpch_database(sf, seed=seed, **db_kwargs)
    tpch_measures(db, summaries=summaries)
    return db
