"""Load a workload and drop into the interactive shell.

Usage::

    python -m repro.workloads --tpch [--sf 0.01] [--seed N] [--summaries]
    python -m repro.workloads --tpch --tbl-dir data/sf1/   # dbgen .tbl files
    python -m repro.workloads --star [--orders 10000]

``--tpch`` loads the 8 generated TPC-H tables plus the measure layer
(``tpch_sales_m``/``tpch_orders_m``: revenue, margin, avg_discount,
order_count — see docs/WORKLOADS.md); ``--summaries`` also creates the
canonical summary tables so drill-downs hit the matview rewriter.
``--star`` loads the synthetic retail star schema instead.  Ends in the
same REPL as ``python -m repro``, so ``\\d``, ``\\matviews``, EXPLAIN and
friends all work.
"""

from __future__ import annotations

import sys
from typing import Optional

from repro.api import Database
from repro.cli import Shell


def main(argv: Optional[list[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.workloads", description=__doc__.splitlines()[0]
    )
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--tpch",
        action="store_true",
        help="load the TPC-H tables and measure layer (docs/WORKLOADS.md)",
    )
    group.add_argument(
        "--star",
        action="store_true",
        help="load the synthetic retail star schema (Customers/Products/Orders)",
    )
    parser.add_argument(
        "--sf",
        type=float,
        default=0.001,
        help="TPC-H scale factor (default 0.001; presets 0.001/0.01/0.05/0.1)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="generator seed override"
    )
    parser.add_argument(
        "--summaries",
        action="store_true",
        help="also create the canonical TPC-H summary tables",
    )
    parser.add_argument(
        "--tbl-dir",
        default=None,
        metavar="DIR",
        help="load dbgen .tbl files from DIR instead of generating",
    )
    parser.add_argument(
        "--orders", type=int, default=10_000, help="star-schema fact rows"
    )
    args = parser.parse_args(argv)

    db = Database()
    if args.star:
        from repro.workloads.generator import WorkloadConfig, load_workload

        config = (
            WorkloadConfig(orders=args.orders)
            if args.seed is None
            else WorkloadConfig(orders=args.orders, seed=args.seed)
        )
        load_workload(db, config)
        print(f"star schema loaded ({args.orders} orders)")
    else:
        # --tpch is the default workload when neither flag is given.
        from repro.workloads.tpch import (
            TPCH_SUMMARIES,
            TpchConfig,
            load_tbl_dir,
            load_tpch,
            tpch_measures,
        )

        if args.tbl_dir is not None:
            counts = load_tbl_dir(db, args.tbl_dir)
            source = f"from {args.tbl_dir}"
        else:
            config = (
                TpchConfig(sf=args.sf)
                if args.seed is None
                else TpchConfig(sf=args.sf, seed=args.seed)
            )
            counts = load_tpch(db, config)
            source = f"generated at SF {args.sf}"
        tpch_measures(db, summaries=args.summaries)
        loaded = ", ".join(f"{name} {n}" for name, n in counts.items())
        print(f"TPC-H tables {source}: {loaded}")
        print(
            "measure views: tpch_sales_m (revenue, margin, avg_discount, "
            "total_qty), tpch_orders_m (order_count, total_price)"
        )
        if args.summaries:
            print("summary tables: " + ", ".join(TPCH_SUMMARIES))

    shell = Shell(db)
    shell.repl()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
