"""Synthetic star-schema workload generator.

Generates the retail workload the paper's introduction motivates: a fact
table of orders joined to customer and product dimensions, with Zipf-skewed
product popularity, seasonal dates, and revenue/cost structure.  All
generation is seeded and pure-Python (numpy accelerates the heavy arrays when
available), so benchmark runs are reproducible.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass

from repro.api import Database

__all__ = ["WorkloadConfig", "generate_orders", "load_workload", "workload_database"]

_FIRST_NAMES = [
    "Alice", "Bob", "Celia", "Dan", "Eve", "Frank", "Grace", "Hana",
    "Ivan", "Judy", "Karl", "Lena", "Mona", "Nils", "Oleg", "Pia",
]

_PRODUCT_STEMS = [
    "Happy", "Acme", "Whizz", "Zenith", "Quark", "Nimbus", "Vertex",
    "Orbit", "Pulse", "Ember", "Drift", "Falcon", "Gale", "Harbor",
]


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the synthetic workload."""

    orders: int = 10_000
    products: int = 50
    customers: int = 200
    start_year: int = 2020
    years: int = 4
    zipf_skew: float = 1.3
    seed: int = 42


def _product_names(count: int) -> list[str]:
    names = []
    index = 0
    while len(names) < count:
        stem = _PRODUCT_STEMS[index % len(_PRODUCT_STEMS)]
        suffix = index // len(_PRODUCT_STEMS)
        names.append(stem if suffix == 0 else f"{stem}{suffix}")
        index += 1
    return names


def _customer_names(count: int) -> list[str]:
    names = []
    index = 0
    while len(names) < count:
        first = _FIRST_NAMES[index % len(_FIRST_NAMES)]
        suffix = index // len(_FIRST_NAMES)
        names.append(first if suffix == 0 else f"{first}{suffix}")
        index += 1
    return names


def _zipf_weights(count: int, skew: float) -> list[float]:
    return [1.0 / (rank**skew) for rank in range(1, count + 1)]


def generate_orders(config: WorkloadConfig) -> tuple[list, list, list]:
    """Generate (customers, products, orders) row lists.

    customers: (custName, custAge, region)
    products:  (prodName, category, listPrice)
    orders:    (prodName, custName, orderDate, revenue, cost)
    """
    rng = random.Random(config.seed)
    products = _product_names(config.products)
    customers = _customer_names(config.customers)
    categories = ["toys", "tools", "games", "garden", "office"]

    customer_rows = [
        (name, rng.randint(16, 80), rng.choice(["north", "south", "east", "west"]))
        for name in customers
    ]
    product_rows = []
    base_prices = {}
    for index, name in enumerate(products):
        price = round(rng.uniform(2.0, 120.0), 2)
        base_prices[name] = price
        product_rows.append((name, categories[index % len(categories)], price))

    product_weights = _zipf_weights(config.products, config.zipf_skew)
    start = datetime.date(config.start_year, 1, 1)
    days = config.years * 365

    order_rows = []
    for _ in range(config.orders):
        product = rng.choices(products, weights=product_weights, k=1)[0]
        customer = rng.choice(customers)
        # Mild seasonality: Q4 is twice as likely.
        while True:
            day = start + datetime.timedelta(days=rng.randrange(days))
            if day.month >= 10 or rng.random() < 0.5:
                break
        quantity = rng.randint(1, 5)
        price = base_prices[product]
        revenue = max(1, int(price * quantity * rng.uniform(0.9, 1.1)))
        cost = max(0, int(revenue * rng.uniform(0.35, 0.85)))
        order_rows.append((product, customer, day.isoformat(), revenue, cost))
    return customer_rows, product_rows, order_rows


def load_workload(db: Database, config: WorkloadConfig) -> None:
    """Create and populate Customers, Products and Orders tables."""
    customer_rows, product_rows, order_rows = generate_orders(config)
    db.create_table_from_rows(
        "Customers",
        [("custName", "VARCHAR"), ("custAge", "INTEGER"), ("region", "VARCHAR")],
        customer_rows,
    )
    db.create_table_from_rows(
        "Products",
        [("prodName", "VARCHAR"), ("category", "VARCHAR"), ("listPrice", "DOUBLE")],
        product_rows,
    )
    db.create_table_from_rows(
        "Orders",
        [
            ("prodName", "VARCHAR"),
            ("custName", "VARCHAR"),
            ("orderDate", "DATE"),
            ("revenue", "INTEGER"),
            ("cost", "INTEGER"),
        ],
        order_rows,
    )


def workload_database(config: WorkloadConfig | None = None, **db_kwargs) -> Database:
    """A fresh database loaded with the synthetic workload."""
    db = Database(**db_kwargs)
    load_workload(db, config or WorkloadConfig())
    return db
