"""The paper's numbered listings as reusable SQL constants.

Tests, benchmarks, and the static-analysis self-check all consume the same
strings, so the listings live here rather than being duplicated per caller.
``SETUP`` holds the view definitions some listings depend on (Listings 2 and
3 define views; Listing 12's ``mv`` view backs the Table 3 modifier matrix).

Listing 5 and Listing 11 are the paper's *expanded* forms of Listings 4 and
10; they are derived with :meth:`Database.expand` at runtime rather than
hard-coded, so they always match the engine's actual rewrite output.
"""

from __future__ import annotations

__all__ = ["LISTINGS", "SETUP", "all_listing_sql", "expanded_listings"]

# -- view definitions consumed by listings (run against paper tables) --------

SETUP: dict[str, str] = {
    "SummarizedOrders": """
CREATE VIEW SummarizedOrders AS
SELECT prodName, orderDate,
       (SUM(revenue) - SUM(cost)) / SUM(revenue) AS profitMargin
FROM Orders GROUP BY prodName, orderDate
""",
    "EnhancedOrders": """
CREATE VIEW EnhancedOrders AS
SELECT orderDate, prodName,
       (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin
FROM Orders
""",
    "mv": """
CREATE VIEW mv AS
SELECT prodName, custName, YEAR(orderDate) AS orderYear,
       SUM(revenue) AS MEASURE r
FROM Orders
""",
}

# -- the listings themselves --------------------------------------------------

LISTING1 = """
SELECT prodName, COUNT(*) AS c,
       (SUM(revenue) - SUM(cost)) / SUM(revenue) AS profitMargin
FROM Orders GROUP BY prodName ORDER BY prodName
"""

LISTING2 = """
SELECT prodName, AVG(profitMargin) AS avgMargin
FROM SummarizedOrders GROUP BY prodName ORDER BY prodName
"""

LISTING3 = """
SELECT orderDate, prodName, AGGREGATE(profitMargin) AS profitMargin
FROM EnhancedOrders GROUP BY orderDate, prodName ORDER BY orderDate, prodName
"""

LISTING4 = """
SELECT prodName, AGGREGATE(profitMargin) AS profitMargin, COUNT(*) AS c
FROM EnhancedOrders GROUP BY prodName ORDER BY prodName
"""

LISTING6 = """
SELECT prodName, sumRevenue,
       sumRevenue / sumRevenue AT (ALL prodName) AS proportionOfTotalRevenue
FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders) AS o
GROUP BY prodName ORDER BY prodName
"""

LISTING7 = """
SELECT prodName, orderYear, profitMargin,
       profitMargin AT (SET orderYear = CURRENT orderYear - 1)
         AS profitMarginLastYear
FROM (SELECT *,
        (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin,
        YEAR(orderDate) AS orderYear
      FROM Orders)
WHERE orderYear = 2024
GROUP BY prodName, orderYear
"""

LISTING8 = """
SELECT o.prodName, COUNT(*) AS c,
       AGGREGATE(o.sumRevenue) AS rAgg,
       o.sumRevenue AT (VISIBLE) AS rViz,
       o.sumRevenue AS r
FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders) AS o
WHERE o.custName <> 'Bob'
GROUP BY ROLLUP(o.prodName)
ORDER BY o.prodName NULLS LAST
"""

LISTING9 = """
WITH EnhancedCustomers AS (
  SELECT *, AVG(custAge) AS MEASURE avgAge FROM Customers)
SELECT o.prodName,
       COUNT(*) AS orderCount,
       AVG(c.custAge) AS weightedAvgAge,
       c.avgAge AS avgAge,
       c.avgAge AT (VISIBLE) AS visibleAvgAge
FROM Orders AS o
JOIN EnhancedCustomers AS c USING (custName)
WHERE c.custAge >= 18
GROUP BY o.prodName
ORDER BY o.prodName
"""

LISTING10 = """
SELECT prodName, YEAR(orderDate) AS orderYear,
       sumRevenue / sumRevenue AT (SET orderYear = CURRENT orderYear - 1) AS ratio
FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue,
             YEAR(orderDate) AS orderYear
      FROM Orders)
GROUP BY prodName, YEAR(orderDate)
ORDER BY prodName, orderYear
"""

LISTING12_Q1 = """
SELECT o.prodName, o.orderDate FROM Orders AS o
WHERE o.revenue > (SELECT AVG(revenue) FROM Orders AS o1
                   WHERE o1.prodName = o.prodName)
ORDER BY 1, 2
"""

LISTING12_Q2 = """
SELECT o.prodName, o.orderDate FROM Orders AS o
LEFT JOIN (SELECT prodName, AVG(revenue) AS avgRevenue
           FROM Orders GROUP BY prodName) AS o2
  ON o.prodName = o2.prodName
WHERE o.revenue > o2.avgRevenue
ORDER BY 1, 2
"""

LISTING12_Q3 = """
SELECT o.prodName, o.orderDate FROM
  (SELECT prodName, revenue, orderDate,
          AVG(revenue) OVER (PARTITION BY prodName) AS avgRevenue
   FROM Orders) AS o
WHERE o.revenue > o.avgRevenue
ORDER BY 1, 2
"""

LISTING12_Q4 = """
SELECT o.prodName, o.orderDate FROM
  (SELECT prodName, orderDate, revenue,
          AVG(revenue) AS MEASURE avgRevenue
   FROM Orders) AS o
WHERE o.revenue > o.avgRevenue AT (WHERE prodName = o.prodName)
ORDER BY 1, 2
"""

#: Every directly-runnable listing, keyed by the paper's numbering.  Listings
#: 5 and 11 are expansion outputs — see :func:`expanded_listings`.
LISTINGS: dict[str, str] = {
    "listing1": LISTING1,
    "listing2": LISTING2,
    "listing3": LISTING3,
    "listing4": LISTING4,
    "listing6": LISTING6,
    "listing7": LISTING7,
    "listing8": LISTING8,
    "listing9": LISTING9,
    "listing10": LISTING10,
    "listing12_q1": LISTING12_Q1,
    "listing12_q2": LISTING12_Q2,
    "listing12_q3": LISTING12_Q3,
    "listing12_q4": LISTING12_Q4,
}


def expanded_listings(db) -> dict[str, str]:
    """Listings 5 and 11: the engine's expansions of Listings 4 and 10.

    ``db`` must already hold the paper tables and the :data:`SETUP` views.
    """
    return {
        "listing5": db.expand(LISTING4),
        "listing11": db.expand(LISTING10),
    }


def all_listing_sql(db=None) -> dict[str, str]:
    """Every listing, including the derived expansions when ``db`` is given."""
    out = dict(LISTINGS)
    if db is not None:
        out.update(expanded_listings(db))
    return out
