"""The paper's example data: Customers (Table 1) and Orders (Table 2)."""

from __future__ import annotations

from repro.api import Database

__all__ = ["CUSTOMERS", "ORDERS", "load_paper_tables", "paper_database"]

#: Table 1 of the paper.
CUSTOMERS = [
    ("Alice", 23),
    ("Bob", 41),
    ("Celia", 17),
]

#: Table 2 of the paper.
ORDERS = [
    ("Happy", "Alice", "2023-11-28", 6, 4),
    ("Acme", "Bob", "2023-11-27", 5, 2),
    ("Happy", "Alice", "2024-11-28", 7, 4),
    ("Whizz", "Celia", "2023-11-25", 3, 1),
    ("Happy", "Bob", "2022-11-27", 4, 1),
]


def load_paper_tables(db: Database) -> None:
    """Create and populate the Customers and Orders tables."""
    db.create_table_from_rows(
        "Customers",
        [("custName", "VARCHAR"), ("custAge", "INTEGER")],
        CUSTOMERS,
    )
    db.create_table_from_rows(
        "Orders",
        [
            ("prodName", "VARCHAR"),
            ("custName", "VARCHAR"),
            ("orderDate", "DATE"),
            ("revenue", "INTEGER"),
            ("cost", "INTEGER"),
        ],
        ORDERS,
    )


def paper_database(**kwargs) -> Database:
    """A fresh database pre-loaded with the paper's tables."""
    db = Database(**kwargs)
    load_paper_tables(db)
    return db
