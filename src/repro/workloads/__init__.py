"""Workloads: the paper's example tables, a synthetic star schema, and the
TPC-H-derived measure workload (``python -m repro.workloads --tpch``)."""

from repro.workloads.generator import (
    WorkloadConfig,
    generate_orders,
    load_workload,
    workload_database,
)
from repro.workloads.paper_data import (
    CUSTOMERS,
    ORDERS,
    load_paper_tables,
    paper_database,
)
from repro.workloads.tpch import (
    TPCH_QUERIES,
    TPCH_SUMMARIES,
    TPCH_TABLES,
    TpchConfig,
    generate_tpch,
    load_tpch,
    tpch_database,
    tpch_measure_database,
    tpch_measures,
)

__all__ = [
    "CUSTOMERS",
    "ORDERS",
    "TPCH_QUERIES",
    "TPCH_SUMMARIES",
    "TPCH_TABLES",
    "TpchConfig",
    "WorkloadConfig",
    "generate_orders",
    "generate_tpch",
    "load_paper_tables",
    "load_tpch",
    "load_workload",
    "paper_database",
    "tpch_database",
    "tpch_measure_database",
    "tpch_measures",
    "workload_database",
]
