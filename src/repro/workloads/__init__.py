"""Workloads: the paper's example tables and a synthetic star schema."""

from repro.workloads.generator import (
    WorkloadConfig,
    generate_orders,
    load_workload,
    workload_database,
)
from repro.workloads.paper_data import (
    CUSTOMERS,
    ORDERS,
    load_paper_tables,
    paper_database,
)

__all__ = [
    "CUSTOMERS",
    "ORDERS",
    "WorkloadConfig",
    "generate_orders",
    "load_paper_tables",
    "load_workload",
    "paper_database",
    "workload_database",
]
