"""Interactive SQL shell.

Run with ``python -m repro [script.sql ...]``.  Statements end with ``;``.
Backslash meta-commands:

=========================  ===================================================
``\\q``                     quit
``\\d``                     list tables and views
``\\d NAME``                describe a table or view (columns, measures)
``\\timing``                toggle per-statement timing
``\\profile``               toggle per-query profiling (annotated operator
                           tree, phase timings, and counters after each query)
``\\expand [STRAT:] QUERY`` show the measure-free SQL a query expands to
                           (STRAT: subquery, inline, window, winmagic, auto)
``\\analyze [NAME]``        collect column statistics (ANALYZE) for one
                           table or every table
``\\record PATH``           start journaling statements to PATH
                           (``\\record off`` stops; docs/OBSERVABILITY.md)
``\\watch [SECONDS] SQL``   re-run SQL every SECONDS (default 2) until
                           interrupted with Ctrl-C
``\\lint SQL``              report static-analysis diagnostics for SQL
``\\matviews``              list materialized views with staleness and stats
``\\telemetry``             toggle database-lifetime telemetry collection
``\\stats``                 print the telemetry metrics (Prometheus text)
``\\stat_statements``       print per-fingerprint statement statistics
``\\flips``                 print detected plan flips
``\\events [N]``            print the last N telemetry events as JSON lines
``\\slowlog``               print the slow-query log
``\\top [N]``               show running queries (N refreshes, default 1);
                           reads ``repro_running_queries`` locally or over
                           a ``\\connect`` session
``\\i FILE``                execute a SQL script file
``\\load TABLE FILE.csv``   create TABLE from a CSV file
``\\demo``                  load the paper's Customers/Orders tables
``\\connect HOST:PORT``     attach to a running query server; subsequent SQL
                           runs in a server session (docs/SERVER.md)
``\\disconnect``            close the server session, back to the local db
=========================  ===================================================
"""

from __future__ import annotations

import sys
import time
from typing import Optional

from repro.api import Database
from repro.errors import SqlError

__all__ = ["Shell", "main"]

_BANNER = """repro — Measures in SQL (Hyde & Fremlin, SIGMOD 2024) reproduction
Type SQL ending with ';', or \\? for help.
"""

_HELP = """Meta commands:
  \\q                 quit
  \\d                 list tables and views
  \\d NAME            describe a table, view, or materialized view
  \\timing            toggle timing
  \\profile           toggle per-query profiling (plan tree + counters)
  \\expand [S:] QUERY; print the measure-free expansion of QUERY using
                     strategy S (subquery, inline, window, winmagic, auto)
  \\analyze [NAME]    collect column statistics for NAME or all tables
                     (ANALYZE in SQL; repro_table_stats/repro_column_stats)
  \\record PATH       journal every statement to PATH for later replay
                     (\\record off stops; python -m repro.history replay)
  \\watch [N] SQL     re-run SQL every N seconds (default 2), Ctrl-C stops
  \\lint SQL;         report lint diagnostics (RPxxx) without executing
  \\matviews          list materialized views (staleness, hit/miss stats)
  \\telemetry         toggle telemetry (lifetime metrics, events, traces)
  \\stats             print telemetry metrics (SHOW STATS shows them in SQL)
  \\stat_statements   per-fingerprint statement statistics
                     (SELECT * FROM repro_stat_statements in SQL)
  \\flips             detected plan flips (SELECT * FROM repro_plan_flips)
  \\events [N]        print the last N telemetry events (default 10)
  \\slowlog           print slow queries (Database(slow_query_ms=...))
  \\top [N]           show running queries, N refreshes (default 1)
                     (SELECT * FROM repro_running_queries in SQL)
  \\i FILE            run a SQL script
  \\load TABLE FILE   load a CSV file into a new table
  \\demo              load the paper's example tables
  \\connect HOST:PORT attach to a query server (python -m repro.server);
                     SQL then runs in a server session
  \\disconnect        close the server session
"""

_EXPAND_STRATEGIES = ("subquery", "inline", "window", "winmagic", "auto")


class Shell:
    """A small line-oriented shell around :class:`~repro.api.Database`."""

    def __init__(self, db: Optional[Database] = None, out=None):
        self.db = db or Database()
        self.out = out or sys.stdout
        self.timing = False
        self.buffer: list[str] = []
        #: An open server connection (\connect), or None for local mode.
        self.remote = None

    # -- output -------------------------------------------------------------

    def write(self, text: str = "") -> None:
        """Print one line to the shell's output stream."""
        print(text, file=self.out)

    # -- one input line ------------------------------------------------------

    def handle_line(self, line: str) -> bool:
        """Process one line; returns False when the shell should exit."""
        stripped = line.strip()
        if not self.buffer and stripped.startswith("\\"):
            return self.handle_meta(stripped)
        if not stripped and not self.buffer:
            return True
        self.buffer.append(line)
        if stripped.endswith(";"):
            statement = "\n".join(self.buffer)
            self.buffer = []
            self.run_sql(statement)
        return True

    @property
    def prompt(self) -> str:
        """The prompt string (continuation prompt while buffering)."""
        if self.buffer:
            return "   ...> "
        if self.remote is not None:
            return f"repro@{self.remote.session_id}=> "
        return "repro=> "

    # -- meta commands ----------------------------------------------------------

    def handle_meta(self, line: str) -> bool:
        """Execute one backslash command; False means quit."""
        command, _, argument = line.partition(" ")
        argument = argument.strip().rstrip(";")
        if command in ("\\q", "\\quit", "\\exit"):
            if self.remote is not None:
                try:
                    self.remote.close()
                except Exception:
                    pass
                self.remote = None
            return False
        if command == "\\?":
            self.write(_HELP)
        elif command == "\\d":
            if argument:
                self.describe(argument)
            else:
                self.list_objects()
        elif command == "\\timing":
            self.timing = not self.timing
            self.write(f"timing {'on' if self.timing else 'off'}")
        elif command == "\\profile":
            self.db.profile_enabled = not self.db.profile_enabled
            self.write(
                f"profile {'on' if self.db.profile_enabled else 'off'}"
            )
        elif command == "\\expand":
            strategy = "subquery"
            prefix, colon, rest = argument.partition(":")
            if colon and prefix.strip().lower() in _EXPAND_STRATEGIES:
                strategy = prefix.strip().lower()
                argument = rest.strip()
            try:
                self.write(self.db.expand(argument, strategy=strategy))
            except SqlError as exc:
                self.write(f"error: {exc}")
        elif command == "\\analyze":
            self.do_analyze(argument)
        elif command == "\\record":
            self.do_record(argument)
        elif command == "\\watch":
            self.do_watch(argument)
        elif command == "\\lint":
            self.lint(argument)
        elif command == "\\matviews":
            self.list_matviews()
        elif command == "\\telemetry":
            if self.db.telemetry is None:
                from repro.telemetry import Telemetry

                self.db.telemetry = Telemetry()
                self.write("telemetry on")
            else:
                self.db.telemetry = None
                self.write("telemetry off")
        elif command == "\\stats":
            self.show_stats()
        elif command == "\\stat_statements":
            self.show_stat_statements()
        elif command == "\\flips":
            self.show_flips()
        elif command == "\\events":
            self.show_events(argument)
        elif command == "\\slowlog":
            self.show_slowlog()
        elif command == "\\top":
            self.show_top(argument)
        elif command == "\\i":
            self.run_script_file(argument)
        elif command == "\\load":
            parts = argument.split()
            if len(parts) != 2:
                self.write("usage: \\load TABLE FILE.csv")
            else:
                from repro.storage.csv_io import load_csv

                try:
                    count = load_csv(self.db, parts[0], parts[1])
                    self.write(f"loaded {count} rows into {parts[0]}")
                except (OSError, SqlError) as exc:
                    self.write(f"error: {exc}")
        elif command == "\\demo":
            from repro.workloads.paper_data import load_paper_tables

            load_paper_tables(self.db)
            self.write("loaded Customers (3 rows) and Orders (5 rows)")
        elif command == "\\connect":
            self.do_connect(argument)
        elif command == "\\disconnect":
            self.do_disconnect()
        else:
            self.write(f"unknown command {command!r}; \\? for help")
        return True

    def list_objects(self) -> None:
        """Print every table and view (the bare ``\\d`` command)."""
        names = self.db.table_names()
        if not names:
            self.write("(no tables)")
            return
        for name in names:
            obj = self.db.catalog.resolve(name)
            self.write(f"  {obj.kind.lower():17s} {obj.name}")

    def lint(self, sql: str) -> None:
        """Print lint diagnostics for a SQL string (the ``\\lint`` command)."""
        if not sql:
            self.write("usage: \\lint SQL;")
            return
        diagnostics = self.db.lint(sql)
        if not diagnostics:
            self.write("lint: clean")
            return
        for diag in diagnostics:
            self.write(diag.render())

    def do_analyze(self, argument: str) -> None:
        """``\\analyze [NAME]``: collect column statistics via ANALYZE."""
        sql = f"ANALYZE {argument}" if argument else "ANALYZE"
        if self.remote is not None:
            self.run_remote_sql(sql)
            return
        try:
            result = self.db.execute(sql)
        except SqlError as exc:
            self.write(f"error: {exc}")
            return
        for table_name, row_count, columns in result.rows:
            self.write(
                f"  analyzed {table_name}: {row_count} rows, "
                f"{columns} columns"
            )
        if not result.rows:
            self.write("(no tables to analyze)")

    def do_record(self, argument: str) -> None:
        """``\\record PATH`` / ``\\record off``: toggle the flight recorder."""
        if not argument:
            if self.db.recorder is None:
                self.write("not recording (\\record PATH to start)")
            else:
                self.write(f"recording to {self.db.recorder.path}")
            return
        if argument.lower() == "off":
            if self.db.recorder is None:
                self.write("not recording")
                return
            path = self.db.recorder.path
            self.db.recorder.close()
            self.db.recorder = None
            self.write(f"stopped recording to {path}")
            return
        if self.db.recorder is not None:
            self.write(
                f"already recording to {self.db.recorder.path} "
                "(\\record off first)"
            )
            return
        from repro.history import JournalWriter

        try:
            self.db.recorder = JournalWriter(argument)
        except OSError as exc:
            self.write(f"error: {exc}")
            return
        self.write(f"recording to {argument}")

    def do_watch(self, argument: str) -> None:
        """``\\watch [SECONDS] SQL``: re-run SQL at an interval.

        Stops on Ctrl-C (KeyboardInterrupt), like ``psql``'s ``\\watch``.
        """
        interval = 2.0
        sql = argument
        head, _, rest = argument.partition(" ")
        if head:
            try:
                interval = float(head)
            except ValueError:
                pass
            else:
                sql = rest.strip()
        sql = sql.strip().rstrip(";").strip()
        if not sql or interval <= 0:
            self.write("usage: \\watch [SECONDS] SQL")
            return
        iteration = 0
        try:
            while True:
                iteration += 1
                self.write(f"-- watch #{iteration}: {sql}")
                self.run_sql(sql + ";")
                time.sleep(interval)
        except KeyboardInterrupt:
            self.write(f"\\watch stopped after {iteration} runs")

    def list_matviews(self) -> None:
        """Print every materialized view with staleness and usage counters."""
        views = self.db.catalog.materialized_views()
        if not views:
            self.write("(no materialized views)")
            return
        for view in views:
            state = "STALE" if view.stale else "fresh"
            stats = view.stats
            dims = ", ".join(d.name for d in view.definition.dimensions)
            self.write(
                f"  {view.name} over {view.definition.source_name} "
                f"({dims}) [{state}] hits={stats.hits} rejects={stats.rejects} "
                f"stale_skips={stats.stale_skips} refreshes={stats.refreshes}"
            )
            if stats.last_reject_reason:
                self.write(f"    last reject: {stats.last_reject_reason}")

    def show_stats(self) -> None:
        """Print the telemetry metrics in Prometheus text format."""
        if self.db.telemetry is None:
            self.write("telemetry is off (\\telemetry to enable)")
            return
        text = self.db.metrics_text()
        self.write(text.rstrip("\n") if text else "(no metrics)")

    def show_stat_statements(self) -> None:
        """Print per-fingerprint statement statistics, hottest first."""
        if self.db.telemetry is None:
            self.write("telemetry is off (\\telemetry to enable)")
            return
        entries = self.db.stat_statements()
        if not entries:
            self.write("(no statements recorded)")
            return
        self.write(
            f"  {'fingerprint':16s} {'calls':>6s} {'total ms':>10s} "
            f"{'mean ms':>9s} {'rows':>6s} {'errs':>5s}  query"
        )
        for entry in sorted(
            entries, key=lambda e: e["total_wall_ms"], reverse=True
        ):
            self.write(
                f"  {entry['fingerprint']:16s} {entry['calls']:6d} "
                f"{entry['total_wall_ms']:10.3f} {entry['mean_wall_ms']:9.3f} "
                f"{entry['rows_returned']:6d} {entry['errors']:5d}  "
                f"{entry['query'][:60]}"
            )

    def show_flips(self) -> None:
        """Print detected plan flips, oldest first."""
        if self.db.telemetry is None:
            self.write("telemetry is off (\\telemetry to enable)")
            return
        flips = self.db.plan_flips()
        if not flips:
            self.write("(no plan flips)")
            return
        for flip in flips:
            self.write(
                f"  #{flip['seq']} {flip['fingerprint']}: "
                f"{flip['old_strategy']}/{flip['old_plan_hash']} -> "
                f"{flip['new_strategy']}/{flip['new_plan_hash']}"
            )
            self.write(f"    {flip['query'][:70]}")

    def show_events(self, argument: str) -> None:
        """Print the last N telemetry events as JSON lines."""
        if self.db.telemetry is None:
            self.write("telemetry is off (\\telemetry to enable)")
            return
        count = 10
        if argument:
            try:
                count = int(argument)
            except ValueError:
                self.write("usage: \\events [N]")
                return
        events = self.db.telemetry.events.to_jsonl(count)
        self.write(events if events else "(no events)")

    def show_slowlog(self) -> None:
        """Print the slow-query log, one line per offending query."""
        if self.db.telemetry is None:
            self.write("telemetry is off (\\telemetry to enable)")
            return
        if self.db.telemetry.slow_log is None:
            self.write(
                "slow-query log not configured "
                "(Database(slow_query_ms=...))"
            )
            return
        entries = self.db.slow_queries()
        if not entries:
            self.write("(no slow queries)")
            return
        for entry in entries:
            self.write(
                f"  {entry['duration_ms']:10.3f} ms  "
                f"{entry['sql'] or '(unknown sql)'}"
            )

    _TOP_SQL = (
        "SELECT query_id, elapsed_ms, rows_processed, current_operator, "
        "memory_bytes, sql FROM repro_running_queries ORDER BY elapsed_ms DESC"
    )

    def show_top(self, argument: str) -> None:
        """``\\top [N]``: print running queries, refreshed N times.

        In remote mode the poll runs in the server session, so it reports
        the server's in-flight queries (the interesting ones); locally it
        reads this process's registry, where the poll itself is excluded.
        """
        refreshes = 1
        if argument:
            try:
                refreshes = max(1, int(argument))
            except ValueError:
                self.write("usage: \\top [N]")
                return
        for iteration in range(refreshes):
            if iteration:
                time.sleep(0.5)
            try:
                if self.remote is not None:
                    rows = [tuple(r) for r in self.remote.query(self._TOP_SQL)]
                else:
                    rows = self.db.query(self._TOP_SQL).rows
            except Exception as exc:
                self.write(f"error: {exc}")
                return
            if not rows:
                self.write("(no running queries)")
                continue
            self.write(
                f"  {'query':8s} {'elapsed ms':>10s} {'rows':>10s} "
                f"{'memory':>10s}  operator / sql"
            )
            for qid, elapsed, rows_done, operator, memory, sql in rows:
                self.write(
                    f"  {str(qid):8s} {float(elapsed):10.1f} "
                    f"{int(rows_done):10d} {int(memory):10d}  "
                    f"{operator or '-'}"
                )
                if sql:
                    self.write(f"    {str(sql)[:70]}")

    def describe(self, name: str) -> None:
        """Print one object's columns, row count, and measures."""
        from repro.catalog.objects import BaseTable, MaterializedView, SystemTable
        from repro.errors import CatalogError
        from repro.semantics.binder import Binder

        try:
            obj = self.db.catalog.resolve(name)
        except CatalogError as exc:
            self.write(f"error: {exc}")
            return
        if isinstance(obj, MaterializedView):
            state = "stale" if obj.stale else "fresh"
            self.write(
                f"materialized view {obj.name} over "
                f"{obj.definition.source_name} ({len(obj.table)} rows, {state})"
            )
            dimension_names = {d.name.lower() for d in obj.definition.dimensions}
            rollups = {m.name.lower(): m.kind for m in obj.definition.measures}
            for column in obj.schema.columns:
                if column.name.startswith("__"):
                    continue
                key = column.name.lower()
                note = (
                    "dimension"
                    if key in dimension_names
                    else f"rollup: {rollups.get(key, '?')}"
                )
                self.write(f"  {column.name:20s} {column.dtype}  {note}")
            return
        if isinstance(obj, BaseTable):
            self.write(f"table {obj.name} ({len(obj.table)} rows)")
            for column in obj.schema.columns:
                self.write(f"  {column.name:20s} {column.dtype}")
            return
        if isinstance(obj, SystemTable):
            self.write(f"system table {obj.name}")
            if obj.comment:
                self.write(f"  -- {obj.comment}")
            for column in obj.schema.columns:
                self.write(f"  {column.name:20s} {column.dtype}")
            return
        try:
            bound = Binder(self.db.catalog).bind_query_as_relation(obj.query, None)
        except SqlError as exc:
            self.write(f"view {obj.name} (invalid: {exc})")
            return
        self.write(f"view {obj.name}")
        for column in bound.columns:
            kind = "measure" if column.is_measure else ""
            self.write(f"  {column.name:20s} {column.dtype}  {kind}".rstrip())

    # -- server connection ----------------------------------------------------

    def do_connect(self, argument: str) -> None:
        """``\\connect HOST:PORT``: open a session on a query server."""
        from repro.server.client import ClientError, connect

        if self.remote is not None:
            self.write("already connected (\\disconnect first)")
            return
        host, _, port_text = argument.rpartition(":")
        if not host:
            host = "127.0.0.1"
        try:
            port = int(port_text)
        except ValueError:
            self.write("usage: \\connect HOST:PORT")
            return
        try:
            self.remote = connect(host, port)
        except (OSError, ClientError) as exc:
            self.write(f"error: cannot connect to {host}:{port}: {exc}")
            return
        self.write(
            f"connected to {host}:{port} as session {self.remote.session_id}"
        )

    def do_disconnect(self) -> None:
        """``\\disconnect``: close the server session."""
        if self.remote is None:
            self.write("not connected")
            return
        try:
            self.remote.close()
        except Exception:
            pass
        self.remote = None
        self.write("disconnected")

    def run_remote_sql(self, sql: str) -> None:
        """Run one statement in the connected server session."""
        from repro.result import Result, ResultColumn
        from repro.server.client import ClientError
        from repro.types import VARCHAR

        statement = sql.strip().rstrip(";").strip()
        if not statement:
            return
        start = time.perf_counter()
        try:
            result = self.remote.query(statement)
        except ClientError as exc:
            self.write(f"error: {exc}")
            return
        except OSError as exc:
            self.write(f"error: connection lost: {exc}")
            self.remote = None
            return
        elapsed = (time.perf_counter() - start) * 1000
        if result.columns:
            # Wire values are already rendered (dates as ISO strings), so
            # the local pretty-printer just needs names and cells.
            local = Result(
                columns=[ResultColumn(n, VARCHAR) for n in result.columns],
                rows=[tuple(row) for row in result.rows],
                rowcount=result.rowcount,
                message=result.message,
            )
            self.write(local.pretty(max_rows=50))
            self.write(f"({len(result.rows)} rows)")
        else:
            self.write(result.message or "ok")
        if self.timing:
            self.write(f"time: {elapsed:.1f} ms")

    # -- execution -----------------------------------------------------------

    def run_sql(self, sql: str) -> None:
        """Execute a SQL string and print results or a typed error."""
        if self.remote is not None:
            self.run_remote_sql(sql)
            return
        profile_before = (
            self.db.last_profile() if self.db.profile_enabled else None
        )
        start = time.perf_counter()
        try:
            results = self.db.execute_script(sql)
        except SqlError as exc:
            self.write(f"error: {exc}")
            return
        elapsed = (time.perf_counter() - start) * 1000
        for result in results:
            if result.columns:
                self.write(result.pretty(max_rows=50))
                self.write(f"({len(result.rows)} rows)")
            else:
                self.write(result.message or "ok")
        if self.db.profile_enabled:
            profile = self.db.last_profile()
            # Only a fresh profile (this script ran a query) is printed;
            # DDL-only scripts produce none.
            if profile is not None and profile is not profile_before:
                for line in profile.plan_lines():
                    self.write(line)
                for line in profile.summary_lines():
                    self.write(line)
        if self.timing:
            self.write(f"time: {elapsed:.1f} ms")

    def run_script_file(self, path: str) -> None:
        """Execute a .sql file (the ``\\i`` command / CLI arguments)."""
        try:
            with open(path) as handle:
                sql = handle.read()
        except OSError as exc:
            self.write(f"error: {exc}")
            return
        self.run_sql(sql)

    # -- main loop ----------------------------------------------------------

    def repl(self) -> None:
        """Run the interactive read-eval-print loop until EOF or \\q."""
        try:
            import readline  # noqa: F401 - line editing side effect
        except ImportError:  # pragma: no cover - platform dependent
            pass
        self.write(_BANNER)
        while True:
            try:
                line = input(self.prompt)
            except EOFError:
                self.write()
                return
            except KeyboardInterrupt:
                self.buffer = []
                self.write()
                continue
            if not self.handle_line(line):
                return


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point: run script files from argv, then the REPL on a TTY."""
    argv = sys.argv[1:] if argv is None else argv
    shell = Shell()
    for path in argv:
        shell.run_script_file(path)
    if not argv or sys.stdin.isatty():
        shell.repl()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
