"""In-memory storage and CSV import/export."""

from repro.storage.table import MemoryTable

__all__ = ["MemoryTable"]
