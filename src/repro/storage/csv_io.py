"""CSV import/export for base tables.

The paper notes that views with measures can be created over relations that
do not have measures, "such as a traditional relational database, or a
directory of CSV files" (section 5.4) — this module provides that path.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Optional

from repro.api import Database
from repro.errors import CatalogError

__all__ = ["load_csv", "save_csv"]


def load_csv(
    db: Database,
    table_name: str,
    path: str | Path,
    *,
    column_types: Optional[dict[str, str]] = None,
) -> int:
    """Create ``table_name`` from a CSV file with a header row.

    Column types come from ``column_types`` (name -> SQL type name); columns
    not listed are inferred from the first data row (INTEGER, DOUBLE, DATE,
    else VARCHAR).  Empty cells load as NULL.  Returns the row count.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise CatalogError(f"{path} is empty") from None
        data = list(reader)

    types = []
    overrides = {k.lower(): v for k, v in (column_types or {}).items()}
    for index, name in enumerate(header):
        if name.lower() in overrides:
            types.append(overrides[name.lower()])
            continue
        sample = next((row[index] for row in data if index < len(row) and row[index]), "")
        types.append(_infer_type(sample))

    def convert(cell: str, type_name: str):
        if cell == "":
            return None
        if type_name == "INTEGER":
            return int(cell)
        if type_name == "DOUBLE":
            return float(cell)
        return cell  # DATE strings coerce on insert; VARCHAR passes through

    rows = [
        tuple(
            convert(row[i] if i < len(row) else "", types[i])
            for i in range(len(header))
        )
        for row in data
    ]
    return db.create_table_from_rows(table_name, list(zip(header, types)), rows)


def _infer_type(sample: str) -> str:
    if not sample:
        return "VARCHAR"
    try:
        int(sample)
        return "INTEGER"
    except ValueError:
        pass
    try:
        float(sample)
        return "DOUBLE"
    except ValueError:
        pass
    import datetime

    try:
        datetime.date.fromisoformat(sample)
        return "DATE"
    except ValueError:
        return "VARCHAR"


def save_csv(db: Database, query: str, path: str | Path) -> int:
    """Run ``query`` and write the result (with a header row) to ``path``."""
    result = db.execute(query)
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.column_names)
        for row in result.rows:
            writer.writerow(["" if v is None else v for v in row])
    return len(result.rows)
