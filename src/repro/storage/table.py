"""In-memory row storage for base tables.

Rows are immutable tuples; values are coerced to the declared column types on
insert, so the engine can rely on clean runtime types everywhere else.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.catalog.schema import TableSchema
from repro.errors import CatalogError
from repro.types import coerce_value

__all__ = ["MemoryTable"]


class MemoryTable:
    """A heap of tuples with a fixed schema."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: list[tuple] = []

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def rows(self) -> list[tuple]:
        return self._rows

    def insert(self, values: Sequence[Any]) -> None:
        """Insert one row, coercing each value to its column type."""
        if len(values) != len(self.schema.columns):
            raise CatalogError(
                f"expected {len(self.schema.columns)} values, got {len(values)}"
            )
        row = tuple(
            coerce_value(value, column.dtype)
            for value, column in zip(values, self.schema.columns)
        )
        self._rows.append(row)

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def insert_partial(self, column_names: Sequence[str], values: Sequence[Any]) -> None:
        """Insert a row given a subset of columns; missing columns get NULL."""
        if len(column_names) != len(values):
            raise CatalogError("column list and value list differ in length")
        positions = {}
        for name, value in zip(column_names, values):
            index = self.schema.index_of(name)
            if index in positions:
                raise CatalogError(f"column {name!r} specified twice")
            positions[index] = value
        full = [positions.get(i) for i in range(len(self.schema.columns))]
        self.insert(full)

    def truncate(self) -> None:
        self._rows.clear()
