"""Single-writer / many-reader locking for shared-catalog access.

The storage layer's tables are plain Python lists mutated in place by
DML (``rows[i] = ...``, ``rows[:] = kept``), so a reader iterating a
table while a writer mutates it can observe a *torn* row set — some rows
pre-statement, some post.  :class:`RWLock` is the concurrency discipline
the session layer (:mod:`repro.server`) wraps around every statement:
queries acquire the shared side, DDL/DML the exclusive side, so a read
statement always sees either the complete pre-statement or complete
post-statement state of every table it scans.

The lock is writer-preferring: once a writer is waiting, new readers
queue behind it, so a steady stream of dashboard queries cannot starve
an INSERT forever.  It is also reentrant per-thread on the read side
(a reader that re-enters — e.g. an EXPLAIN that plans a subquery — does
not deadlock against a queued writer).

Single-caller use of :class:`~repro.api.Database` never touches the
lock; it exists for the session layer and costs nothing otherwise.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["RWLock"]


class RWLock:
    """A writer-preferring reader/writer lock.

    Use the context-manager helpers::

        with lock.read():
            ...  # shared with other readers
        with lock.write():
            ...  # exclusive
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: int | None = None  # ident of the thread holding write
        self._writers_waiting = 0
        #: Per-thread read-entry counts, for read reentrancy.
        self._reading: dict[int, int] = {}

    # -- read side -----------------------------------------------------------

    def acquire_read(self) -> None:
        ident = threading.get_ident()
        with self._cond:
            if self._writer == ident or self._reading.get(ident):
                # Reentrant: the thread already holds the lock (either
                # side); just bump its read count.
                self._readers += 1
                self._reading[ident] = self._reading.get(ident, 0) + 1
                return
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
            self._reading[ident] = self._reading.get(ident, 0) + 1

    def release_read(self) -> None:
        ident = threading.get_ident()
        with self._cond:
            count = self._reading.get(ident, 0)
            if count <= 0:
                raise RuntimeError("release_read() without acquire_read()")
            if count == 1:
                del self._reading[ident]
            else:
                self._reading[ident] = count - 1
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- write side ----------------------------------------------------------

    def acquire_write(self) -> None:
        ident = threading.get_ident()
        with self._cond:
            if self._writer == ident:
                raise RuntimeError("RWLock write side is not reentrant")
            if self._reading.get(ident):
                raise RuntimeError(
                    "cannot upgrade a read lock to a write lock"
                )
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
                self._writer = ident
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        with self._cond:
            if self._writer != threading.get_ident():
                raise RuntimeError("release_write() by a non-holder")
            self._writer = None
            self._cond.notify_all()

    # -- context managers ----------------------------------------------------

    @contextmanager
    def read(self):
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    # -- introspection (repro_sessions / tests) ------------------------------

    @property
    def readers(self) -> int:
        return self._readers

    @property
    def writer_active(self) -> bool:
        return self._writer is not None
