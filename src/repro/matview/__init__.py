"""Materialized summary tables and aggregate-aware measure rewriting.

The paper's execution strategy (section 5, the "localized self-join") caches
per-context aggregates for the lifetime of one statement.  This package makes
that cache *persistent*: ``CREATE MATERIALIZED VIEW`` precomputes a summary
table over a subset of the dimension lattice (Gray et al.'s data cube), and a
subsumption rewriter answers later measure queries from the smallest summary
that covers them instead of rescanning the fact table.

Modules:

* :mod:`repro.matview.definition` — validates a summary definition and
  classifies each stored aggregate by how it rolls up;
* :mod:`repro.matview.rewriter` — the subsumption matcher that rewrites a
  grouped measure query into a plain GROUP BY over a summary table;
* :mod:`repro.matview.maintenance` — staleness tracking for DML on source
  tables, incremental roll-up of insert-only deltas, and ``REFRESH``;
* :mod:`repro.matview.stats` — per-view hit/miss/stale observability.
"""

from repro.matview.definition import SummaryDefinition, analyze_definition
from repro.matview.maintenance import on_insert, on_mutation, refresh
from repro.matview.rewriter import RewriteOutcome, rewrite_query
from repro.matview.stats import SummaryStats

__all__ = [
    "RewriteOutcome",
    "SummaryDefinition",
    "SummaryStats",
    "analyze_definition",
    "on_insert",
    "on_mutation",
    "refresh",
    "rewrite_query",
]
