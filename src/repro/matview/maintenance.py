"""Staleness tracking and maintenance for materialized summary tables.

DML hooks (called from :class:`repro.api.Database`):

* :func:`on_insert` — after INSERT.  When every stored aggregate merges
  additively and the summary reads the mutated base table directly, the
  inserted rows are aggregated on their own (through a throwaway delta
  table) and rolled into the stored summary in place.  Otherwise the
  summary is marked stale.
* :func:`on_mutation` — after UPDATE/DELETE/TRUNCATE touched rows.  Deleted
  or changed rows cannot be subtracted from MIN/MAX-style partials, so
  dependents are always marked stale.

Stale summaries are skipped by the rewriter until
:func:`refresh` (``REFRESH MATERIALIZED VIEW``) recomputes them.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Any, Sequence

from repro.catalog.objects import MaterializedView
from repro.sql import ast
from repro.types import coerce_value

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import Database
    from repro.catalog.schema import TableSchema

__all__ = ["compute_rows", "on_insert", "on_mutation", "refresh", "result_schema"]

#: Aggregate kinds whose partials merge with a new partial in place.
_MERGEABLE = frozenset({"SUM", "COUNT", "MIN", "MAX", "AVG"})


def compute_rows(db: "Database", view_query: ast.Select):
    """Run a summary's refresh query with summary rewriting suppressed.

    Suppression matters: the refresh query groups by exactly the summary's
    dimensions, so the rewriter would otherwise answer it from the (old!)
    summary itself.
    """
    previous = db._suppress_summaries
    db._suppress_summaries = True
    if db.telemetry is not None:
        # Maintenance work is invisible to the user-facing query metrics
        # (it never goes through execute()); count it separately so the
        # engine's internal load is still observable.
        db.telemetry.record_internal_query()
    try:
        return db._run_query(copy.deepcopy(view_query))
    finally:
        db._suppress_summaries = previous


def result_schema(result) -> "TableSchema":
    """A storable schema for a refresh query's result columns."""
    from repro.catalog.schema import Column, TableSchema
    from repro.types import UNKNOWN, VARCHAR

    return TableSchema(
        [
            Column(
                c.name,
                VARCHAR if c.dtype.unwrap() is UNKNOWN else c.dtype.unwrap(),
            )
            for c in result.columns
        ]
    )


def refresh(db: "Database", view: MaterializedView) -> int:
    """Recompute ``view`` from its sources; returns the new row count.

    The definition is re-analyzed first: a source view may have been
    replaced since creation (which marked this summary stale), changing
    measure roll-up classifications or even the summary's schema, so the
    storage table is rebuilt rather than merely reloaded.
    """
    from repro.matview.definition import analyze_definition
    from repro.storage.table import MemoryTable

    view.definition = analyze_definition(db.catalog, view.name, view.query)
    result = compute_rows(db, view.definition.refresh_query)
    view.table = MemoryTable(result_schema(result))
    count = view.table.insert_many(result.rows)
    view.stale = False
    view.stats.refreshes += 1
    if db.telemetry is not None:
        db.telemetry.record_maintenance("refresh", view.name)
    return count


def on_mutation(db: "Database", table_name: str) -> None:
    """UPDATE/DELETE/TRUNCATE touched ``table_name``: invalidate dependents."""
    for view in db.catalog.materialized_views_depending_on(table_name):
        if not view.stale:
            view.stale = True
            view.stats.invalidations += 1
            if db.telemetry is not None:
                db.telemetry.record_maintenance("invalidation", view.name)


def on_insert(
    db: "Database", table_name: str, new_rows: Sequence[tuple]
) -> None:
    """INSERT appended ``new_rows`` to ``table_name``: merge or invalidate."""
    if not new_rows:
        return
    for view in db.catalog.materialized_views_depending_on(table_name):
        if view.stale:
            continue  # already invalid; REFRESH will rebuild from scratch
        if _merge_eligible(view, table_name):
            _merge_delta(db, view, table_name, new_rows)
            view.stats.incremental_merges += 1
            if db.telemetry is not None:
                db.telemetry.record_maintenance("incremental_merge", view.name)
        else:
            view.stale = True
            view.stats.invalidations += 1
            if db.telemetry is not None:
                db.telemetry.record_maintenance("invalidation", view.name)


def _merge_eligible(view: MaterializedView, table_name: str) -> bool:
    """Insert-only deltas roll up in place only when the summary reads the
    mutated base table directly (no intervening view whose semantics the
    delta would have to reproduce) and every aggregate merges additively."""
    if view.definition.source_name != table_name.lower():
        return False
    return all(m.kind in _MERGEABLE for m in view.definition.measures)


def _merge_delta(
    db: "Database",
    view: MaterializedView,
    table_name: str,
    new_rows: Sequence[tuple],
) -> None:
    """Aggregate just the inserted rows and fold them into the summary."""
    source = db.catalog.base_table(table_name)

    delta_name = "__matview_delta"
    while delta_name in db.catalog:
        delta_name += "_"
    from repro.storage.table import MemoryTable

    delta_query = copy.deepcopy(view.definition.refresh_query)
    original_from = delta_query.from_clause
    delta_query.from_clause = ast.TableName(
        delta_name, original_from.alias or original_from.name
    )

    db.catalog.create_table(delta_name, source.schema)
    try:
        delta_table = db.catalog.base_table(delta_name)
        delta_table.table.insert_many(new_rows)
        delta_result = compute_rows(db, delta_query)
    finally:
        db.catalog.drop("TABLE", delta_name, if_exists=True)

    schema = view.table.schema
    key_positions = [
        schema.index_of(d.name) for d in view.definition.dimensions
    ]
    position_of = {
        tuple(row[i] for i in key_positions): pos
        for pos, row in enumerate(view.table.rows)
    }
    for delta_row in delta_result.rows:
        key = tuple(
            coerce_value(delta_row[i], schema.columns[i].dtype)
            for i in key_positions
        )
        existing = position_of.get(key)
        if existing is None:
            view.table.insert(delta_row)
            position_of[key] = len(view.table.rows) - 1
            continue
        merged = list(view.table.rows[existing])
        for measure in view.definition.measures:
            if measure.kind == "AVG":
                sum_i = schema.index_of(measure.sum_column)
                count_i = schema.index_of(measure.count_column)
                merged[sum_i] = _add(merged[sum_i], delta_row[sum_i])
                merged[count_i] = _add(merged[count_i], delta_row[count_i])
                avg_i = schema.index_of(measure.name)
                merged[avg_i] = (
                    None
                    if not merged[count_i]
                    else merged[sum_i] / merged[count_i]
                )
            else:
                i = schema.index_of(measure.name)
                merged[i] = _combine(measure.kind, merged[i], delta_row[i])
        view.table.rows[existing] = tuple(
            coerce_value(v, c.dtype)
            for v, c in zip(merged, schema.columns)
        )


def _add(old: Any, new: Any) -> Any:
    if old is None:
        return new
    if new is None:
        return old
    return old + new


def _combine(kind: str, old: Any, new: Any) -> Any:
    """Merge one stored partial with the same partial over the delta.

    Aggregates ignore NULL inputs, so a NULL partial on either side yields
    the other side unchanged.
    """
    if old is None:
        return new
    if new is None:
        return old
    if kind in ("SUM", "COUNT"):
        return old + new
    if kind == "MIN":
        return min(old, new)
    return max(old, new)
