"""Observability counters for materialized summary tables.

Each :class:`~repro.catalog.objects.MaterializedView` carries one
:class:`SummaryStats`.  The rewriter, the maintenance hooks, and ``REFRESH``
update it; ``Database.summary_stats()`` and ``EXPLAIN`` surface it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["SummaryStats"]


@dataclass
class SummaryStats:
    """Per-view counters (one instance per materialized view)."""

    #: Queries answered from this summary.
    hits: int = 0
    #: Times this summary was a candidate but did not match the query shape.
    rejects: int = 0
    #: Times this summary was skipped because it was stale.
    stale_skips: int = 0
    #: Explicit ``REFRESH MATERIALIZED VIEW`` recomputations.
    refreshes: int = 0
    #: Insert-only deltas rolled up in place without a full refresh.
    incremental_merges: int = 0
    #: DML events that marked this summary stale.
    invalidations: int = 0
    #: Why the rewriter most recently rejected this summary, if ever.
    last_reject_reason: Optional[str] = None
    #: Reject counts per matchability rule (e.g. ``missing-dimension``),
    #: so the opaque ``rejects`` total can be broken down.
    reject_reasons: dict[str, int] = field(default_factory=dict)
    #: Total wall time (ms) of queries answered from this summary.  Together
    #: with ``miss_time_ms`` this quantifies what the summary buys: average
    #: hit latency vs. average latency of queries it was a candidate for but
    #: could not answer.  Latency is only measured when the view was at
    #: least a candidate, so idle summaries cost nothing.
    hit_time_ms: float = 0.0
    #: Total wall time (ms) of queries where this summary was a candidate
    #: but was rejected or skipped as stale (the query ran from source).
    miss_time_ms: float = 0.0

    def record_reject(self, reason: str, rule: str = "unknown") -> None:
        self.rejects += 1
        self.last_reject_reason = reason
        self.reject_reasons[rule] = self.reject_reasons.get(rule, 0) + 1

    def record_hit_latency(self, elapsed_ms: float) -> None:
        self.hit_time_ms += elapsed_ms

    def record_miss_latency(self, elapsed_ms: float) -> None:
        self.miss_time_ms += elapsed_ms

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "rejects": self.rejects,
            "stale_skips": self.stale_skips,
            "refreshes": self.refreshes,
            "incremental_merges": self.incremental_merges,
            "invalidations": self.invalidations,
            "last_reject_reason": self.last_reject_reason,
            "reject_reasons": dict(self.reject_reasons),
            "hit_time_ms": round(self.hit_time_ms, 3),
            "miss_time_ms": round(self.miss_time_ms, 3),
        }
