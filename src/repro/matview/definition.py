"""Analysis of ``CREATE MATERIALIZED VIEW`` definitions.

A summary definition must have the shape::

    SELECT dim..., agg(...) AS name... FROM relation [WHERE ...] GROUP BY dim...

where ``relation`` is a base table or a (measure) view.  The analyzer
validates that shape and classifies every stored aggregate by how it can be
re-aggregated when a query groups by a *subset* of the summary's dimensions:

============  ==============================================================
kind          roll-up
============  ==============================================================
``SUM``       ``SUM`` of the stored partial sums
``COUNT``     ``SUM`` of the stored partial counts
``MIN/MAX``   ``MIN``/``MAX`` of the stored partial extrema
``AVG``       ``SUM(sum) / SUM(count)`` over hidden companion columns the
              refresh query also materializes
``OPAQUE``    does not roll up; usable only when the query's grouping equals
              the summary's dimensions exactly (each group is one row)
============  ==============================================================

``AGGREGATE(m)`` items are classified by inspecting the measure's defining
formula in the source view: a measure that is a single distributive aggregate
(SUM/COUNT/MIN/MAX) rolls up like that aggregate; anything else — ratios such
as the paper's ``profitMargin``, AVG measures, DISTINCT aggregates — is
``OPAQUE`` and falls through to normal measure expansion unless the grouping
matches exactly.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.catalog.objects import BaseTable, View
from repro.errors import CatalogError
from repro.sql import ast
from repro.sql.printer import to_sql
from repro.sql.visitor import transform

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog import Catalog

__all__ = [
    "SummaryDefinition",
    "SummaryDimension",
    "SummaryMeasure",
    "analyze_definition",
    "canonical",
    "split_conjuncts",
]

#: Aggregates that re-aggregate losslessly over disjoint sub-groups.
_DISTRIBUTIVE = frozenset({"SUM", "COUNT", "MIN", "MAX"})


def canonical(expr: ast.Expression) -> str:
    """A canonical text key for an expression: qualifiers stripped,
    identifiers lower-cased, rendered by the standard printer.

    Both the summary definition and candidate queries reference a single
    relation, so dropping qualifiers makes ``o.prodName``, ``prodName`` and
    ``PRODNAME`` compare equal while string literals stay case-sensitive.
    """

    def strip(node: ast.Expression) -> ast.Expression:
        if isinstance(node, ast.ColumnRef):
            return ast.ColumnRef((node.parts[-1].lower(),))
        return node

    return to_sql(transform(copy.deepcopy(expr), strip, into_queries=True))


def split_conjuncts(expr: Optional[ast.Expression]) -> list[ast.Expression]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.Binary) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


@dataclass
class SummaryDimension:
    """One grouping column of a summary table."""

    name: str  # column name in the summary table
    key: str  # canonical text of the grouping expression


@dataclass
class SummaryMeasure:
    """One stored aggregate of a summary table."""

    name: str  # column name in the summary table
    kind: str  # SUM | COUNT | MIN | MAX | AVG | OPAQUE
    key: str  # canonical text of the aggregate call it stores
    #: AVG only: hidden companion columns holding the SUM/COUNT pair.
    sum_column: Optional[str] = None
    count_column: Optional[str] = None

    @property
    def rolls_up(self) -> bool:
        return self.kind != "OPAQUE"


@dataclass
class SummaryDefinition:
    """Everything the catalog needs to store about one summary."""

    source_name: str  # lowered name of the FROM relation
    #: Lowered names of every relation the summary reads, transitively:
    #: base tables AND intervening views, so replacing or dropping a view
    #: in the chain invalidates the summary like table DML does.
    depends_on: frozenset
    dimensions: list[SummaryDimension]
    measures: list[SummaryMeasure]
    where_keys: frozenset  # canonical text of the definition's WHERE conjuncts
    refresh_query: ast.Select  # definition + hidden AVG companion items
    query: ast.Select = field(repr=False, default=None)  # as written


def analyze_definition(catalog: "Catalog", name: str, query: ast.Query) -> SummaryDefinition:
    """Validate a summary definition and build its :class:`SummaryDefinition`."""
    if not isinstance(query, ast.Select):
        raise CatalogError(
            f"materialized view {name!r} must be a plain SELECT ... GROUP BY"
        )
    select = query
    for flag, label in (
        (select.distinct, "DISTINCT"),
        (select.having is not None, "HAVING"),
        (select.qualify is not None, "QUALIFY"),
        (select.order_by, "ORDER BY"),
        (select.limit is not None, "LIMIT"),
        (select.offset is not None, "OFFSET"),
        (select.windows, "WINDOW"),
    ):
        if flag:
            raise CatalogError(
                f"materialized view {name!r} does not support {label}"
            )
    if not isinstance(select.from_clause, ast.TableName):
        raise CatalogError(
            f"materialized view {name!r} must select from a single table or view"
        )
    if any(isinstance(p, ast.Parameter) for p in select.walk()):
        raise CatalogError(
            f"materialized view {name!r} cannot use ? parameters"
        )
    source_ref = select.from_clause
    source_name = source_ref.name.lower()
    depends_on = _base_dependencies(catalog, source_ref.name, name)

    # Grouping: simple expressions only, each of which must also be selected.
    dim_keys: list[str] = []
    for element in select.group_by:
        if not isinstance(element, ast.SimpleGrouping):
            raise CatalogError(
                f"materialized view {name!r} does not support grouping sets"
            )
        dim_keys.append(canonical(element.expr))

    item_keys = {canonical(item.expr): item for item in select.items}
    dimensions: list[SummaryDimension] = []
    for key in dim_keys:
        item = item_keys.get(key)
        if item is None:
            raise CatalogError(
                f"materialized view {name!r}: every GROUP BY expression must "
                f"appear in the SELECT list"
            )
        column = item.alias or (
            item.expr.name if isinstance(item.expr, ast.ColumnRef) else None
        )
        if column is None:
            raise CatalogError(
                f"materialized view {name!r}: dimension expressions need an "
                f"alias (e.g. YEAR(orderDate) AS orderYear)"
            )
        dimensions.append(SummaryDimension(column, key))

    measures: list[SummaryMeasure] = []
    hidden_items: list[ast.SelectItem] = []
    for item in select.items:
        key = canonical(item.expr)
        if key in dim_keys:
            continue
        call = item.expr
        if not isinstance(call, ast.FunctionCall):
            raise CatalogError(
                f"materialized view {name!r}: select items must be grouping "
                f"columns or aggregate calls, got {to_sql(item.expr)}"
            )
        if call.over is not None or call.over_name is not None:
            raise CatalogError(
                f"materialized view {name!r}: window functions are not "
                f"aggregables; use a plain aggregate"
            )
        if item.alias is None:
            raise CatalogError(
                f"materialized view {name!r}: aggregate item "
                f"{to_sql(call)} needs an alias"
            )
        kind = _classify(catalog, source_ref.name, call)
        measure = SummaryMeasure(item.alias, kind, key)
        if kind == "AVG":
            arg = call.args[0]
            measure.sum_column = f"__{item.alias}_sum"
            measure.count_column = f"__{item.alias}_count"
            hidden_items.append(
                ast.SelectItem(
                    ast.FunctionCall("SUM", [copy.deepcopy(arg)]),
                    measure.sum_column,
                )
            )
            hidden_items.append(
                ast.SelectItem(
                    ast.FunctionCall("COUNT", [copy.deepcopy(arg)]),
                    measure.count_column,
                )
            )
        measures.append(measure)
    if not measures:
        raise CatalogError(
            f"materialized view {name!r} must store at least one aggregate"
        )

    refresh_query = copy.deepcopy(select)
    refresh_query.items = refresh_query.items + hidden_items

    return SummaryDefinition(
        source_name=source_name,
        depends_on=depends_on,
        dimensions=dimensions,
        measures=measures,
        where_keys=frozenset(canonical(c) for c in split_conjuncts(select.where)),
        refresh_query=refresh_query,
        query=select,
    )


def _classify(catalog: "Catalog", source: str, call: ast.FunctionCall) -> str:
    """How does this stored aggregate re-aggregate over sub-groups?"""
    name = call.name
    if name in ("AGGREGATE", "EVAL"):
        if name == "EVAL":
            return "OPAQUE"  # row-grain evaluation does not re-aggregate
        inner = call.args[0] if call.args else None
        if not isinstance(inner, ast.ColumnRef):
            return "OPAQUE"
        return _classify_measure(catalog, source, inner.name)
    if call.distinct or call.within_distinct:
        # COUNT(DISTINCT x) over sub-groups overlaps; MIN/MAX are unaffected
        # by DISTINCT and still roll up.
        return name if name in ("MIN", "MAX") else "OPAQUE"
    if name in _DISTRIBUTIVE:
        return name
    if name == "AVG" and call.args and call.filter_where is None:
        return "AVG"
    return "OPAQUE"


def _classify_measure(catalog: "Catalog", source: str, measure: str) -> str:
    """Classify ``AGGREGATE(measure)`` by the measure's defining formula."""
    obj = catalog.get(source)
    if not isinstance(obj, View) or not isinstance(obj.query, ast.Select):
        return "OPAQUE"
    if obj.column_names:
        return "OPAQUE"  # renames obscure which item defines the measure
    wanted = measure.lower()
    for item in obj.query.items:
        if not item.is_measure or (item.alias or "").lower() != wanted:
            continue
        formula = item.expr
        if (
            isinstance(formula, ast.FunctionCall)
            and formula.name in _DISTRIBUTIVE
            and not formula.distinct
            and not formula.within_distinct
            and formula.filter_where is None
            and formula.over is None
        ):
            return formula.name
        return "OPAQUE"
    return "OPAQUE"


def _base_dependencies(
    catalog: "Catalog", relation: str, mv_name: str, _seen: Optional[set] = None
) -> frozenset:
    """Every relation (base table or view) a relation reads, transitively.

    View names are included so that ``CREATE OR REPLACE VIEW`` / ``DROP``
    on any link of the chain can invalidate dependent summaries."""
    from repro.catalog.objects import MaterializedView

    seen = _seen if _seen is not None else set()
    key = relation.lower()
    if key in seen:
        return frozenset()
    seen.add(key)
    obj = catalog.get(relation)
    if obj is None:
        raise CatalogError(f"unknown table or view {relation!r}")
    if isinstance(obj, MaterializedView):
        raise CatalogError(
            f"materialized view {mv_name!r} cannot be defined over another "
            f"materialized view ({obj.name!r})"
        )
    if isinstance(obj, BaseTable):
        return frozenset({key})
    from repro.catalog.objects import SystemTable

    if isinstance(obj, SystemTable):
        # A summary over a system table could never be subsumption-matched
        # or invalidated: its source mutates on every query (lint RP113).
        raise CatalogError(
            f"materialized view {mv_name!r} cannot be defined over system "
            f"table {obj.name!r}: system tables are volatile"
        )
    assert isinstance(obj, View)
    found: set[str] = {key}
    for node in obj.query.walk():
        if isinstance(node, ast.TableName):
            found |= _base_dependencies(catalog, node.name, mv_name, seen)
    return frozenset(found)
