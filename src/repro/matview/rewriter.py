"""Subsumption matching: answer grouped queries from a summary table.

Given a parsed query, :func:`rewrite_query` looks for a fresh materialized
view over the same FROM relation whose dimensions cover the query's grouping
columns and whose stored aggregates can be re-aggregated to the query's
grain.  On a match the query is rewritten — *before* measure expansion or
binding — into a plain GROUP BY over the summary table:

* grouping expressions become references to the summary's dimension columns;
* ``SUM``/``COUNT``/``MIN``/``MAX`` aggregates (and ``AGGREGATE(m)`` over
  such measures) become roll-ups of the stored partials;
* ``AVG`` becomes ``SUM(sum)/SUM(count)`` over hidden companion columns;
* ``OPAQUE`` aggregates match only when the grouping equals the summary's
  dimensions exactly (each output group is a single summary row).

The WHERE clause is matched by conjunct subsumption: every conjunct of the
summary's definition must appear verbatim (canonically) in the query, and the
query's remaining conjuncts must be expressible over the dimensions alone.

Every candidate consulted produces a :class:`CandidateReport` so EXPLAIN can
show why a summary was or was not used.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.catalog.objects import MaterializedView
from repro.engine.aggregates import is_aggregate_function
from repro.matview.definition import (
    SummaryMeasure,
    canonical,
    split_conjuncts,
)
from repro.sql import ast
from repro.sql.visitor import find_all, transform_topdown

if TYPE_CHECKING:  # pragma: no cover
    from repro.catalog import Catalog

__all__ = ["CandidateReport", "RewriteOutcome", "rewrite_query"]


@dataclass
class CandidateReport:
    """Why one candidate summary was used, skipped, or rejected.

    ``rule`` names the matchability rule a rejection failed (e.g.
    ``missing-dimension``, ``non-distributive-aggregate``,
    ``predicate-not-subsumed``); the lint advisor and the per-view
    ``reject_reasons`` counters key on it.
    """

    view: str
    status: str  # "hit" | "stale" | "rejected"
    reason: Optional[str] = None
    rule: Optional[str] = None

    def describe(self) -> str:
        if self.status == "hit":
            return f"answered from materialized view {self.view}"
        if self.status == "stale":
            return f"candidate {self.view} skipped: stale (REFRESH to re-enable)"
        tag = f" [{self.rule}]" if self.rule else ""
        return f"candidate {self.view} rejected{tag}: {self.reason}"


@dataclass
class RewriteOutcome:
    """Result of one rewrite attempt."""

    query: ast.Query  # rewritten query, or the original when no hit
    used: Optional[MaterializedView] = None
    reports: list[CandidateReport] = field(default_factory=list)

    @property
    def rewritten(self) -> bool:
        return self.used is not None

    def explain_lines(self) -> list[str]:
        return [f"summary: {r.describe()}" for r in self.reports]


class _NoMatch(Exception):
    """Raised inside translation when the candidate cannot answer the query.

    ``rule`` is the stable matchability-rule slug the reason belongs to.
    """

    def __init__(self, reason: str, rule: str = "unsupported-shape") -> None:
        super().__init__(reason)
        self.reason = reason
        self.rule = rule


def rewrite_query(
    catalog: "Catalog", query: ast.Query, *, record: bool = True
) -> RewriteOutcome:
    """Try to answer ``query`` from a materialized summary table.

    ``record=False`` (used by EXPLAIN) leaves the per-view hit/reject
    counters untouched while still producing candidate reports.
    """
    if not isinstance(query, ast.Select):
        return RewriteOutcome(query)
    if not isinstance(query.from_clause, ast.TableName):
        return RewriteOutcome(query)
    candidates = catalog.materialized_views_over(query.from_clause.name)
    if not candidates:
        return RewriteOutcome(query)

    measure_names = _source_measure_names(catalog, query.from_clause.name)
    shape_reason = _unmatchable_shape(query, measure_names)
    reports: list[CandidateReport] = []
    if shape_reason is not None:
        for view in candidates:
            reports.append(
                CandidateReport(
                    view.name, "rejected", shape_reason, "unsupported-shape"
                )
            )
            if record:
                view.stats.record_reject(shape_reason, "unsupported-shape")
        return RewriteOutcome(query, reports=reports)

    # Prefer the smallest covering summary (fewest dimensions).
    for view in sorted(candidates, key=lambda v: len(v.definition.dimensions)):
        if view.stale:
            reports.append(CandidateReport(view.name, "stale"))
            if record:
                view.stats.stale_skips += 1
            continue
        try:
            rewritten = _try_rewrite(view, query, measure_names)
        except _NoMatch as miss:
            reports.append(
                CandidateReport(view.name, "rejected", miss.reason, miss.rule)
            )
            if record:
                view.stats.record_reject(miss.reason, miss.rule)
            continue
        reports.append(CandidateReport(view.name, "hit"))
        if record:
            view.stats.hits += 1
        return RewriteOutcome(rewritten, used=view, reports=reports)
    return RewriteOutcome(query, reports=reports)


def _source_measure_names(catalog: "Catalog", source: str) -> frozenset:
    """Lowercased names of the measure columns of the query's FROM view.

    A bare reference to a measure column in a grouped query is the paper's
    shorthand for ``AGGREGATE(m)`` (section 3.3), so the rewriter must
    recognize it to match summaries the same way the expander does.  Views
    with a rename list are skipped: the rename obscures which item defines
    each measure (mirroring :func:`~repro.matview.definition._classify_measure`).
    """
    from repro.catalog.objects import View

    obj = catalog.get(source)
    if (
        not isinstance(obj, View)
        or not isinstance(obj.query, ast.Select)
        or obj.column_names
    ):
        return frozenset()
    return frozenset(
        (item.alias or "").lower()
        for item in obj.query.items
        if item.is_measure and item.alias
    )


def _unmatchable_shape(
    select: ast.Select, measure_names: frozenset = frozenset()
) -> Optional[str]:
    """A reason this query can never be answered from a summary, or None."""
    if select.distinct:
        return "query uses SELECT DISTINCT"
    if select.qualify is not None:
        return "query uses QUALIFY"
    if select.windows:
        return "query uses a WINDOW clause"
    for element in select.group_by:
        if not isinstance(element, ast.SimpleGrouping):
            return "query uses grouping sets (ROLLUP/CUBE/GROUPING SETS)"
    for node in select.walk():
        if isinstance(node, ast.Star):
            # Select-list * / alias.* only: COUNT(*) carries ``star_arg``
            # on the FunctionCall and never produces a Star node, so it
            # stays matchable against a stored COUNT(*) measure.
            return "query selects *"
        if isinstance(node, ast.At):
            return "query uses the AT context operator"
        if isinstance(node, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
            return "query contains a subquery"
        if isinstance(node, ast.FunctionCall) and (
            node.over is not None or node.over_name is not None
        ):
            return "query uses a window function"
    if not select.group_by:
        # Without GROUP BY the query must be a global aggregate; a plain
        # row-level SELECT cannot be answered from pre-grouped rows.  Only
        # genuine aggregate calls count — a scalar call like UPPER(region)
        # keeps the query at row grain.
        for item in select.items:
            if not _contains_aggregate(item.expr, measure_names):
                return "query is not an aggregate query"
    return None


def _is_aggregate_call(node: ast.Node) -> bool:
    """True for a plain (non-windowed) aggregate call, including the
    measure operator ``AGGREGATE(m)``."""
    return (
        isinstance(node, ast.FunctionCall)
        and node.over is None
        and node.over_name is None
        and (node.name == "AGGREGATE" or is_aggregate_function(node.name))
    )


def _is_measure_ref(node: ast.Node, measure_names: frozenset) -> bool:
    """True for a bare column reference to a measure of the source view
    (implicit ``AGGREGATE`` at the query's grain, paper section 3.3)."""
    return (
        isinstance(node, ast.ColumnRef)
        and node.parts[-1].lower() in measure_names
    )


def _contains_aggregate(
    expr: ast.Expression, measure_names: frozenset = frozenset()
) -> bool:
    return any(
        _is_aggregate_call(node) or _is_measure_ref(node, measure_names)
        for node in expr.walk()
    )


def _try_rewrite(
    view: MaterializedView,
    select: ast.Select,
    measure_names: frozenset = frozenset(),
) -> ast.Select:
    """Rewrite ``select`` over ``view`` or raise :class:`_NoMatch`."""
    definition = view.definition
    dims_by_key = {d.key: d for d in definition.dimensions}
    measures_by_key = {m.key: m for m in definition.measures}

    # Grouping subsumption: every grouping expression is a stored dimension.
    group_keys: list[str] = []
    for element in select.group_by:
        key = canonical(element.expr)
        if key not in dims_by_key:
            raise _NoMatch(
                f"grouping expression {key} is not a dimension",
                "missing-dimension",
            )
        group_keys.append(key)
    exact = set(group_keys) == set(dims_by_key)

    # WHERE subsumption: the summary's filter must be part of the query's,
    # and whatever remains must be answerable over the dimensions.
    query_conjuncts = split_conjuncts(select.where)
    query_keys = {canonical(c) for c in query_conjuncts}
    missing = definition.where_keys - query_keys
    if missing:
        raise _NoMatch(
            f"summary filters on {sorted(missing)[0]} but the query does not",
            "predicate-not-subsumed",
        )
    residual = [
        c for c in query_conjuncts if canonical(c) not in definition.where_keys
    ]

    markers: set[int] = set()

    def dim_ref(column: str) -> ast.ColumnRef:
        ref = ast.ColumnRef((view.name, column))
        markers.add(id(ref))
        return ref

    def replace(node: ast.Node) -> Optional[ast.Node]:
        if not isinstance(node, ast.Expression):
            return None
        key = canonical(node)
        if _is_measure_ref(node, measure_names) and key not in dims_by_key:
            # A bare measure reference aggregates implicitly: match it as if
            # the query had written AGGREGATE(m).  Never substituted as a
            # plain column — a measure the summary does not store must fall
            # through to normal expansion over the base view.
            implicit = ast.FunctionCall("AGGREGATE", [copy.deepcopy(node)])
            measure = measures_by_key.get(canonical(implicit))
            if measure is None:
                raise _NoMatch(
                    f"measure {key} is not stored in the summary",
                    "missing-aggregate",
                )
            if not measure.rolls_up and not exact:
                raise _NoMatch(
                    f"measure {measure.name} does not roll up "
                    f"({measure.kind}); grouping must match the summary's "
                    f"dimensions exactly",
                    "non-distributive-aggregate",
                )
            return _rollup(measure, dim_ref)
        if isinstance(node, ast.FunctionCall):
            measure = measures_by_key.get(key)
            if measure is not None:
                if not measure.rolls_up and not exact:
                    raise _NoMatch(
                        f"measure {measure.name} does not roll up "
                        f"({measure.kind}); grouping must match the summary's "
                        f"dimensions exactly",
                        "non-distributive-aggregate",
                    )
                return _rollup(measure, dim_ref)
            if _is_aggregate_call(node):
                # Never translate an aggregate the summary does not store:
                # substituting its arguments would re-run it over pre-grouped
                # summary rows (e.g. COUNT(region) would count groups, not
                # base rows).
                raise _NoMatch(
                    f"aggregate {key} is not stored in the summary",
                    "missing-aggregate",
                )
        dim = dims_by_key.get(key)
        if dim is not None:
            return dim_ref(dim.name)
        return None

    def translate(expr: ast.Expression) -> ast.Expression:
        result = transform_topdown(copy.deepcopy(expr), replace)
        for ref in find_all(result, ast.ColumnRef):
            if id(ref) not in markers:
                raise _NoMatch(
                    f"expression references {'.'.join(ref.parts)}, which the "
                    f"summary does not store",
                    "missing-column",
                )
        return result

    from repro.semantics.binder import output_column_name

    items = []
    for index, item in enumerate(select.items):
        if item.is_measure:
            raise _NoMatch(
                "query defines an AS MEASURE item", "unsupported-shape"
            )
        # Carry the original derived column name: the roll-up expression
        # (e.g. COALESCE(SUM(n), 0) for COUNT) must not rename the output.
        items.append(
            ast.SelectItem(translate(item.expr), output_column_name(item, index))
        )

    output_aliases = {
        (item.alias or "").lower() for item in select.items if item.alias
    }

    def translate_order(expr: ast.Expression) -> ast.Expression:
        # Ordinals and output-alias references survive the rewrite as-is;
        # everything else must be expressible over the summary.
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            return copy.deepcopy(expr)
        if (
            isinstance(expr, ast.ColumnRef)
            and len(expr.parts) == 1
            and expr.name.lower() in output_aliases
        ):
            return copy.deepcopy(expr)
        return translate(expr)

    rewritten = ast.Select(
        items=items,
        from_clause=ast.TableName(view.name),
        where=_conjoin([translate(c) for c in residual]),
        group_by=[
            ast.SimpleGrouping(translate(e.expr)) for e in select.group_by
        ],
        having=translate(select.having) if select.having is not None else None,
        order_by=[
            ast.OrderItem(translate_order(o.expr), o.descending, o.nulls_first)
            for o in select.order_by
        ],
        limit=copy.deepcopy(select.limit),
        offset=copy.deepcopy(select.offset),
        force_aggregate=not select.group_by,
    )
    return rewritten


def _rollup(measure: SummaryMeasure, dim_ref) -> ast.Expression:
    """The expression that re-aggregates one stored measure column."""
    if measure.kind == "SUM":
        return ast.FunctionCall("SUM", [dim_ref(measure.name)])
    if measure.kind == "COUNT":
        # SUM over an empty input is NULL but COUNT must be 0 (the global,
        # no-GROUP-BY grain can see zero summary rows).
        return ast.FunctionCall(
            "COALESCE",
            [
                ast.FunctionCall("SUM", [dim_ref(measure.name)]),
                ast.Literal(0),
            ],
        )
    if measure.kind in ("MIN", "MAX"):
        return ast.FunctionCall(measure.kind, [dim_ref(measure.name)])
    if measure.kind == "AVG":
        return ast.FunctionCall(
            "SAFE_DIVIDE",
            [
                ast.FunctionCall("SUM", [dim_ref(measure.sum_column)]),
                ast.FunctionCall("SUM", [dim_ref(measure.count_column)]),
            ],
        )
    # OPAQUE, exact grouping: each group is exactly one summary row, so any
    # aggregate that returns that row's value is the identity.
    return ast.FunctionCall("MIN", [dim_ref(measure.name)])


def _conjoin(conjuncts: list[ast.Expression]) -> Optional[ast.Expression]:
    expr: Optional[ast.Expression] = None
    for conjunct in conjuncts:
        expr = conjunct if expr is None else ast.Binary("AND", expr, conjunct)
    return expr
