"""Exception hierarchy for the repro SQL engine.

Every user-facing failure raised by the library derives from :class:`SqlError`
so that applications can catch one exception type at the API boundary.  The
subclasses mirror the stage of query processing that detected the problem,
which makes test assertions and error reporting precise.
"""

from __future__ import annotations


class SqlError(Exception):
    """Base class for all errors raised by the repro engine."""


class LexerError(SqlError):
    """Raised when the tokenizer encounters malformed input.

    Carries the 1-based ``line`` and ``column`` of the offending character.
    """

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


class ParseError(SqlError):
    """Raised when the parser cannot derive a statement from the token stream."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BindError(SqlError):
    """Raised during semantic analysis: unknown names, ambiguity, misuse of
    aggregates, invalid measure references, and similar static errors.

    Carries the 1-based ``line`` and ``column`` of the offending construct
    when known (the binder attaches them from AST spans); both are 0 when
    the error has no source position (e.g. programmatically-built ASTs).
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.message = message
        self.line = line
        self.column = column

    def attach_location(self, line: int, column: int) -> "BindError":
        """Late-bind a source position onto an already-raised error.

        Used by the binder's dispatch loop: the innermost AST node that
        carries a span wins, and an error that already has a position keeps
        it as the exception propagates outward.
        """
        if not self.line and line:
            self.line = line
            self.column = column
            self.args = (f"{self.message} at line {line}, column {column}",)
        return self


class CatalogError(SqlError):
    """Raised for catalog problems: missing or duplicate tables and views,
    arity mismatches in DDL/DML, and schema violations."""


class TypeCheckError(BindError):
    """Raised when an expression is applied to operands of an unsupported type."""


class ExecutionError(SqlError):
    """Raised when a runtime evaluation fails (division by zero, a scalar
    subquery returning more than one row, cast failures, ...).

    Carries the 1-based ``line`` and ``column`` of the expression whose
    evaluation failed when the evaluator knows it (bound expressions carry
    their AST spans); both are 0 when the failure has no source position.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.message = message
        self.line = line
        self.column = column

    def attach_location(self, line: int, column: int) -> "ExecutionError":
        """Late-bind a source position; the innermost position wins and an
        error that already has one keeps it while propagating outward."""
        if not self.line and line:
            self.line = line
            self.column = column
            self.args = (f"{self.message} at line {line}, column {column}",)
        return self


class QueryCancelled(ExecutionError):
    """Raised when an in-flight statement is cancelled (the query server's
    ``cancel`` operation).  The executor checks the session's cancel flag
    at every operator boundary, so cancellation lands between operators —
    never mid-row — and the session stays usable afterwards."""


class ResourceExhausted(ExecutionError):
    """Raised when a query exceeds its memory budget
    (``Database(memory_limit_bytes=...)``).

    The executor's materialization sites account estimated bytes as
    buffers grow and raise this *before* the interpreter OOMs; as an
    :class:`ExecutionError` it carries a source span when one is known,
    the failing operator is named in the message, and the session that
    ran the query stays usable — exactly like a cancellation."""


class MeasureError(BindError):
    """Raised for invalid measure definitions or uses: recursive measures,
    ``AT`` applied to a non-measure, ``CURRENT`` outside a ``SET`` modifier,
    unknown dimensions, and similar."""


class UnsupportedError(SqlError):
    """Raised for syntactically valid SQL that this engine does not implement."""


class InternalError(SqlError):
    """Raised when an engine invariant breaks (e.g. the plan optimizer fails
    to reach a fixpoint).  Always a bug in the engine, never user error."""


class ValidationError(InternalError):
    """Raised by the plan/IR validator (``REPRO_VALIDATE=1``) when a bound or
    optimized plan violates an engine invariant: schema arity mismatches,
    dangling column ordinals, impossible correlation depths, or an optimizer
    rule that claims progress while producing a semantically identical plan.

    ``violations`` lists every individual invariant breach found in the plan
    that triggered the error.
    """

    def __init__(self, message: str, violations: tuple = ()):
        super().__init__(message)
        self.violations = list(violations)
