"""SQL data types, including the paper's ``t MEASURE`` wrapper type.

The engine is dynamically typed at runtime (values are plain Python objects)
but the binder computes a static type for every expression.  Types matter in
three places:

* DDL column definitions and INSERT coercion,
* result-set metadata (`Result.columns`),
* the measure machinery: a measure column has type ``t MEASURE`` and the
  ``EVAL``/``AGGREGATE`` operators strip the wrapper (paper section 3.4).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.errors import TypeCheckError

__all__ = [
    "DataType",
    "ScalarType",
    "MeasureType",
    "BOOLEAN",
    "INTEGER",
    "DOUBLE",
    "VARCHAR",
    "DATE",
    "UNKNOWN",
    "parse_type_name",
    "python_type_of",
]


@dataclass(frozen=True)
class DataType:
    """Base class for all SQL types."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    @property
    def is_measure(self) -> bool:
        return False

    def unwrap(self) -> "DataType":
        """The value type of this type: ``t`` for ``t MEASURE``, else itself."""
        return self


@dataclass(frozen=True)
class ScalarType(DataType):
    """A plain (non-measure) SQL scalar type."""


@dataclass(frozen=True)
class MeasureType(DataType):
    """The paper's ``t MEASURE`` type: a context-sensitive value of type ``t``.

    ``EVAL`` (and its sugar ``AGGREGATE``) turn a ``t MEASURE`` into a ``t``.
    """

    inner: ScalarType = None  # type: ignore[assignment]

    def __init__(self, inner: ScalarType):
        object.__setattr__(self, "inner", inner)
        object.__setattr__(self, "name", f"{inner.name} MEASURE")

    @property
    def is_measure(self) -> bool:
        return True

    def unwrap(self) -> DataType:
        return self.inner


BOOLEAN = ScalarType("BOOLEAN")
INTEGER = ScalarType("INTEGER")
DOUBLE = ScalarType("DOUBLE")
VARCHAR = ScalarType("VARCHAR")
DATE = ScalarType("DATE")
#: Type of NULL literals and expressions whose type cannot be derived.
UNKNOWN = ScalarType("UNKNOWN")

_NAME_ALIASES = {
    "BOOLEAN": BOOLEAN,
    "BOOL": BOOLEAN,
    "INTEGER": INTEGER,
    "INT": INTEGER,
    "INT64": INTEGER,
    "BIGINT": INTEGER,
    "SMALLINT": INTEGER,
    "DOUBLE": DOUBLE,
    "FLOAT": DOUBLE,
    "FLOAT64": DOUBLE,
    "REAL": DOUBLE,
    "DECIMAL": DOUBLE,
    "NUMERIC": DOUBLE,
    "VARCHAR": VARCHAR,
    "STRING": VARCHAR,
    "TEXT": VARCHAR,
    "CHAR": VARCHAR,
    "DATE": DATE,
}


def parse_type_name(name: str) -> ScalarType:
    """Resolve a SQL type name (case-insensitive, with common aliases)."""
    try:
        return _NAME_ALIASES[name.upper()]
    except KeyError:
        raise TypeCheckError(f"unknown type name: {name!r}") from None


def python_type_of(dtype: DataType) -> tuple[type, ...]:
    """Python classes acceptable for values of ``dtype`` (NULL excluded)."""
    base = dtype.unwrap()
    if base is BOOLEAN:
        return (bool,)
    if base is INTEGER:
        return (int,)
    if base is DOUBLE:
        return (float, int)
    if base is VARCHAR:
        return (str,)
    if base is DATE:
        return (datetime.date,)
    return (object,)
