"""Static type inference and value coercion rules.

The binder uses :func:`common_type` and the arithmetic/comparison result rules
to type expressions; the storage layer uses :func:`coerce_value` to validate
and convert inserted values.
"""

from __future__ import annotations

import datetime
from typing import Any

from repro.errors import ExecutionError, TypeCheckError
from repro.types.datatypes import (
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    UNKNOWN,
    VARCHAR,
    DataType,
    ScalarType,
)

__all__ = [
    "common_type",
    "arithmetic_result",
    "division_result",
    "coerce_value",
    "infer_literal_type",
]

_NUMERIC = (INTEGER, DOUBLE)


def common_type(left: DataType, right: DataType) -> DataType:
    """The least common supertype of two types (for CASE, set ops, IN, ...)."""
    left, right = left.unwrap(), right.unwrap()
    if left is UNKNOWN:
        return right
    if right is UNKNOWN:
        return left
    if left == right:
        return left
    if left in _NUMERIC and right in _NUMERIC:
        return DOUBLE
    raise TypeCheckError(f"no common type for {left} and {right}")


def arithmetic_result(left: DataType, right: DataType) -> DataType:
    """Result type of ``+ - *`` (DATE +/- INTEGER handled by the caller)."""
    left, right = left.unwrap(), right.unwrap()
    if left is UNKNOWN or right is UNKNOWN:
        return UNKNOWN
    if left is DATE and right is INTEGER:
        return DATE
    if left is INTEGER and right is DATE:
        return DATE
    if left is DATE and right is DATE:
        return INTEGER
    if left in _NUMERIC and right in _NUMERIC:
        return DOUBLE if DOUBLE in (left, right) else INTEGER
    raise TypeCheckError(f"arithmetic on {left} and {right}")


def division_result(left: DataType, right: DataType) -> DataType:
    """``/`` always yields DOUBLE (GoogleSQL semantics)."""
    left, right = left.unwrap(), right.unwrap()
    for t in (left, right):
        if t not in _NUMERIC and t is not UNKNOWN:
            raise TypeCheckError(f"division on {t}")
    return DOUBLE


def infer_literal_type(value: Any) -> ScalarType:
    if value is None:
        return UNKNOWN
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INTEGER
    if isinstance(value, float):
        return DOUBLE
    if isinstance(value, datetime.date):
        return DATE
    if isinstance(value, str):
        return VARCHAR
    raise TypeCheckError(f"unsupported literal type {type(value).__name__}")


def coerce_value(value: Any, dtype: DataType) -> Any:
    """Coerce ``value`` for storage in a column of type ``dtype``.

    Accepts ISO-format strings for DATE columns and ints for DOUBLE columns;
    raises :class:`ExecutionError` for anything that cannot be represented.
    """
    if value is None:
        return None
    target = dtype.unwrap()
    if target is UNKNOWN:
        return value
    if target is BOOLEAN:
        if isinstance(value, bool):
            return value
    elif target is INTEGER:
        if isinstance(value, bool):
            pass
        elif isinstance(value, int):
            return value
        elif isinstance(value, float) and value.is_integer():
            return int(value)
    elif target is DOUBLE:
        if isinstance(value, bool):
            pass
        elif isinstance(value, (int, float)):
            return float(value)
    elif target is VARCHAR:
        if isinstance(value, str):
            return value
    elif target is DATE:
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, str):
            try:
                return datetime.date.fromisoformat(value.replace("/", "-"))
            except ValueError:
                raise ExecutionError(f"invalid date literal: {value!r}") from None
    raise ExecutionError(
        f"cannot coerce {value!r} ({type(value).__name__}) to {target}"
    )
