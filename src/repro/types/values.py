"""Runtime value semantics: SQL three-valued logic, null-safe comparison,
ordering with NULL handling, and arithmetic helpers.

Values are plain Python objects: ``bool``, ``int``, ``float``, ``str``,
``datetime.date`` and ``None`` (SQL NULL).  All helpers in this module
implement SQL semantics, not Python semantics; in particular every comparison
involving NULL yields NULL (``None``) except ``IS [NOT] DISTINCT FROM``.
"""

from __future__ import annotations

import datetime
import math
from typing import Any, Iterable, Sequence

from repro.errors import ExecutionError

__all__ = [
    "sql_and",
    "sql_or",
    "sql_not",
    "sql_eq",
    "sql_compare",
    "is_distinct",
    "is_not_distinct",
    "sql_add",
    "sql_sub",
    "sql_mul",
    "sql_div",
    "sql_neg",
    "sql_mod",
    "SortKey",
    "sort_rows",
    "format_value",
]


def sql_and(left: Any, right: Any) -> Any:
    """Three-valued AND: FALSE dominates, then NULL, then TRUE."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def sql_or(left: Any, right: Any) -> Any:
    """Three-valued OR: TRUE dominates, then NULL, then FALSE."""
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def sql_not(value: Any) -> Any:
    if value is None:
        return None
    return not value


def _comparable(left: Any, right: Any) -> tuple[Any, Any]:
    """Coerce two non-null values for comparison, raising on type clashes."""
    if isinstance(left, bool) != isinstance(right, bool):
        raise ExecutionError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        )
    numeric = (int, float)
    if isinstance(left, numeric) and isinstance(right, numeric):
        return left, right
    if isinstance(left, datetime.date) and isinstance(right, datetime.date):
        return left, right
    if type(left) is type(right):
        return left, right
    raise ExecutionError(
        f"cannot compare {type(left).__name__} with {type(right).__name__}"
    )


def sql_eq(left: Any, right: Any) -> Any:
    """SQL ``=``: NULL if either side is NULL."""
    if left is None or right is None:
        return None
    a, b = _comparable(left, right)
    return a == b


def sql_compare(op: str, left: Any, right: Any) -> Any:
    """Evaluate one of ``= <> < <= > >=`` with SQL NULL propagation."""
    if left is None or right is None:
        return None
    a, b = _comparable(left, right)
    if op == "=":
        return a == b
    if op in ("<>", "!="):
        return a != b
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    raise ExecutionError(f"unknown comparison operator {op!r}")


def is_distinct(left: Any, right: Any) -> bool:
    """``IS DISTINCT FROM``: null-safe inequality (never NULL)."""
    if left is None and right is None:
        return False
    if left is None or right is None:
        return True
    a, b = _comparable(left, right)
    return a != b


def is_not_distinct(left: Any, right: Any) -> bool:
    """``IS NOT DISTINCT FROM``: null-safe equality.

    This is the comparison the paper uses to build evaluation-context
    predicates from group keys (footnote 1).
    """
    return not is_distinct(left, right)


def _arith_check(value: Any) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ExecutionError(
            f"numeric operator applied to {type(value).__name__}"
        )


def sql_add(left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    if isinstance(left, datetime.date) and isinstance(right, int):
        return left + datetime.timedelta(days=right)
    if isinstance(left, int) and isinstance(right, datetime.date):
        return right + datetime.timedelta(days=left)
    _arith_check(left)
    _arith_check(right)
    return left + right


def sql_sub(left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    if isinstance(left, datetime.date) and isinstance(right, datetime.date):
        return (left - right).days
    if isinstance(left, datetime.date) and isinstance(right, int):
        return left - datetime.timedelta(days=right)
    _arith_check(left)
    _arith_check(right)
    return left - right


def sql_mul(left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    _arith_check(left)
    _arith_check(right)
    return left * right


def sql_div(left: Any, right: Any) -> Any:
    """SQL ``/`` with GoogleSQL-style true division (INT/INT -> DOUBLE)."""
    if left is None or right is None:
        return None
    _arith_check(left)
    _arith_check(right)
    if right == 0:
        raise ExecutionError("division by zero")
    return left / right


def sql_mod(left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    _arith_check(left)
    _arith_check(right)
    if right == 0:
        raise ExecutionError("division by zero")
    return math.fmod(left, right) if isinstance(left, float) or isinstance(right, float) else int(math.fmod(left, right))


def sql_neg(value: Any) -> Any:
    if value is None:
        return None
    _arith_check(value)
    return -value


class SortKey:
    """Total order over SQL values for ORDER BY and DISTINCT.

    NULLs sort after every non-null value (PostgreSQL's default for ASC);
    values of different Python types are ordered by a type rank so that
    heterogeneous columns (which only arise in UNIONs of mixed types) still
    sort deterministically.
    """

    __slots__ = ("value", "_rank")

    _TYPE_RANK = {bool: 0, int: 1, float: 1, datetime.date: 2, str: 3}

    def __init__(self, value: Any):
        self.value = value
        if value is None:
            self._rank = 99
        else:
            self._rank = self._TYPE_RANK.get(type(value), 4)

    def __lt__(self, other: "SortKey") -> bool:
        if self._rank != other._rank:
            return self._rank < other._rank
        if self.value is None:
            return False
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SortKey):
            return NotImplemented
        return self._rank == other._rank and self.value == other.value

    def __hash__(self) -> int:
        return hash((self._rank, self.value))


def sort_rows(
    rows: Iterable[Sequence[Any]],
    keys: Sequence[tuple[int, bool, bool]],
) -> list:
    """Sort ``rows`` by ``keys`` = [(column_index, descending, nulls_first)].

    A stable multi-key sort applied from the least significant key outwards.
    """
    result = list(rows)
    for index, descending, nulls_first in reversed(list(keys)):
        def keyfunc(row, index=index, descending=descending, nulls_first=nulls_first):
            value = row[index]
            if value is None:
                null_rank = 0 if nulls_first else 2
            else:
                null_rank = 1
            return (null_rank, _Directional(SortKey(value), descending))

        result.sort(key=keyfunc)
    return result


class _Directional:
    """Wraps a SortKey to invert comparisons for DESC ordering."""

    __slots__ = ("key", "descending")

    def __init__(self, key: SortKey, descending: bool):
        self.key = key
        self.descending = descending

    def __lt__(self, other: "_Directional") -> bool:
        if self.descending:
            return other.key < self.key
        return self.key < other.key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _Directional):
            return NotImplemented
        return self.key == other.key


def format_value(value: Any) -> str:
    """Render a value the way the paper's listings print results."""
    if value is None:
        return ""
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return f"{value:.2f}"
        return f"{value:.4g}" if abs(value) >= 1 else f"{value:.2f}"
    if isinstance(value, datetime.date):
        return value.isoformat()
    return str(value)
