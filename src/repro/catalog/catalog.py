"""The catalog: a case-insensitive namespace of tables and views."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.catalog.objects import (
    BaseTable,
    CatalogObject,
    MaterializedView,
    SystemTable,
    View,
)
from repro.catalog.schema import TableSchema
from repro.catalog.stats import TableStats
from repro.errors import CatalogError
from repro.sql import ast
from repro.storage.table import MemoryTable

__all__ = ["Catalog"]


class Catalog:
    """Holds every named object visible to queries."""

    def __init__(self) -> None:
        self._objects: dict[str, CatalogObject] = {}
        #: Reserved namespace of virtual system tables (repro.introspect).
        #: Kept apart from user objects so names()/__contains__ and the
        #: shell's object listings show only what the user created.
        self._system: dict[str, SystemTable] = {}
        #: Snapshot-group providers: group name -> zero-arg callable
        #: returning ``{table_name: rows}`` for every member table, read
        #: from the backing store in one atomic call.
        self._snapshot_groups: dict[str, object] = {}
        #: ``ANALYZE`` results, keyed by lowered table name, plus the
        #: rows-changed-since-analyze staleness counters DML maintains.
        self._table_stats: dict[str, TableStats] = {}
        self._stats_mods: dict[str, int] = {}

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._objects

    def __iter__(self) -> Iterator[CatalogObject]:
        return iter(self._objects.values())

    def names(self) -> list[str]:
        """Sorted display names of all catalog objects."""
        return sorted(obj.name for obj in self._objects.values())

    def get(self, name: str) -> Optional[CatalogObject]:
        """The object named ``name`` (case-insensitive), or None."""
        key = name.lower()
        obj = self._objects.get(key)
        if obj is None:
            obj = self._system.get(key)
        return obj

    # -- system tables -------------------------------------------------------

    def register_system_table(self, table: SystemTable) -> SystemTable:
        """Register a virtual system table in the reserved namespace."""
        key = table.name.lower()
        if key in self._objects:
            raise CatalogError(
                f"cannot register system table {table.name!r}: a user "
                f"object with that name already exists"
            )
        self._system[key] = table
        return table

    def system_tables(self) -> list[SystemTable]:
        """All registered system tables, in name order."""
        return sorted(self._system.values(), key=lambda t: t.name.lower())

    def register_snapshot_group(self, group: str, provider) -> None:
        """Register a combined provider for a system-table snapshot group.

        ``provider`` takes no arguments and returns ``{table_name: rows}``
        covering every member table of the group; the executor calls it
        once per query execution (at the first scan of any member) so the
        member tables expose one consistent view of their shared store.
        """
        self._snapshot_groups[group] = provider

    def snapshot_group(self, group: str):
        """The group provider registered under ``group``, or None."""
        return self._snapshot_groups.get(group)

    def is_system(self, name: str) -> bool:
        return name.lower() in self._system

    # -- ANALYZE statistics --------------------------------------------------

    def store_table_stats(self, stats: TableStats) -> None:
        """Record an ``ANALYZE`` result and reset its staleness counter."""
        key = stats.table.lower()
        self._table_stats[key] = stats
        self._stats_mods[key] = 0

    def table_stats(self, name: str) -> Optional[TableStats]:
        """The stored ``ANALYZE`` result for ``name``, or None."""
        return self._table_stats.get(name.lower())

    def all_table_stats(self) -> list[TableStats]:
        """Every stored ``ANALYZE`` result, in table-name order."""
        return sorted(
            self._table_stats.values(), key=lambda s: s.table.lower()
        )

    def note_rows_changed(self, name: str, count: int) -> None:
        """Bump the staleness counter after DML changed ``count`` rows.

        A no-op for tables that were never analyzed: staleness is defined
        relative to a previous ANALYZE, so there is nothing to age.
        """
        key = name.lower()
        if count and key in self._table_stats:
            self._stats_mods[key] = self._stats_mods.get(key, 0) + count

    def mods_since_analyze(self, name: str) -> int:
        """Rows changed since ``name`` was last analyzed (0 if never)."""
        return self._stats_mods.get(name.lower(), 0)

    def discard_table_stats(self, name: str) -> None:
        """Drop stored statistics (the table was dropped or replaced)."""
        key = name.lower()
        self._table_stats.pop(key, None)
        self._stats_mods.pop(key, None)

    def _reject_system_name(self, name: str) -> None:
        if name.lower() in self._system:
            raise CatalogError(
                f"{name!r} is a system table and cannot be redefined"
            )

    def resolve(self, name: str) -> CatalogObject:
        """Like :meth:`get` but raises :class:`CatalogError` when missing."""
        obj = self.get(name)
        if obj is None:
            raise CatalogError(f"unknown table or view {name!r}")
        return obj

    def create_table(
        self,
        name: str,
        schema: TableSchema,
        *,
        or_replace: bool = False,
        if_not_exists: bool = False,
    ) -> BaseTable:
        """Create (or with flags, replace/reuse) a base table."""
        self._reject_system_name(name)
        key = name.lower()
        if key in self._objects:
            if if_not_exists:
                existing = self._objects[key]
                if isinstance(existing, BaseTable) and not isinstance(
                    existing, MaterializedView
                ):
                    return existing
                raise CatalogError(f"{name!r} exists and is not a table")
            if not or_replace:
                raise CatalogError(f"object {name!r} already exists")
            # Statistics describe the replaced table's data, not the new
            # (empty) one; a later ANALYZE starts fresh.
            self.discard_table_stats(name)
        table = BaseTable(name, MemoryTable(schema))
        self._objects[key] = table
        return table

    def create_view(
        self,
        name: str,
        query: ast.Query,
        *,
        column_names: Optional[list[str]] = None,
        or_replace: bool = False,
    ) -> View:
        """Create a view over ``query``; ``column_names`` optionally rename."""
        self._reject_system_name(name)
        key = name.lower()
        if key in self._objects and not or_replace:
            raise CatalogError(f"object {name!r} already exists")
        view = View(name, query, list(column_names or []))
        self._objects[key] = view
        return view

    def add_materialized_view(
        self, name: str, view: MaterializedView, *, or_replace: bool = False
    ) -> MaterializedView:
        """Register a materialized summary table built by the engine.

        ``OR REPLACE`` only ever replaces another materialized view: silently
        destroying a base table (and its data) or a plain view that happens
        to share the name is never what the user meant.
        """
        self._reject_system_name(name)
        key = name.lower()
        existing = self._objects.get(key)
        if existing is not None:
            if not or_replace:
                raise CatalogError(f"object {name!r} already exists")
            if not isinstance(existing, MaterializedView):
                raise CatalogError(
                    f"{name!r} is a {existing.kind.lower()}, not a "
                    f"materialized view; OR REPLACE cannot replace it"
                )
            self.discard_table_stats(name)
        self._objects[key] = view
        return view

    def materialized_views(self) -> list[MaterializedView]:
        """All materialized views, in name order."""
        return sorted(
            (o for o in self._objects.values() if isinstance(o, MaterializedView)),
            key=lambda o: o.name.lower(),
        )

    def materialized_views_over(self, source_name: str) -> list[MaterializedView]:
        """Materialized views whose FROM relation is ``source_name``."""
        key = source_name.lower()
        return [v for v in self.materialized_views() if v.definition.source_name == key]

    def materialized_views_depending_on(self, relation_name: str) -> list[MaterializedView]:
        """Materialized views that (transitively) read ``relation_name``,
        which may be a base table or a view in the summary's source chain."""
        key = relation_name.lower()
        return [v for v in self.materialized_views() if key in v.definition.depends_on]

    def drop(self, kind: str, name: str, *, if_exists: bool = False) -> bool:
        """Drop a TABLE, VIEW, or MATERIALIZED VIEW; the kind must match."""
        key = name.lower()
        if key in self._system:
            raise CatalogError(
                f"{name!r} is a system table and cannot be dropped"
            )
        obj = self._objects.get(key)
        if obj is None:
            if if_exists:
                return False
            raise CatalogError(f"unknown {kind.lower()} {name!r}")
        if obj.kind != kind:
            raise CatalogError(f"{name!r} is a {obj.kind.lower()}, not a {kind.lower()}")
        del self._objects[key]
        self.discard_table_stats(name)
        return True

    def base_table(self, name: str) -> BaseTable:
        """Resolve ``name`` and require it to be a base table (DML targets)."""
        obj = self.resolve(name)
        if isinstance(obj, MaterializedView):
            raise CatalogError(
                f"{name!r} is a materialized view; use REFRESH MATERIALIZED "
                f"VIEW instead of DML"
            )
        if not isinstance(obj, BaseTable):
            raise CatalogError(f"{name!r} is not a base table")
        return obj
