"""Column and table schemas.

Identifier matching is case-insensitive (standard SQL folding) while the
original spelling is preserved for display.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import CatalogError
from repro.types import DataType

__all__ = ["Column", "TableSchema"]


@dataclass(frozen=True)
class Column:
    """A named, typed column.  ``is_measure`` marks measure columns in views
    and derived tables; base-table columns are never measures."""

    name: str
    dtype: DataType

    @property
    def is_measure(self) -> bool:
        return self.dtype.is_measure


@dataclass
class TableSchema:
    columns: list[Column] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for column in self.columns:
            key = column.name.lower()
            if key in seen:
                raise CatalogError(f"duplicate column name {column.name!r}")
            seen.add(key)

    def __len__(self) -> int:
        return len(self.columns)

    def names(self) -> list[str]:
        """Column names in declaration order."""
        return [column.name for column in self.columns]

    def find(self, name: str) -> Optional[int]:
        """Index of column ``name`` (case-insensitive), or None."""
        lowered = name.lower()
        for index, column in enumerate(self.columns):
            if column.name.lower() == lowered:
                return index
        return None

    def index_of(self, name: str) -> int:
        """Index of column ``name``; raises :class:`CatalogError` if absent."""
        index = self.find(name)
        if index is None:
            raise CatalogError(f"unknown column {name!r}")
        return index

    def column(self, name: str) -> Column:
        """The :class:`Column` named ``name``."""
        return self.columns[self.index_of(name)]

    @staticmethod
    def of(pairs: Iterable[tuple[str, DataType]]) -> "TableSchema":
        """Build a schema from ``(name, type)`` pairs."""
        return TableSchema([Column(name, dtype) for name, dtype in pairs])
