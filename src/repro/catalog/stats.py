"""``ANALYZE`` column statistics.

:func:`analyze_table` scans a base table once and produces a
:class:`TableStats`: exact row count plus, per column, the number of
distinct values, null fraction, min/max, and an equi-depth histogram.
The catalog stores the result (:meth:`~repro.catalog.Catalog
.store_table_stats`) together with a *mods-since-analyze* counter that
DML bumps, so staleness — rows changed since the statistics were
gathered — is a first-class, queryable fact
(``repro_table_stats.mods_since_analyze``).

Everything is computed from the rows actually present: no sampling, no
sketches.  That is the right trade-off for an in-memory engine — the
scan is one pass over data already resident — and it makes the numbers
*exact*, which the differential tests rely on.  Unorderable columns
(mixed types after schema evolution, for example) degrade gracefully:
NDV and null fraction are always computed, min/max and the histogram
are simply omitted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Any, Iterable, Optional, Sequence, Tuple

__all__ = [
    "HISTOGRAM_BUCKETS",
    "ColumnStats",
    "TableStats",
    "analyze_table",
    "equi_depth_bounds",
]

#: Default number of equi-depth histogram buckets per column.
HISTOGRAM_BUCKETS = 10


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="microseconds")


def equi_depth_bounds(
    ordered: Sequence[Any], buckets: int = HISTOGRAM_BUCKETS
) -> Tuple[Any, ...]:
    """Upper bounds of an equi-depth histogram over pre-sorted values.

    Bucket ``i`` holds roughly ``len(ordered) / buckets`` values and its
    bound is the largest value it contains; consecutive duplicate bounds
    (heavy hitters spanning buckets) are collapsed, so the result has at
    most ``buckets`` entries and is strictly increasing.
    """
    n = len(ordered)
    if n == 0:
        return ()
    bounds: list = []
    for i in range(1, buckets + 1):
        # The classic equi-depth cut: the value at the i/buckets quantile.
        index = max(0, min(n - 1, (i * n) // buckets - 1))
        value = ordered[index]
        if not bounds or bounds[-1] != value:
            bounds.append(value)
    return tuple(bounds)


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for one column, gathered by ``ANALYZE``."""

    column: str
    dtype: str
    ndv: int  # distinct non-null values
    null_count: int
    null_frac: float
    min_value: Optional[Any]
    max_value: Optional[Any]
    #: Equi-depth histogram upper bounds (empty when unorderable/empty).
    histogram: Tuple[Any, ...]

    def histogram_json(self) -> str:
        """The histogram bounds as a JSON array (dates etc. stringified)."""
        return json.dumps(list(self.histogram), default=str)

    def as_dict(self) -> dict:
        return {
            "column": self.column,
            "dtype": self.dtype,
            "ndv": self.ndv,
            "null_count": self.null_count,
            "null_frac": self.null_frac,
            "min_value": self.min_value,
            "max_value": self.max_value,
            "histogram": list(self.histogram),
        }


@dataclass(frozen=True)
class TableStats:
    """One table's ``ANALYZE`` result: row count plus per-column stats."""

    table: str
    row_count: int
    analyzed_at: str  # UTC ISO timestamp
    columns: Tuple[ColumnStats, ...]

    def column(self, name: str) -> Optional[ColumnStats]:
        lowered = name.lower()
        for stats in self.columns:
            if stats.column.lower() == lowered:
                return stats
        return None

    def as_dict(self) -> dict:
        return {
            "table": self.table,
            "row_count": self.row_count,
            "analyzed_at": self.analyzed_at,
            "columns": [c.as_dict() for c in self.columns],
        }


def _analyze_column(
    name: str, dtype: str, values: Iterable[Any], *, buckets: int
) -> ColumnStats:
    non_null: list = []
    null_count = 0
    for value in values:
        if value is None:
            null_count += 1
        else:
            non_null.append(value)
    total = len(non_null) + null_count
    ndv = len(set(non_null))
    null_frac = (null_count / total) if total else 0.0
    try:
        non_null.sort()
        minimum = non_null[0] if non_null else None
        maximum = non_null[-1] if non_null else None
        histogram = equi_depth_bounds(non_null, buckets)
    except TypeError:
        # Unorderable values (mixed types): keep the counts, drop the
        # order statistics instead of failing the whole ANALYZE.
        minimum = maximum = None
        histogram = ()
    return ColumnStats(
        column=name,
        dtype=dtype,
        ndv=ndv,
        null_count=null_count,
        null_frac=null_frac,
        min_value=minimum,
        max_value=maximum,
        histogram=histogram,
    )


def analyze_table(
    name: str,
    schema,
    rows: Sequence[tuple],
    *,
    buckets: int = HISTOGRAM_BUCKETS,
) -> TableStats:
    """Scan ``rows`` once and compute full statistics for every column.

    ``schema`` is the table's :class:`~repro.catalog.schema.TableSchema`;
    measure columns cannot occur in base tables, so every column is a
    plain scalar.
    """
    columns = tuple(
        _analyze_column(
            column.name,
            str(column.dtype),
            (row[index] for row in rows),
            buckets=buckets,
        )
        for index, column in enumerate(schema.columns)
    )
    return TableStats(
        table=name,
        row_count=len(rows),
        analyzed_at=_utc_now(),
        columns=columns,
    )
