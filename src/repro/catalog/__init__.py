"""Catalog: named tables and views, schemas, and DDL bookkeeping."""

from repro.catalog.catalog import Catalog
from repro.catalog.objects import (
    BaseTable,
    CatalogObject,
    MaterializedView,
    SystemTable,
    View,
)
from repro.catalog.schema import Column, TableSchema

__all__ = [
    "BaseTable",
    "Catalog",
    "CatalogObject",
    "Column",
    "MaterializedView",
    "SystemTable",
    "TableSchema",
    "View",
]
