"""Catalog objects: base tables, views, and materialized summary tables.

A view stores its defining query AST; binding happens lazily each time the
view is referenced, so views compose (views over views over tables) and views
may define measures with ``AS MEASURE``.

A materialized view stores *rows* — a precomputed summary table — plus the
analyzed definition the rewriter needs to decide subsumption.  It subclasses
:class:`BaseTable` so the binder and executor scan it like any stored table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.catalog.schema import TableSchema
from repro.sql import ast
from repro.storage.table import MemoryTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.matview.definition import SummaryDefinition
    from repro.matview.stats import SummaryStats

__all__ = ["BaseTable", "MaterializedView", "View", "SystemTable", "CatalogObject"]


@dataclass
class BaseTable:
    """A named base table backed by in-memory storage."""

    name: str
    table: MemoryTable

    @property
    def schema(self) -> TableSchema:
        return self.table.schema

    @property
    def kind(self) -> str:
        return "TABLE"


@dataclass
class View:
    """A named view over a query, possibly defining measures."""

    name: str
    query: ast.Query
    column_names: list[str] = field(default_factory=list)

    @property
    def kind(self) -> str:
        return "VIEW"


@dataclass
class MaterializedView(BaseTable):
    """A persistent summary table with its analyzed definition.

    ``table`` holds the materialized rows (dimensions, visible aggregates,
    and hidden AVG companion columns).  ``definition`` carries what the
    rewriter needs: source relation, dimension keys, per-measure roll-up
    kinds, and WHERE conjuncts.  ``stale`` flips on DML against any table in
    ``definition.depends_on``; stale summaries are skipped until refreshed.
    """

    query: ast.Query = None  # definition as written (for SHOW/describe)
    definition: "SummaryDefinition" = None
    stale: bool = False
    stats: "SummaryStats" = None

    def __post_init__(self) -> None:
        if self.stats is None:
            from repro.matview.stats import SummaryStats

            self.stats = SummaryStats()

    @property
    def kind(self) -> str:
        return "MATERIALIZED VIEW"


@dataclass
class SystemTable:
    """A read-only virtual table answered by a provider, not storage.

    System tables (the ``repro_*`` introspection family, see
    :mod:`repro.introspect`) live in the catalog's reserved namespace: they
    bind and scan like ordinary tables but ``provider()`` computes their
    rows on demand, so they always reflect the live engine state.  The
    executor snapshots the provider's rows once per query, giving every
    scan of one execution a consistent view.

    ``group`` optionally names a *snapshot group* (see
    :meth:`~repro.catalog.catalog.Catalog.register_snapshot_group`):
    tables whose rows derive from one shared store are materialized
    together, in a single call against that store, so a query joining
    them (``repro_plan_flips`` x ``repro_stat_statements``) can never see
    a torn cross-table state even while other sessions mutate the store.
    """

    name: str
    schema: TableSchema
    provider: Callable[[], list[tuple]]
    comment: str = ""
    group: str | None = None

    @property
    def kind(self) -> str:
        return "SYSTEM TABLE"


CatalogObject = BaseTable | View | MaterializedView | SystemTable
