"""Catalog objects: base tables and views.

A view stores its defining query AST; binding happens lazily each time the
view is referenced, so views compose (views over views over tables) and views
may define measures with ``AS MEASURE``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.schema import TableSchema
from repro.sql import ast
from repro.storage.table import MemoryTable

__all__ = ["BaseTable", "View", "CatalogObject"]


@dataclass
class BaseTable:
    """A named base table backed by in-memory storage."""

    name: str
    table: MemoryTable

    @property
    def schema(self) -> TableSchema:
        return self.table.schema

    @property
    def kind(self) -> str:
        return "TABLE"


@dataclass
class View:
    """A named view over a query, possibly defining measures."""

    name: str
    query: ast.Query
    column_names: list[str] = field(default_factory=list)

    @property
    def kind(self) -> str:
        return "VIEW"


CatalogObject = BaseTable | View
