"""The concurrent query server: sessions, plan cache, protocol, client.

Layers, bottom up:

* :mod:`repro.server.plancache` — the shared LRU cache of
  :class:`~repro.api.PlannedQuery`, with relation/fingerprint-targeted
  invalidation.
* :mod:`repro.server.session` — :class:`Session` /
  :class:`SessionManager`: per-client execution contexts enforcing the
  single-writer/many-reader lock discipline over one Database, plus the
  ``repro_sessions`` and ``repro_plan_cache`` system tables.
* :mod:`repro.server.protocol` — the newline-delimited JSON wire format.
* :mod:`repro.server.server` — the asyncio :class:`QueryServer` and the
  background-thread :class:`ServerThread` harness.
* :mod:`repro.server.http` — the :class:`ObservabilityServer` sidecar
  serving ``/metrics``, ``/healthz`` and ``/queries`` over HTTP.
* :mod:`repro.server.client` — the thin blocking :class:`Connection`.

See docs/SERVER.md for the protocol spec and semantics.
"""

from repro.server.client import ClientError, ClientResult, Connection, connect
from repro.server.http import ObservabilityServer
from repro.server.plancache import PlanCache
from repro.server.server import QueryServer, ServerThread
from repro.server.session import Session, SessionManager

__all__ = [
    "ClientError",
    "ClientResult",
    "Connection",
    "connect",
    "ObservabilityServer",
    "PlanCache",
    "QueryServer",
    "ServerThread",
    "Session",
    "SessionManager",
]
