"""The observability sidecar: a tiny stdlib HTTP server.

:class:`ObservabilityServer` exposes three read-only endpoints next to
the query server's JSON-lines TCP port:

``GET /metrics``
    The telemetry registry in the Prometheus text exposition format
    (``text/plain; version=0.0.4``) — exactly
    :meth:`~repro.api.Database.metrics_text`.  Empty body when the
    served Database has telemetry off.
``GET /healthz``
    A small JSON liveness document: ``status``, ``version`` (the repro
    package version), ``uptime_seconds`` since the sidecar started,
    ``sessions`` (open server sessions), ``running`` (queries currently
    executing), and ``queries_total`` (statements recorded by telemetry
    since startup, 0 when telemetry is off).
``GET /queries``
    The live-progress registry as JSON — one object per in-flight query
    with rows processed, current operator, memory accounting, and the
    per-operator estimated-vs-actual breakdown.  The HTTP shape of the
    ``repro_running_queries`` / ``repro_query_progress`` system tables.

Every handler reads lock-free snapshots (the progress registry is
single-writer per query, the metrics registry locks internally), so a
scrape never blocks a statement and a statement never blocks a scrape.
The server is a ``ThreadingHTTPServer`` on a daemon thread: scrapes
overlap, and an abandoned sidecar cannot keep the process alive.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

__all__ = ["ObservabilityServer", "PROMETHEUS_CONTENT_TYPE"]

#: The content type Prometheus expects from a text-format scrape.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ObservabilityServer:
    """Serve ``/metrics``, ``/healthz`` and ``/queries`` for one Database.

    Started by :class:`~repro.server.server.QueryServer` when
    ``http_port`` is given; usable standalone around a bare Database
    (``manager`` may be None, in which case ``sessions`` reports 0).
    """

    def __init__(
        self,
        db,
        manager=None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.db = db
        self.manager = manager
        self.host = host
        self.port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_monotonic: Optional[float] = None

    # -- endpoint bodies ---------------------------------------------------

    def metrics_body(self) -> str:
        return self.db.metrics_text()

    def healthz_body(self) -> dict:
        from repro import __version__

        sessions = 0 if self.manager is None else len(self.manager.sessions())
        uptime = 0.0
        if self._started_monotonic is not None:
            uptime = time.monotonic() - self._started_monotonic
        telemetry = self.db.telemetry
        queries_total = (
            0 if telemetry is None else telemetry.queries_total.total()
        )
        return {
            "status": "ok",
            "version": __version__,
            "uptime_seconds": round(uptime, 3),
            "sessions": sessions,
            "running": len(self.db.running),
            "queries_total": queries_total,
        }

    def queries_body(self) -> dict:
        return {"queries": self.db.running_queries()}

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ObservabilityServer":
        """Bind and serve on a daemon thread; resolves ``port`` 0."""
        sidecar = self

        class Handler(BaseHTTPRequestHandler):
            # One scrape per log line is noise, not observability.
            def log_message(self, *args) -> None:  # pragma: no cover
                pass

            def do_GET(self) -> None:
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        body = sidecar.metrics_body().encode("utf-8")
                        ctype = PROMETHEUS_CONTENT_TYPE
                    elif path == "/healthz":
                        body = _json_bytes(sidecar.healthz_body())
                        ctype = "application/json"
                    elif path == "/queries":
                        body = _json_bytes(sidecar.queries_body())
                        ctype = "application/json"
                    else:
                        body = _json_bytes({"error": f"no such path {path}"})
                        self.send_response(404)
                        self.send_header("Content-Type", "application/json")
                        self.send_header("Content-Length", str(len(body)))
                        self.end_headers()
                        self.wfile.write(body)
                        return
                except Exception as exc:  # a broken provider answers 500
                    body = _json_bytes({"error": str(exc)})
                    self.send_response(500)
                    self.send_header("Content-Type", "application/json")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self._httpd.daemon_threads = True
        self._started_monotonic = time.monotonic()
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-observability",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "ObservabilityServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def _json_bytes(obj: dict) -> bytes:
    return json.dumps(obj, sort_keys=True, default=str).encode("utf-8")
