"""Sessions: per-client execution contexts over one shared Database.

A :class:`SessionManager` owns the shared pieces — the Database, the
:class:`~repro.server.plancache.PlanCache`, and the ``repro_sessions`` /
``repro_plan_cache`` system tables — and hands out :class:`Session`
objects, one per connected client.  Sessions are the concurrency
boundary:

* Every statement runs under the Database's single-writer/many-reader
  lock (``Database.rwlock``).  Queries take the read side, so any number
  of sessions read concurrently; DDL/DML/EXPLAIN take the write side and
  run exclusively.
* Within a statement, scans snapshot each table's rows at first touch
  (:class:`~repro.engine.evaluator.ExecutionContext`), so a self-join
  sees one consistent state even of a table the statement itself is not
  allowed to change.
* Queries go through the shared plan cache: the canonical SQL text is
  the key, a hit replays the stored plan with fresh parameters, and a
  miss plans cold and populates the cache.  Writes invalidate affected
  entries before the write lock is released, and detected plan flips
  evict every cached variant of the flipped fingerprint.

Sessions can be used directly (the benchmark does) or through the
asyncio server in :mod:`repro.server.server`.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from datetime import datetime, timezone
from typing import Any, Optional, Sequence

from repro.catalog import MaterializedView
from repro.errors import SqlError
from repro.result import Result
from repro.server.plancache import PlanCache
from repro.sql import ast, parse_statement
from repro.telemetry import statement_kind

__all__ = ["Session", "SessionManager"]


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


#: Statements that mutate one named table (DML); invalidation targets the
#: table plus every summary whose source chain includes it.
_DML_TYPES = (ast.Insert, ast.Update, ast.Delete, ast.Truncate)

#: Statements that change the catalog itself; the whole plan cache goes.
_DDL_TYPES = (
    ast.CreateTable,
    ast.CreateTableAs,
    ast.CreateView,
    ast.CreateMaterializedView,
    ast.DropObject,
)


class Session:
    """One client's execution context.

    Not thread-safe for concurrent *statements* — the server runs each
    connection's operations in order — but :meth:`cancel` and the system
    table reads may be called from any thread at any time.
    """

    def __init__(self, manager: "SessionManager", session_id: str, label: str = ""):
        self.manager = manager
        self.db = manager.db
        self.id = session_id
        self.label = label
        self.created = _utc_now()
        self.closed = False
        self.statements = 0
        #: Set by cancel(); the executor checks it at operator boundaries.
        self.cancel_event = threading.Event()
        self._prepared: dict = {}
        self._prepared_seq = itertools.count(1)

    # -- statement entry points ------------------------------------------

    def execute(
        self,
        sql: str,
        params: Sequence[Any] = (),
        *,
        traceparent: Optional[str] = None,
    ) -> Result:
        """Parse and run one statement in this session.

        ``traceparent`` (a W3C Trace Context header value) scopes the
        statement to the caller's distributed trace: captured spans adopt
        its trace id and the telemetry events carry it.
        """
        with self._statement_scope(sql, traceparent):
            statement = self._parse(sql)
            return self._run(statement, sql, params)

    def prepare(self, sql: str) -> str:
        """Parse (and for queries, plan) ``sql``; returns a handle.

        The plan lands in the shared cache keyed by its canonical text —
        preparing is priming the cache plus pinning the parse.  If the
        cache later drops the plan (DDL, eviction), execution transparently
        replans; the handle never dangles.
        """
        with self._statement_scope(sql):
            statement = self._parse(sql)
            if isinstance(statement, ast.QueryStatement) and not isinstance(
                statement.query, ast.ShowStats
            ):
                with self.db.rwlock.read():
                    self._plan_for(statement)
            handle = f"{self.id}_p{next(self._prepared_seq)}"
            self._prepared[handle] = (sql, statement)
            return handle

    def execute_prepared(
        self,
        handle: str,
        params: Sequence[Any] = (),
        *,
        traceparent: Optional[str] = None,
    ) -> Result:
        """Run a prepared statement, binding ``params`` to its ``?``s."""
        try:
            sql, statement = self._prepared[handle]
        except KeyError:
            raise SqlError(f"unknown prepared statement {handle!r}") from None
        with self._statement_scope(sql, traceparent):
            return self._run(statement, sql, params)

    def deallocate(self, handle: str) -> None:
        self._prepared.pop(handle, None)

    def _plan_for(self, statement: ast.QueryStatement) -> None:
        """Prime the shared cache with this statement's plan (a prepare)."""
        from repro.sql.printer import to_sql

        key = to_sql(statement)
        if self.manager.plan_cache.get(key) is None:
            planned = self.db.plan_query(statement.query, sql=key)
            self.manager.plan_cache.put(planned)

    def cancel(self) -> None:
        """Abort the statement currently executing in this session (if
        any) at its next operator boundary."""
        self.cancel_event.set()

    def close(self) -> None:
        self.manager.close_session(self)

    @property
    def prepared_count(self) -> int:
        return len(self._prepared)

    # -- internals --------------------------------------------------------

    @contextmanager
    def _statement_scope(self, sql: str, traceparent: Optional[str] = None):
        """Per-statement bookkeeping: liveness check, cancel-flag reset,
        and the telemetry session label and trace context (ContextVars,
        so they follow this statement across threads)."""
        if self.closed:
            raise SqlError(f"session {self.id} is closed")
        self.statements += 1
        # A cancel targets the in-flight statement; one arriving between
        # statements is deliberately dropped here.
        self.cancel_event.clear()
        from repro.telemetry import current_session, current_traceparent

        token = current_session.set(self.id)
        trace_token = current_traceparent.set(traceparent or "")
        try:
            yield
        finally:
            current_traceparent.reset(trace_token)
            current_session.reset(token)

    def _parse(self, sql: str) -> ast.Statement:
        try:
            return parse_statement(sql)
        except SqlError as exc:
            if self.db.telemetry is not None:
                self.db.telemetry.record_error(exc, sql=sql)
            if self.db.recorder is not None:
                # Parse failures are part of the workload: replaying the
                # journal must reproduce them as errors, not skip them.
                self.db.recorder.record(sql=sql, error=exc)
            raise

    def _run(
        self, statement: ast.Statement, sql: str, params: Sequence[Any]
    ) -> Result:
        if isinstance(statement, ast.QueryStatement):
            return self._run_read(statement, sql, params)
        return self._run_write(statement, sql, params)

    def _run_read(
        self,
        statement: ast.QueryStatement,
        sql: str,
        params: Sequence[Any],
    ) -> Result:
        db = self.db
        manager = self.manager
        with db.rwlock.read():
            if isinstance(statement.query, ast.ShowStats):
                # Answered from the registry; no plan, nothing to cache.
                if db.telemetry is not None:
                    return db._run_traced_statement(statement, params, sql=sql)
                return db._execute_plain(statement, params)
            manager.sync_plan_flips()
            from repro.sql.printer import to_sql

            key = to_sql(statement)
            planned = manager.plan_cache.get(key)
            cached = planned is not None
            telemetry = db.telemetry
            recorder = db.recorder
            if telemetry is not None:
                if cached:
                    telemetry.plan_cache_hits_total.inc()
                else:
                    telemetry.plan_cache_misses_total.inc()
            start = time.perf_counter()
            try:
                if planned is None:
                    planned = db.plan_query(statement.query, sql=key)
                    manager.plan_cache.put(planned)
                profiler = None
                if telemetry is not None:
                    from repro.profile import Profiler

                    profiler = Profiler()
                result, profile = db.execute_planned(
                    planned,
                    params,
                    cancel_event=self.cancel_event,
                    profiler=profiler,
                )
            except SqlError as exc:
                if telemetry is not None:
                    from repro.errors import ResourceExhausted

                    if isinstance(exc, ResourceExhausted):
                        # Freeze the partial profile into the slow-query
                        # log before the statement unwinds: a budget
                        # breach is precisely when the operator breakdown
                        # matters and the query will never finish it.
                        telemetry.record_resource_exhausted(
                            exc, sql=key, profiler=profiler
                        )
                    fp = norm = None
                    if planned is not None:
                        fp, norm = planned.fingerprint, planned.normalized
                    telemetry.record_error(
                        exc, sql=key, fingerprint=fp, query_text=norm
                    )
                if recorder is not None:
                    recorder.record(
                        sql=key,
                        params=params,
                        fingerprint=(
                            planned.fingerprint if planned is not None else None
                        ),
                        strategy=(
                            planned.strategy if planned is not None else None
                        ),
                        kind=statement_kind(statement),
                        wall_ms=(time.perf_counter() - start) * 1000.0,
                        error=exc,
                    )
                raise
            if recorder is not None:
                recorder.record(
                    sql=key,
                    params=params,
                    fingerprint=planned.fingerprint,
                    strategy=planned.strategy,
                    kind=statement_kind(statement),
                    wall_ms=(time.perf_counter() - start) * 1000.0,
                    result=result,
                )
            if telemetry is not None:
                from repro.introspect import is_introspection_plan

                telemetry.record_query(
                    statement_kind(statement),
                    profile,
                    rows=len(result.rows),
                    sql=key,
                    # A cache hit never re-ran the rewriter; replaying the
                    # cold run's reports would double-count summary hits.
                    reports=() if cached else planned.reports,
                    fingerprint=planned.fingerprint,
                    query_text=planned.normalized,
                    plan_shape=planned.plan_shape,
                    strategy=planned.strategy,
                    introspection=is_introspection_plan(planned.plan),
                )
                # If that observation flipped the plan, evict the
                # fingerprint's cached variants before anyone replays them.
                manager.sync_plan_flips()
            return result

    def _run_write(
        self, statement: ast.Statement, sql: str, params: Sequence[Any]
    ) -> Result:
        db = self.db
        with db.rwlock.write():
            if db.telemetry is not None:
                result = db._run_traced_statement(statement, params, sql=sql)
            else:
                result = db._execute_plain(statement, params)
            # Invalidate while still exclusive: no reader can replay a
            # stale plan between the mutation and the eviction.
            self.manager.invalidate_for(statement)
            return result


class SessionManager:
    """Shared session state for one Database: the session registry, the
    plan cache, and the server-side system tables."""

    def __init__(self, db, *, plan_cache_capacity: int = 128):
        self.db = db
        self._lock = threading.Lock()
        self._sessions: dict = {}
        self._session_seq = itertools.count(1)
        #: Last plan-flip seq already translated into cache evictions.
        self._flip_seq = 0

        def on_evict(reason: str, count: int) -> None:
            if db.telemetry is not None:
                db.telemetry.plan_cache_evictions_total.inc(
                    count, reason=reason
                )

        self.plan_cache = PlanCache(plan_cache_capacity, on_evict=on_evict)
        self._install_system_tables()

    # -- session lifecycle -------------------------------------------------

    def open_session(self, label: str = "") -> Session:
        with self._lock:
            session = Session(self, f"s{next(self._session_seq)}", label)
            self._sessions[session.id] = session
        if self.db.telemetry is not None:
            self.db.telemetry.sessions_opened_total.inc()
            self.db.telemetry.events.record(
                "session_open", session=session.id, label=label or None
            )
        return session

    def close_session(self, session: Session) -> None:
        with self._lock:
            live = self._sessions.pop(session.id, None)
        if live is None or session.closed:
            return
        session.closed = True
        session.cancel_event.set()
        session._prepared.clear()
        if self.db.telemetry is not None:
            self.db.telemetry.sessions_closed_total.inc()
            self.db.telemetry.events.record(
                "session_close",
                session=session.id,
                statements=session.statements,
            )

    def get(self, session_id: str) -> Optional[Session]:
        with self._lock:
            return self._sessions.get(session_id)

    def sessions(self) -> list:
        with self._lock:
            return list(self._sessions.values())

    def close_all(self) -> None:
        for session in self.sessions():
            self.close_session(session)

    # -- plan-cache maintenance -------------------------------------------

    def sync_plan_flips(self) -> None:
        """Translate newly detected plan flips into cache evictions.

        Any session (or direct Database use) may record a flip; whichever
        session next looks at the cache applies the pending evictions.
        The watermark is the store's monotonic flip seq, which survives
        ``reset_stats()``, so a reset never replays or skips evictions.
        """
        telemetry = self.db.telemetry
        if telemetry is None:
            return
        flips = telemetry.statements.flips()
        with self._lock:
            fresh = [f for f in flips if f.seq > self._flip_seq]
            if fresh:
                self._flip_seq = max(f.seq for f in fresh)
        for flip in fresh:
            self.plan_cache.evict_fingerprint(flip.fingerprint, "flip")

    def invalidate_for(self, statement: ast.Statement) -> None:
        """Evict plans a just-executed write statement may have staled."""
        cache = self.plan_cache
        if isinstance(statement, _DML_TYPES):
            table = statement.table
            # Summaries over the table are stale-marked (or incrementally
            # merged) by maintenance; either way, a cached plan that reads
            # the summary — or one that was rejected because of it — must
            # be re-decided.
            names = {table.lower()}
            names.update(
                v.name.lower()
                for v in self.db.catalog.materialized_views_depending_on(table)
            )
            cache.invalidate_relations(names, "dml")
        elif isinstance(statement, ast.RefreshMaterializedView):
            names = {statement.name.lower()}
            obj = self.db.catalog.get(statement.name)
            if isinstance(obj, MaterializedView):
                names.update(obj.definition.depends_on)
            cache.invalidate_relations(names, "refresh")
        elif isinstance(statement, _DDL_TYPES):
            cache.invalidate_all("ddl")

    # -- system tables -----------------------------------------------------

    def _install_system_tables(self) -> None:
        from repro.catalog.objects import SystemTable
        from repro.catalog.schema import Column, TableSchema
        from repro.types import INTEGER, VARCHAR

        def _schema(*columns):
            return TableSchema([Column(n, t) for n, t in columns])

        def sessions_rows() -> list:
            return [
                (
                    s.id,
                    s.label or None,
                    s.created,
                    s.statements,
                    s.prepared_count,
                )
                for s in self.sessions()
            ]

        register = self.db.catalog.register_system_table
        register(
            SystemTable(
                "repro_sessions",
                _schema(
                    ("session_id", VARCHAR),
                    ("label", VARCHAR),
                    ("created", VARCHAR),
                    ("statements", INTEGER),
                    ("prepared", INTEGER),
                ),
                sessions_rows,
                comment="open server sessions",
            )
        )
        register(
            SystemTable(
                "repro_plan_cache",
                _schema(
                    ("fingerprint", VARCHAR),
                    ("query", VARCHAR),
                    ("strategy", VARCHAR),
                    ("hits", INTEGER),
                    ("relation_count", INTEGER),
                    ("relations", VARCHAR),
                ),
                self.plan_cache.rows,
                comment="cached prepared plans, least recently used first",
            )
        )
