"""A thin blocking client for the query server.

:class:`Connection` wraps one TCP connection / one server session.  It is
synchronous and request/response — exactly one statement in flight — with
one deliberate exception: :meth:`cancel` may be called from *another
thread* while a statement blocks, which is the whole point of cancel.
Its response is matched by id like any other, so the two threads never
fight over partial reads.

>>> conn = connect("127.0.0.1", 7878)      # doctest: +SKIP
>>> conn.query("SELECT 1 AS x").rows       # doctest: +SKIP
[[1]]
"""

from __future__ import annotations

import itertools
import socket
import threading
from typing import Any, Optional, Sequence

from repro.server.protocol import dumps_line, loads_line

__all__ = ["ClientError", "ClientResult", "Connection", "connect"]


class ClientError(Exception):
    """A server-reported failure; ``error_class`` names the server-side
    exception type (``BindError``, ``QueryCancelled``, ...)."""

    def __init__(self, error_class: str, message: str):
        super().__init__(f"{error_class}: {message}")
        self.error_class = error_class
        self.message = message


class ClientResult:
    """One statement's decoded result payload."""

    def __init__(self, payload: dict):
        self.payload = payload
        self.columns = [c["name"] for c in payload.get("columns", [])]
        self.column_types = [c["type"] for c in payload.get("columns", [])]
        self.rows = payload.get("rows", [])
        self.rowcount = payload.get("rowcount", 0)
        self.message = payload.get("message", "")

    def scalar(self) -> Any:
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


class Connection:
    """One session against a running query server."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = 30.0,
        traceparent: Optional[str] = None,
    ):
        #: W3C Trace Context header attached to every query/execute sent
        #: on this connection (per-call traceparent arguments override it).
        self.traceparent = traceparent
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._write_lock = threading.Lock()
        self._read_lock = threading.Lock()
        self._ids = itertools.count(1)
        #: Responses read while waiting for a different id (cancel replies
        #: landing on the statement thread, mostly).
        self._stash: dict = {}
        #: Ids whose responses nobody will wait for (fire-and-forget
        #: cancels); dropped on arrival instead of stashed forever.
        self._discard: set = set()
        self._closed = False
        greeting = self._read_message()
        if greeting.get("event") != "hello":
            raise ClientError("ProtocolError", "expected hello greeting")
        self.session_id = greeting.get("session")
        self.server_version = greeting.get("version")

    # -- public operations -------------------------------------------------

    def query(
        self,
        sql: str,
        params: Sequence[Any] = (),
        *,
        traceparent: Optional[str] = None,
    ) -> ClientResult:
        """Run one SQL statement; returns its result."""
        request = {"op": "query", "sql": sql, "params": list(params)}
        self._attach_traceparent(request, traceparent)
        return ClientResult(self._roundtrip(request))

    def prepare(self, sql: str) -> str:
        """Prepare a statement server-side; returns its handle."""
        return self._roundtrip({"op": "prepare", "sql": sql})["handle"]

    def execute(
        self,
        handle: str,
        params: Sequence[Any] = (),
        *,
        traceparent: Optional[str] = None,
    ) -> ClientResult:
        """Run a prepared statement with bound parameters."""
        request = {"op": "execute", "handle": handle, "params": list(params)}
        self._attach_traceparent(request, traceparent)
        return ClientResult(self._roundtrip(request))

    def _attach_traceparent(
        self, request: dict, traceparent: Optional[str]
    ) -> None:
        value = traceparent if traceparent is not None else self.traceparent
        if value:
            request["traceparent"] = value

    def cancel(self, *, wait: bool = False) -> None:
        """Abort the in-flight statement.

        Fire-and-forget by default so it can be issued from a second
        thread while the first blocks in :meth:`query`; pass ``wait=True``
        only when no statement is in flight.
        """
        op_id = next(self._ids)
        if not wait:
            self._discard.add(op_id)
        self._send({"op": "cancel", "id": op_id})
        if wait:
            self._wait_for(op_id)

    def close(self) -> None:
        """Close the session and the socket."""
        if self._closed:
            return
        try:
            self._roundtrip({"op": "close"})
        except (OSError, ClientError):
            pass
        finally:
            self._closed = True
            try:
                self._file.close()
            finally:
                self._sock.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- wire plumbing -----------------------------------------------------

    def _send(self, message: dict) -> None:
        if self._closed:
            raise ClientError("ConnectionClosed", "connection is closed")
        with self._write_lock:
            self._sock.sendall(dumps_line(message))

    def _read_message(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ClientError("ConnectionClosed", "server closed the connection")
        return loads_line(line)

    def _wait_for(self, op_id: int) -> dict:
        """Read responses until ``op_id``'s arrives; stash the others."""
        with self._read_lock:
            while True:
                if op_id in self._stash:
                    return self._stash.pop(op_id)
                message = self._read_message()
                got = message.get("id")
                if got == op_id:
                    return message
                if got in self._discard:
                    self._discard.remove(got)
                    continue
                if got is not None:
                    self._stash[got] = message

    def _roundtrip(self, request: dict) -> dict:
        op_id = next(self._ids)
        request["id"] = op_id
        self._send(request)
        response = self._wait_for(op_id)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ClientError(
                error.get("class", "ServerError"),
                error.get("message", "unknown server error"),
            )
        return response.get("result") or {}


def connect(host: str = "127.0.0.1", port: int = 7878, **kwargs) -> Connection:
    """Open a connection / session to a running query server."""
    return Connection(host, port, **kwargs)
