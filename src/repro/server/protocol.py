"""The wire protocol: newline-delimited JSON over a byte stream.

One request per line, one response per line, matched by the client-chosen
``id``.  Requests are objects with an ``op`` plus op-specific fields:

``{"op": "query",   "id": 1, "sql": "...", "params": [...]}``
    Parse and run one statement; responds with a result payload.
``{"op": "prepare", "id": 2, "sql": "..."}``
    Parse (and plan) a statement; responds with ``{"handle": "s1_p1"}``.
``{"op": "execute", "id": 3, "handle": "s1_p1", "params": [...]}``
    Run a prepared statement with bound parameters.

``query`` and ``execute`` accept an optional ``"traceparent"`` field
carrying a W3C Trace Context header value
(``00-<32 hex trace id>-<16 hex span id>-<2 hex flags>``).  The server
scopes the statement to that distributed trace: captured spans adopt the
caller's trace id and telemetry events carry the header.  Malformed
values are ignored, and servers predating the field ignore it entirely —
the addition is backward compatible, so the protocol version stays 1.
``{"op": "cancel",  "id": 4}``
    Abort the session's in-flight statement, if any.  Handled out of
    band — it does not queue behind the statement it is cancelling.
``{"op": "close",   "id": 5}``
    Close the session; the server responds and then drops the
    connection.

Responses are ``{"id": n, "ok": true, "result": {...}}`` or
``{"id": n, "ok": false, "error": {"class": "...", "message": "..."}}``.
On connect the server first sends a greeting event (no ``id``):
``{"event": "hello", "session": "s1", "server": "repro", "version": 1}``.

Result payloads carry ``columns`` (name/type pairs), ``rows``,
``rowcount``, and ``message``.  Row values are encoded canonically —
dates as ISO strings, Decimals as strings — by :func:`encode_value`, and
objects are serialized with sorted keys, so two runs of the same query
produce byte-identical response lines.  The smoke test leans on exactly
that property.
"""

from __future__ import annotations

import datetime
import decimal
import json
from typing import Any, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "encode_value",
    "encode_result",
    "error_payload",
    "dumps_line",
    "loads_line",
]

PROTOCOL_VERSION = 1

#: Upper bound on one request/response line.  Generous — result sets here
#: are paper listings, not dumps — but bounded, so a corrupt client
#: cannot balloon server memory.
MAX_LINE_BYTES = 16 * 1024 * 1024


def encode_value(value: Any) -> Any:
    """A JSON-safe, canonical encoding of one result cell."""
    if isinstance(value, datetime.datetime):
        return value.isoformat(sep=" ")
    if isinstance(value, datetime.date):
        return value.isoformat()
    if isinstance(value, decimal.Decimal):
        return str(value)
    return value


def encode_result(result: Any) -> dict:
    """The response payload for a :class:`~repro.result.Result`."""
    return {
        "columns": [
            {"name": c.name, "type": str(c.dtype)} for c in result.columns
        ],
        "rows": [[encode_value(v) for v in row] for row in result.rows],
        "rowcount": result.rowcount,
        "message": result.message,
    }


def error_payload(exc: BaseException) -> dict:
    return {"class": type(exc).__name__, "message": str(exc)}


def dumps_line(obj: dict) -> bytes:
    """Serialize one protocol message to a newline-terminated byte line.

    Sorted keys and compact separators make the encoding canonical:
    identical payloads are identical bytes.
    """
    return (
        json.dumps(obj, sort_keys=True, separators=(",", ":"), default=str)
        + "\n"
    ).encode("utf-8")


def loads_line(line: bytes) -> dict:
    message = json.loads(line.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError("protocol messages must be JSON objects")
    return message
