"""The asyncio query server.

One :class:`QueryServer` accepts any number of TCP connections, opens a
:class:`~repro.server.session.Session` per connection, and speaks the
newline-delimited JSON protocol of :mod:`repro.server.protocol`.

Concurrency model: the event loop only shuffles bytes.  Each connection
has a worker task that takes that connection's operations off a queue
*in order* and runs each statement in a thread
(``asyncio.to_thread``), so statements from different connections
overlap — readers genuinely run in parallel under the Database's read
lock — while one connection's statements never reorder.  ``cancel`` is
the exception: the reader loop handles it the moment it arrives, setting
the session's cancel flag so the in-flight statement aborts at its next
operator boundary instead of queueing behind itself.

:class:`ServerThread` hosts a server on a background thread for tests,
benchmarks, and the shell's ``\\connect``; ``python -m repro.server``
serves a fresh telemetry-enabled Database from the command line.
"""

from __future__ import annotations

import asyncio
import functools
import threading
from typing import Optional

from repro.server.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    dumps_line,
    encode_result,
    error_payload,
    loads_line,
)
from repro.server.session import Session, SessionManager

__all__ = ["QueryServer", "ServerThread", "main"]


class QueryServer:
    """Serve one Database to many newline-delimited-JSON clients."""

    def __init__(
        self,
        db,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        plan_cache_capacity: int = 128,
        manager: Optional[SessionManager] = None,
        http_port: Optional[int] = None,
    ):
        self.db = db
        self.host = host
        self.port = port
        self.manager = manager or SessionManager(
            db, plan_cache_capacity=plan_cache_capacity
        )
        self._server: Optional[asyncio.AbstractServer] = None
        #: Observability sidecar port: None disables it, 0 picks a free
        #: port (resolved on start(), like ``port``).
        self.http_port = http_port
        self._http = None

    async def start(self) -> "QueryServer":
        """Bind and start accepting connections; resolves ``port`` 0."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.http_port is not None:
            from repro.server.http import ObservabilityServer

            self._http = ObservabilityServer(
                self.db, self.manager, host=self.host, port=self.http_port
            )
            self._http.start()
            self.http_port = self._http.port
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting connections and close every session."""
        if self._http is not None:
            self._http.stop()
            self._http = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.manager.close_all()

    # -- per-connection machinery -----------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        peer = writer.get_extra_info("peername")
        session = self.manager.open_session(
            label="" if peer is None else f"{peer[0]}:{peer[1]}"
        )
        write_lock = asyncio.Lock()

        async def send(message: dict) -> None:
            async with write_lock:
                writer.write(dumps_line(message))
                await writer.drain()

        queue: "asyncio.Queue" = asyncio.Queue()

        async def worker() -> None:
            while True:
                msg = await queue.get()
                if msg is None:
                    return
                try:
                    keep_going = await self._run_op(session, msg, send)
                except ConnectionError:
                    return
                if not keep_going:
                    return

        worker_task = asyncio.create_task(worker())
        saw_close = False
        try:
            await send(
                {
                    "event": "hello",
                    "session": session.id,
                    "server": "repro",
                    "version": PROTOCOL_VERSION,
                }
            )
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await send(_protocol_error(None, "request line too long"))
                    break
                except ConnectionError:
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    msg = loads_line(line)
                except ValueError as exc:
                    await send(_protocol_error(None, f"bad request: {exc}"))
                    continue
                if msg.get("op") == "cancel":
                    # Out of band by design: a cancel must not wait in
                    # line behind the statement it is cancelling.
                    session.cancel()
                    await send(
                        {
                            "id": msg.get("id"),
                            "ok": True,
                            "result": {"cancelled": True},
                        }
                    )
                    continue
                await queue.put(msg)
                if msg.get("op") == "close":
                    saw_close = True
                    break
        except ConnectionError:
            pass
        finally:
            if not saw_close:
                # Abrupt disconnect: abort the in-flight statement so the
                # worker drains promptly instead of finishing doomed work.
                session.cancel()
            await queue.put(None)
            await worker_task
            self.manager.close_session(session)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _run_op(self, session: Session, msg: dict, send) -> bool:
        """Run one queued operation; False ends the connection worker."""
        op = msg.get("op")
        op_id = msg.get("id")
        try:
            traceparent = msg.get("traceparent")
            if traceparent is not None:
                traceparent = str(traceparent)
            if op == "query":
                result = await asyncio.to_thread(
                    functools.partial(
                        session.execute,
                        str(msg.get("sql", "")),
                        tuple(msg.get("params") or ()),
                        traceparent=traceparent,
                    )
                )
                payload = encode_result(result)
            elif op == "prepare":
                handle = await asyncio.to_thread(
                    session.prepare, str(msg.get("sql", ""))
                )
                payload = {"handle": handle}
            elif op == "execute":
                result = await asyncio.to_thread(
                    functools.partial(
                        session.execute_prepared,
                        str(msg.get("handle", "")),
                        tuple(msg.get("params") or ()),
                        traceparent=traceparent,
                    )
                )
                payload = encode_result(result)
            elif op == "close":
                await send({"id": op_id, "ok": True, "result": {"closed": True}})
                return False
            else:
                await send(_protocol_error(op_id, f"unknown op {op!r}"))
                return True
        except Exception as exc:  # SqlError and engine bugs both answer
            await send({"id": op_id, "ok": False, "error": error_payload(exc)})
            return True
        await send({"id": op_id, "ok": True, "result": payload})
        return True


def _protocol_error(op_id, message: str) -> dict:
    return {
        "id": op_id,
        "ok": False,
        "error": {"class": "ProtocolError", "message": message},
    }


class ServerThread:
    """A :class:`QueryServer` on a background thread.

    The synchronous face of the server, for tests, benchmarks, and the
    shell: ``start()`` returns the bound ``(host, port)``; ``stop()``
    shuts the loop down and joins the thread.  Usable as a context
    manager.
    """

    def __init__(
        self,
        db,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        plan_cache_capacity: int = 128,
        http_port: Optional[int] = None,
    ):
        self._db = db
        self._host = host
        self._port = port
        self._capacity = plan_cache_capacity
        self._http_port = http_port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.server: Optional[QueryServer] = None

    def start(self) -> tuple:
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise RuntimeError("server failed to start within 10s")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        return (self.server.host, self.server.port)

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self.server = QueryServer(
            self._db,
            host=self._host,
            port=self._port,
            plan_cache_capacity=self._capacity,
            http_port=self._http_port,
        )
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.stop())
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def stop(self) -> None:
        if self._loop is not None and not self._loop.is_closed():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)

    @property
    def manager(self) -> Optional[SessionManager]:
        return None if self.server is None else self.server.manager

    @property
    def http_port(self) -> Optional[int]:
        """The observability sidecar's bound port (None when disabled)."""
        return None if self.server is None else self.server.http_port

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def main(argv=None) -> None:
    """``python -m repro.server``: serve a fresh Database over TCP."""
    import argparse

    from repro.api import Database

    parser = argparse.ArgumentParser(
        prog="repro.server",
        description="Serve an in-memory repro database over "
        "newline-delimited JSON.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7878)
    parser.add_argument(
        "--plan-cache",
        type=int,
        default=128,
        metavar="N",
        help="prepared-plan cache capacity (default 128)",
    )
    parser.add_argument(
        "--listings",
        action="store_true",
        help="preload the paper's Customers/Orders tables and setup views",
    )
    parser.add_argument(
        "--http-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /metrics, /healthz and /queries over HTTP on this "
        "port (0 picks a free port; omitted disables the sidecar)",
    )
    parser.add_argument(
        "--record",
        metavar="PATH",
        default=None,
        help="append every executed statement to a replayable journal at "
        "PATH (see python -m repro.history)",
    )
    args = parser.parse_args(argv)

    db = Database(telemetry=True)
    if args.listings:
        from repro.workloads.listings import SETUP
        from repro.workloads.paper_data import load_paper_tables

        load_paper_tables(db)
        for ddl in SETUP.values():
            db.execute(ddl)
    if args.record is not None:
        # Attached after the preload so the journal starts at the served
        # workload; the header's bootstrap field tells replay how to
        # rebuild the pre-recording state.
        from repro.history import JournalWriter

        db.recorder = JournalWriter(
            args.record, bootstrap="listings" if args.listings else None
        )
        print(f"recording workload to {args.record}")

    async def _serve() -> None:
        server = await QueryServer(
            db,
            host=args.host,
            port=args.port,
            plan_cache_capacity=args.plan_cache,
            http_port=args.http_port,
        ).start()
        print(f"repro server listening on {server.host}:{server.port}")
        if server.http_port is not None:
            print(
                f"observability endpoints on "
                f"http://{server.host}:{server.http_port}/metrics"
            )
        try:
            await server.serve_forever()
        finally:
            await server.stop()
            if db.recorder is not None:
                db.recorder.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":  # pragma: no cover
    main()
