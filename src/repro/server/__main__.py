"""``python -m repro.server`` — serve a database over TCP."""

from repro.server.server import main

main()
