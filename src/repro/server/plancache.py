"""The shared prepared-plan cache.

One :class:`PlanCache` serves every session of a
:class:`~repro.server.session.SessionManager`.  Entries are keyed by the
statement's canonical printed SQL — the *exact* query text after the
parser and printer normalize whitespace, comments, and redundant parens —
with the PR 5 statement fingerprint stored alongside as metadata.  The
fingerprint deliberately is NOT the key: it collapses literals to ``?``,
and two queries that differ only in literals can have genuinely different
semantics here (ordinal ``ORDER BY 2`` vs ``ORDER BY 3``, measure
expansions that print-and-reparse constants), so each literal variant
gets its own entry.  The fingerprint groups those variants for plan-flip
eviction and for the ``repro_plan_cache`` system table.

Invalidation reasons (the ``reason`` label on
``plan_cache_evictions_total``):

``lru``
    Capacity eviction of the least-recently-used entry.
``ddl``
    A CREATE/DROP/replace changed the catalog; every entry is dropped.
``dml``
    INSERT/UPDATE/DELETE/TRUNCATE on a table; entries reading that table
    (or any summary depending on it) are dropped.
``refresh``
    REFRESH MATERIALIZED VIEW; entries reading the view or anything in
    its source chain are dropped (a summary hit may now be possible where
    it wasn't, and vice versa).
``flip``
    The flip detector saw this fingerprint's plan change; all of the
    fingerprint's entries are dropped so the next execution replans.
``clear``
    Explicit administrative clear.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Iterable, Optional

from repro.api import PlannedQuery

__all__ = ["PlanCache"]


class _Entry:
    __slots__ = ("planned", "hits")

    def __init__(self, planned: PlannedQuery):
        self.planned = planned
        self.hits = 0


class PlanCache:
    """An LRU cache of :class:`~repro.api.PlannedQuery` keyed by SQL text.

    Thread-safe: sessions on different connections hit and invalidate it
    concurrently.  ``on_evict(reason, count)`` is called (outside the
    lock) whenever entries leave the cache, which is how eviction counts
    reach telemetry without the cache importing it.
    """

    def __init__(
        self,
        capacity: int = 128,
        *,
        on_evict: Optional[Callable[[str, int], None]] = None,
    ):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._on_evict = on_evict
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _notify(self, reason: str, count: int) -> None:
        if count and self._on_evict is not None:
            self._on_evict(reason, count)

    def get(self, sql: str) -> Optional[PlannedQuery]:
        """The cached plan for ``sql``, or None; a hit refreshes recency."""
        with self._lock:
            entry = self._entries.get(sql)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(sql)
            entry.hits += 1
            self.hits += 1
            return entry.planned

    def put(self, planned: PlannedQuery) -> None:
        """Insert ``planned`` (keyed by its canonical SQL), evicting LRU
        entries to stay within capacity."""
        evicted = 0
        with self._lock:
            self._entries[planned.sql] = _Entry(planned)
            self._entries.move_to_end(planned.sql)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
        self._notify("lru", evicted)

    def invalidate_all(self, reason: str = "ddl") -> int:
        """Drop every entry (catalog changed under us)."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
        self._notify(reason, count)
        return count

    def invalidate_relations(
        self, relations: Iterable[str], reason: str
    ) -> int:
        """Drop entries whose dependency set intersects ``relations``."""
        targets = {name.lower() for name in relations}
        with self._lock:
            doomed = [
                sql
                for sql, entry in self._entries.items()
                if entry.planned.relations & targets
            ]
            for sql in doomed:
                del self._entries[sql]
        self._notify(reason, len(doomed))
        return len(doomed)

    def evict_fingerprint(self, fingerprint: str, reason: str = "flip") -> int:
        """Drop every entry of one statement fingerprint (plan flipped)."""
        with self._lock:
            doomed = [
                sql
                for sql, entry in self._entries.items()
                if entry.planned.fingerprint == fingerprint
            ]
            for sql in doomed:
                del self._entries[sql]
        self._notify(reason, len(doomed))
        return len(doomed)

    def rows(self) -> list:
        """Rows for the ``repro_plan_cache`` system table, LRU-first."""
        with self._lock:
            return [
                (
                    entry.planned.fingerprint,
                    sql,
                    entry.planned.strategy,
                    entry.hits,
                    len(entry.planned.relations),
                    ",".join(sorted(entry.planned.relations)),
                )
                for sql, entry in self._entries.items()
            ]

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
            }
