"""Lock-discipline checker for the concurrent server layer.

``python -m repro.analysis --lock-check`` parses (Python ``ast``, no
imports, no execution) every module in ``repro/server/`` and
``repro/introspect/`` and flags accesses to shared Database state that are
not lexically inside a ``with <...>.rwlock.read():`` or
``with <...>.rwlock.write():`` block.

The discipline being enforced (see :mod:`repro.server.session`): every
statement against a shared Database runs under its single-writer /
many-reader lock.  Code in the server layer that reaches into the Database
— the catalog, or any of the execute/plan entry points — outside such a
scope is a data race with concurrent DDL unless its caller provably holds
the lock.  Those proven cases go in :data:`ALLOWLIST`, each with a
one-line justification that the checker prints on request.

Scope rules:

* A ``with`` block guards only its lexical body.  A nested ``def`` inside
  the block is *not* guarded — the closure runs later, when the lock is
  long released — so the checker resets the lock context at every
  function boundary.
* Receiver matching is syntactic: an access counts when the guarded
  member is read off a ``db`` name or a ``.db`` attribute chain
  (``db.catalog``, ``self.db.plan_query``, ``manager.db.execute``...).
  Aliasing through a differently-named local defeats the checker; the
  server code deliberately keeps Database references named ``db``.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass

__all__ = [
    "GUARDED_MEMBERS",
    "ALLOWLIST",
    "LockFinding",
    "check_file",
    "run_lock_check",
]

#: Database members whose access touches shared mutable state and must be
#: covered by the rwlock (telemetry and plan_cache carry their own locks
#: and are deliberately absent).
GUARDED_MEMBERS = frozenset(
    [
        "catalog",
        "execute",
        "execute_script",
        "execute_planned",
        "plan_query",
        "lint",
        "_execute_statement",
        "_execute_plain",
        "_run_traced_statement",
        "create_table_from_rows",
    ]
)

#: ``<path relative to repro/>::<dotted function>`` -> justification.
#: An entry covers the function and everything lexically nested in it.
ALLOWLIST: dict[str, str] = {
    "server/session.py::Session._plan_for": (
        "only called from prepare(), inside its rwlock.read() scope"
    ),
    "server/session.py::SessionManager.invalidate_for": (
        "only called from _run_write(), inside its rwlock.write() scope"
    ),
    "server/session.py::SessionManager._install_system_tables": (
        "runs in the SessionManager constructor, before the manager is "
        "shared with any session"
    ),
    "server/server.py::main": (
        "preloads tables at startup, before the server accepts clients"
    ),
    "introspect/tables.py::install_system_tables": (
        "registration runs in the Database constructor; the provider "
        "closures run inside table scans, under the statement's lock"
    ),
}


@dataclass(frozen=True)
class LockFinding:
    """One unguarded access to shared Database state."""

    path: str  # relative to the repro package root
    line: int
    column: int
    function: str
    member: str

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column}: unguarded access to "
            f"db.{self.member} in {self.function}() — wrap in "
            f"'with db.rwlock.read()/write()' or allowlist with a "
            f"justification"
        )


def _is_rwlock_scope(expr: ast.expr) -> bool:
    """``<anything>.rwlock.read()`` / ``.write()`` as a with-item."""
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in ("read", "write")
        and isinstance(expr.func.value, ast.Attribute)
        and expr.func.value.attr == "rwlock"
    )


def _is_db_receiver(expr: ast.expr) -> bool:
    """The receiver is a ``db`` name or ends in a ``.db`` attribute."""
    if isinstance(expr, ast.Name):
        return expr.id == "db"
    return isinstance(expr, ast.Attribute) and expr.attr == "db"


class _Visitor(ast.NodeVisitor):
    def __init__(self, rel_path: str) -> None:
        self.rel_path = rel_path
        self.stack: list[str] = []
        self.lock_depth = 0
        self.findings: list[LockFinding] = []

    def _qualname(self) -> str:
        return ".".join(self.stack) or "<module>"

    def _allowlisted(self) -> bool:
        qual = self._qualname()
        for entry in ALLOWLIST:
            path, _, func = entry.partition("::")
            if path != self.rel_path:
                continue
            if qual == func or qual.startswith(func + "."):
                return True
        return False

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    def _visit_function(self, node) -> None:
        # A closure body runs when called, not where defined: whatever lock
        # was held around the def does not guard it.
        self.stack.append(node.name)
        saved, self.lock_depth = self.lock_depth, 0
        self.generic_visit(node)
        self.lock_depth = saved
        self.stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _visit_with(self, node) -> None:
        locked = any(_is_rwlock_scope(item.context_expr) for item in node.items)
        for item in node.items:
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        if locked:
            self.lock_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if locked:
            self.lock_depth -= 1

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            node.attr in GUARDED_MEMBERS
            and _is_db_receiver(node.value)
            and self.lock_depth == 0
            and not self._allowlisted()
        ):
            self.findings.append(
                LockFinding(
                    self.rel_path,
                    node.lineno,
                    node.col_offset,
                    self._qualname(),
                    node.attr,
                )
            )
        self.generic_visit(node)


def check_file(path: pathlib.Path, rel_path: str) -> list[LockFinding]:
    """Check one Python source file; returns its findings."""
    tree = ast.parse(path.read_text(), filename=str(path))
    visitor = _Visitor(rel_path)
    visitor.visit(tree)
    return visitor.findings


def _package_root() -> pathlib.Path:
    import repro

    return pathlib.Path(repro.__file__).parent


def run_lock_check(*, verbose: bool = False) -> int:
    """Check ``repro/server/`` and ``repro/introspect/``; print findings
    and return their count (the CLI exit-status contribution)."""
    root = _package_root()
    findings: list[LockFinding] = []
    checked = 0
    for subdir in ("server", "introspect"):
        directory = root / subdir
        if not directory.is_dir():
            continue
        for path in sorted(directory.glob("*.py")):
            rel = f"{subdir}/{path.name}"
            findings.extend(check_file(path, rel))
            checked += 1
    for finding in findings:
        print(finding.render())
    if verbose:
        for entry, reason in sorted(ALLOWLIST.items()):
            print(f"allowlisted {entry}: {reason}")
    print(
        f"lock-check: {checked} files checked, "
        f"{len(ALLOWLIST)} allowlisted scopes, {len(findings)} findings"
    )
    return len(findings)
