"""RP114-RP118: inference-driven diagnostics over the bound plan.

These rules run after a statement binds successfully.  The linter hands the
bound (un-optimized) logical plan to :func:`dataflow_diagnostics`, which
runs the :mod:`repro.analysis.dataflow` abstract interpretation and walks
every operator's expressions looking for constructs that are *statically*
wrong even though they bind:

* **RP114** — a comparison (or IN list) whose operand types have no common
  supertype; the runtime comparison is guaranteed to raise.
* **RP115** — a WHERE/HAVING/ON predicate the dataflow lattice proves is
  always NULL or always false; no row can ever satisfy it.
* **RP116** — a CAST of a statically-known constant that
  :func:`~repro.engine.evaluator.cast_value` rejects; it fails on the first
  evaluated row.
* **RP117** — ``AT (SET dim = value)`` pinning a dimension to a value whose
  type is incompatible with the dimension column's type; the synthesized
  context predicate can never match.
* **RP118** — a grouping key read from the NULL-padded side of an outer
  join; unmatched rows silently merge into a spurious NULL group.

Spans come from the bound expressions themselves (the binder stamps every
bound node with its AST position), so findings point into the original SQL.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.analysis.dataflow import (
    OperatorFacts,
    analyze_plan,
    infer_expr,
)
from repro.analysis.diagnostics import Diagnostic, rule_severity
from repro.core.modifiers import BoundSet
from repro.errors import SqlError, TypeCheckError
from repro.plan import logical as plans
from repro.semantics import bound as b
from repro.types import UNKNOWN, common_type

__all__ = ["dataflow_diagnostics"]

#: Comparison operators whose runtime implementation raises on operands
#: with no common supertype (types/values._comparable).
_COMPARISON_OPS = frozenset(["=", "<>", "<", "<=", ">", ">=", "IS DISTINCT"])


def dataflow_diagnostics(catalog, plan: plans.LogicalPlan) -> list[Diagnostic]:
    """Run the RP114-RP118 rules over ``plan`` and return diagnostics."""
    checker = _Checker(catalog)
    checker.check_plan(plan)
    return checker.diags


def _diag(
    code: str, message: str, expr, hint: Optional[str] = None
) -> Diagnostic:
    span = getattr(expr, "span", None)
    return Diagnostic(code, rule_severity(code), message, span, hint)


class _Checker:
    def __init__(self, catalog) -> None:
        self.catalog = catalog
        self.diags: list[Diagnostic] = []
        self._visited: set[int] = set()

    # -- plan traversal ------------------------------------------------------

    def check_plan(self, plan: plans.LogicalPlan) -> None:
        if id(plan) in self._visited:
            return
        self._visited.add(id(plan))
        if getattr(plan, "facts", None) is None:
            analyze_plan(plan, self.catalog)
        self._visit(plan)

    def _visit(self, node: plans.LogicalPlan) -> None:
        input_facts = self._input_facts(node)
        if isinstance(node, plans.Filter):
            self._check_predicate(node.predicate, input_facts, "WHERE/HAVING")
        elif isinstance(node, plans.Join) and node.condition is not None:
            self._check_predicate(node.condition, input_facts, "join ON")
        elif isinstance(node, plans.Aggregate):
            self._check_group_keys(node, input_facts)
        for expr in _node_exprs(node):
            self._check_expr(expr, input_facts)
        for child in node.inputs():
            if id(child) not in self._visited:
                self._visited.add(id(child))
                self._visit(child)

    def _input_facts(
        self, node: plans.LogicalPlan
    ) -> Optional[OperatorFacts]:
        """Facts describing the rows this node's expressions evaluate over."""
        if isinstance(node, plans.Join):
            left = getattr(node.left, "facts", None)
            right = getattr(node.right, "facts", None)
            if left is None or right is None:
                return None
            # The join condition runs over candidate pairs, before padding.
            return OperatorFacts(list(left.columns) + list(right.columns))
        inputs = list(node.inputs())
        if len(inputs) == 1:
            return getattr(inputs[0], "facts", None)
        return None

    # -- RP115 ---------------------------------------------------------------

    def _check_predicate(
        self,
        predicate: b.BoundExpr,
        input_facts: Optional[OperatorFacts],
        where: str,
    ) -> None:
        fact = infer_expr(predicate, input_facts)
        if not fact.is_const or fact.const is True:
            return
        shape = "NULL" if fact.const is None else "false"
        self.diags.append(
            _diag(
                "RP115",
                f"{where} predicate always evaluates to {shape}; "
                f"no row can satisfy it",
                predicate,
                hint="a comparison with NULL is never true; use IS NULL, "
                "or fix the constant condition",
            )
        )

    # -- RP118 ---------------------------------------------------------------

    def _check_group_keys(
        self, node: plans.Aggregate, input_facts: Optional[OperatorFacts]
    ) -> None:
        if input_facts is None:
            return
        active: set[int] = set()
        for grouping in node.grouping_sets:
            active.update(grouping)
        for index in sorted(active):
            if index >= len(node.group_exprs):
                continue
            expr = node.group_exprs[index]
            fact = infer_expr(expr, input_facts)
            if fact.padded:
                name = fact.name or getattr(expr, "name", "") or "?"
                self.diags.append(
                    _diag(
                        "RP118",
                        f"grouping key {name!r} comes from the NULL-padded "
                        f"side of an outer join; unmatched rows collapse "
                        f"into one NULL group",
                        expr,
                        hint="COALESCE the key to a sentinel, or make the "
                        "join INNER if unmatched rows are not wanted",
                    )
                )

    # -- expression walk (RP114, RP116, RP117) -------------------------------

    def _check_expr(
        self, root: b.BoundExpr, input_facts: Optional[OperatorFacts]
    ) -> None:
        for node in b.walk(root):
            if isinstance(node, b.BoundCall):
                self._check_comparison(node)
            elif isinstance(node, b.BoundInList):
                self._check_in_list(node)
            elif isinstance(node, b.BoundCast):
                self._check_cast(node, input_facts)
            elif isinstance(node, b.BoundMeasureEval):
                self._check_measure_modifiers(node)
            elif isinstance(node, b.BoundSubquery):
                self.check_plan(node.plan)

    def _incompatible(self, left, right) -> bool:
        ltype = getattr(left, "dtype", UNKNOWN)
        rtype = getattr(right, "dtype", UNKNOWN)
        if ltype.unwrap() is UNKNOWN or rtype.unwrap() is UNKNOWN:
            return False
        try:
            common_type(ltype, rtype)
        except TypeCheckError:
            return True
        return False

    def _check_comparison(self, call: b.BoundCall) -> None:
        if call.op not in _COMPARISON_OPS or len(call.args) != 2:
            return
        left, right = call.args
        if self._incompatible(left, right):
            self.diags.append(
                _diag(
                    "RP114",
                    f"cannot compare {left.dtype} with {right.dtype}; "
                    f"this comparison raises at runtime",
                    call,
                    hint="CAST one side to a common type",
                )
            )

    def _check_in_list(self, node: b.BoundInList) -> None:
        for item in node.items:
            if self._incompatible(node.operand, item):
                self.diags.append(
                    _diag(
                        "RP114",
                        f"IN list item of type {item.dtype} cannot be "
                        f"compared with {node.operand.dtype}",
                        item,
                        hint="CAST the item to the operand's type",
                    )
                )

    def _check_cast(
        self, cast: b.BoundCast, input_facts: Optional[OperatorFacts]
    ) -> None:
        operand = infer_expr(cast.operand, input_facts)
        if not operand.is_const or operand.const is None:
            return
        from repro.engine.evaluator import cast_value

        try:
            cast_value(operand.const, cast.dtype)
        except SqlError:
            self.diags.append(
                _diag(
                    "RP116",
                    f"CAST of {operand.const!r} to {cast.dtype} always "
                    f"fails at runtime",
                    cast,
                    hint="the value can never be represented in the "
                    "target type",
                )
            )

    def _check_measure_modifiers(self, node: b.BoundMeasureEval) -> None:
        for modifier in node.context.modifiers:
            if not isinstance(modifier, BoundSet):
                continue
            source = modifier.source_expr
            value = modifier.value_expr
            if self._incompatible(source, value):
                self.diags.append(
                    _diag(
                        "RP117",
                        f"AT SET pins dimension {modifier.dim_key!r} "
                        f"({source.dtype}) to a value of type "
                        f"{value.dtype}; the context predicate can never "
                        f"match",
                        value,
                        hint="SET values must be comparable with the "
                        "dimension column",
                    )
                )


def _node_exprs(node: plans.LogicalPlan) -> Iterator[b.BoundExpr]:
    """This operator's own expressions (not those of its inputs)."""
    if isinstance(node, plans.Filter):
        yield node.predicate
    elif isinstance(node, plans.Project):
        yield from node.exprs
    elif isinstance(node, plans.Join):
        if node.condition is not None:
            yield node.condition
    elif isinstance(node, plans.Aggregate):
        yield from node.group_exprs
        yield from node.agg_calls
    elif isinstance(node, plans.Window):
        yield from node.calls
    elif isinstance(node, plans.Sort):
        for spec in node.keys:
            yield spec.expr
    elif isinstance(node, plans.Limit):
        if node.limit is not None:
            yield node.limit
        if node.offset is not None:
            yield node.offset
    elif isinstance(node, plans.ValuesPlan):
        for row in node.rows:
            yield from row
