"""Typed dataflow analysis over bound plans.

A bottom-up abstract interpretation of the logical plan: every operator is
annotated with :class:`OperatorFacts` describing, for each output column,
the inferred type, nullability, and constant value when statically known,
plus relation-level facts — key sets (the operator's *grain*: column sets
whose values are unique per row) and cardinality bounds.

The facts serve three consumers:

* the linter's RP114–RP118 diagnostics (type-incompatible comparisons,
  statically NULL/false predicates, impossible casts, `AT` grain
  mismatches, outer-join-padded grouping keys);
* the optimizer's fact-justified rewrites (strict-NULL propagation,
  contradiction elimination, null-rejecting-filter outer-join
  strengthening);
* ``EXPLAIN (TYPES)`` and per-node :class:`~repro.profile.QueryProfile`
  annotations, with cardinality bounds recorded on the plan as the input
  for cost-based strategy selection (see ROADMAP).

Facts are attached to plan nodes as a ``facts`` attribute (not a dataclass
field, so plan equality/fingerprints are unaffected).  Cardinality bounds
for base-table scans are a snapshot of the catalog row counts at analysis
time; the plan cache's DML invalidation bounds their staleness.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.errors import SqlError
from repro.plan import logical as plans
from repro.semantics import bound as b
from repro.types import (
    BOOLEAN,
    INTEGER,
    UNKNOWN,
    DataType,
    common_type,
)

__all__ = [
    "ColumnFacts",
    "OperatorFacts",
    "NOT_CONST",
    "analyze_plan",
    "annotate_plan",
    "infer_expr",
    "is_null_rejecting",
    "facts_lines",
    "explain_types_lines",
]


class _NotConst:
    """Sentinel: no constant value is known (``None`` is a real constant)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NOT_CONST"


NOT_CONST = _NotConst()

#: Operators that are NULL-strict: any NULL argument makes the result NULL.
#: BETWEEN is deliberately absent — ``x BETWEEN NULL AND 5`` evaluates as
#: ``x >= NULL AND x <= 5``, which is FALSE (not NULL) when ``x > 5``.
STRICT_OPS = frozenset(
    ["=", "<>", "<", "<=", ">", ">=", "+", "-", "*", "/", "%", "NEG", "||",
     "LIKE", "NOT"]
)

#: Operators that never return NULL regardless of their arguments.
_NEVER_NULL_OPS = frozenset(["IS NULL", "IS DISTINCT"])

#: Aggregate functions that never return NULL over a non-empty group with
#: non-null inputs (COUNT is non-null even over empty groups).
_COUNT_FUNCS = frozenset(["COUNT"])
_STRICT_AGG_FUNCS = frozenset(["SUM", "MIN", "MAX", "AVG"])

#: Window functions whose result is always non-null.
_NON_NULL_WINDOW_FUNCS = frozenset(
    ["ROW_NUMBER", "RANK", "DENSE_RANK", "COUNT", "NTILE"]
)


@dataclass
class ColumnFacts:
    """Facts about one output column of an operator."""

    name: str
    dtype: DataType
    nullable: bool = True
    #: Nullability introduced by outer-join padding specifically (the
    #: column's source side may be replaced wholesale by NULLs).  Grouping
    #: by such a column merges unmatched rows into a spurious NULL group,
    #: which is what RP118 warns about.
    padded: bool = False
    const: Any = NOT_CONST

    @property
    def is_const(self) -> bool:
        return self.const is not NOT_CONST

    def render(self) -> str:
        from repro.types import format_value

        text = f"{self.name or '?'} {self.dtype}"
        if self.is_const:
            text += f"={format_value(self.const)}"
        elif not self.nullable:
            text += "!"
        return text


@dataclass
class OperatorFacts:
    """Facts about one plan operator's output relation."""

    columns: list[ColumnFacts]
    #: Key sets: each frozenset of column positions is unique per output
    #: row.  ``frozenset()`` (the empty key) means "at most one row".
    keys: tuple = ()
    row_min: int = 0
    row_max: Optional[int] = None  # None = unbounded

    def column(self, offset: int) -> ColumnFacts:
        return self.columns[offset]

    def normalized(self) -> "OperatorFacts":
        """Canonicalize: dedupe/minimize keys, sync the empty key with a
        row_max of one."""
        if self.row_max is not None and self.row_max <= 1:
            keys = {frozenset()}
        else:
            keys = set(self.keys)
        if frozenset() in keys:
            keys = {frozenset()}
            self.row_max = 0 if self.row_max == 0 else min(
                self.row_max if self.row_max is not None else 1, 1
            )
        # Drop keys that are supersets of another key (non-minimal).
        minimal = [
            k for k in keys
            if not any(other < k for other in keys)
        ]
        self.keys = tuple(sorted(minimal, key=sorted))
        if self.row_max is not None and self.row_min > self.row_max:
            self.row_min = self.row_max
        return self


def _mul(a: Optional[int], x: Optional[int]) -> Optional[int]:
    if a is None or x is None:
        return None
    return a * x


def _add(a: Optional[int], x: Optional[int]) -> Optional[int]:
    if a is None or x is None:
        return None
    return a + x


def _min_bound(a: Optional[int], x: Optional[int]) -> Optional[int]:
    if a is None:
        return x
    if x is None:
        return a
    return min(a, x)


# ---------------------------------------------------------------------------
# Expression-level inference
# ---------------------------------------------------------------------------


def _const_args(facts: list[ColumnFacts]) -> Optional[list]:
    values = []
    for fact in facts:
        if not fact.is_const:
            return None
        values.append(fact.const)
    return values


def infer_expr(
    expr: b.BoundExpr,
    input_facts: Optional[OperatorFacts],
    analyzer: Optional["_Analyzer"] = None,
) -> ColumnFacts:
    """Infer (type, nullability, constness) of ``expr`` evaluated over rows
    described by ``input_facts`` (None = no input columns available)."""
    if isinstance(expr, b.BoundLiteral):
        return ColumnFacts(
            "", expr.dtype, nullable=expr.value is None, const=expr.value
        )
    if isinstance(expr, b.BoundColumn):
        if input_facts is not None and 0 <= expr.offset < len(input_facts.columns):
            source = input_facts.columns[expr.offset]
            return replace(source, name=expr.name or source.name)
        return ColumnFacts(expr.name, expr.dtype)
    if isinstance(expr, b.BoundParameter):
        return ColumnFacts("", expr.dtype)
    if isinstance(expr, b.BoundOuterColumn):
        return ColumnFacts(expr.name, expr.dtype)
    if isinstance(expr, b.BoundCall):
        return _infer_call(expr, input_facts, analyzer)
    if isinstance(expr, b.BoundCast):
        operand = infer_expr(expr.operand, input_facts, analyzer)
        const: Any = NOT_CONST
        if operand.is_const:
            if operand.const is None:
                const = None
            else:
                try:
                    from repro.engine.evaluator import cast_value

                    const = cast_value(operand.const, expr.dtype)
                except SqlError:
                    const = NOT_CONST  # impossible cast; RP116's business
        return ColumnFacts("", expr.dtype, nullable=operand.nullable, const=const,
                           padded=operand.padded)
    if isinstance(expr, b.BoundCase):
        nullable = expr.else_result is None
        for _, result in expr.whens:
            nullable = nullable or infer_expr(result, input_facts, analyzer).nullable
        if expr.else_result is not None:
            nullable = nullable or infer_expr(
                expr.else_result, input_facts, analyzer
            ).nullable
        return ColumnFacts("", expr.dtype, nullable=nullable)
    if isinstance(expr, b.BoundInList):
        operand = infer_expr(expr.operand, input_facts, analyzer)
        items = [infer_expr(i, input_facts, analyzer) for i in expr.items]
        nullable = operand.nullable or any(i.nullable for i in items)
        return ColumnFacts("", BOOLEAN, nullable=nullable)
    if isinstance(expr, b.BoundAggCall):
        return _infer_agg_call(expr, input_facts, analyzer)
    if isinstance(expr, b.BoundAggRef):
        return ColumnFacts("", expr.dtype)
    if isinstance(expr, b.BoundWindowCall):
        non_null = expr.func.upper() in _NON_NULL_WINDOW_FUNCS
        return ColumnFacts(expr.func.lower(), expr.dtype, nullable=not non_null)
    if isinstance(expr, b.BoundGroupingId):
        return ColumnFacts("grouping_id", INTEGER, nullable=False)
    if isinstance(expr, b.BoundSubquery):
        if analyzer is not None:
            analyzer.analyze(expr.plan)  # annotate for diagnostics/EXPLAIN
        if expr.kind == "EXISTS":
            return ColumnFacts("", BOOLEAN, nullable=False)
        return ColumnFacts("", expr.dtype)
    if isinstance(expr, b.BoundMeasureEval):
        return ColumnFacts("", expr.dtype)
    return ColumnFacts("", getattr(expr, "dtype", UNKNOWN))


def _infer_call(
    expr: b.BoundCall,
    input_facts: Optional[OperatorFacts],
    analyzer: Optional["_Analyzer"],
) -> ColumnFacts:
    arg_facts = [infer_expr(arg, input_facts, analyzer) for arg in expr.args]
    op = expr.op
    consts = _const_args(arg_facts)

    if op == "AND":
        if any(f.is_const and f.const is False for f in arg_facts):
            return ColumnFacts("", BOOLEAN, nullable=False, const=False)
        nullable = any(f.nullable for f in arg_facts)
        const = _try_eval(expr, consts)
        return _const_facts(BOOLEAN, nullable, const)
    if op == "OR":
        if any(f.is_const and f.const is True for f in arg_facts):
            return ColumnFacts("", BOOLEAN, nullable=False, const=True)
        nullable = any(f.nullable for f in arg_facts)
        const = _try_eval(expr, consts)
        return _const_facts(expr.dtype, nullable, const)
    if op in _NEVER_NULL_OPS:
        const = _try_eval(expr, consts)
        return _const_facts(expr.dtype, False, const)
    if op == "COALESCE":
        nullable = all(f.nullable for f in arg_facts)
        for fact in arg_facts:
            if fact.is_const and fact.const is not None:
                return ColumnFacts("", expr.dtype, nullable=False, const=fact.const)
            if not fact.is_const:
                break
        return ColumnFacts("", expr.dtype, nullable=nullable)
    if op in STRICT_OPS:
        # NULL-strict: one statically-NULL argument decides the result.
        if any(f.is_const and f.const is None for f in arg_facts):
            return ColumnFacts("", expr.dtype, nullable=True, const=None)
        nullable = any(f.nullable for f in arg_facts)
        const = _try_eval(expr, consts)
        return _const_facts(expr.dtype, nullable, const)
    # Generic function call: assume nothing about nullability beyond a
    # known constant result.
    const = _try_eval(expr, consts)
    if const is not NOT_CONST:
        return _const_facts(expr.dtype, const is None, const)
    return ColumnFacts("", expr.dtype)


def _const_facts(dtype: DataType, nullable: bool, const: Any) -> ColumnFacts:
    if const is not NOT_CONST:
        return ColumnFacts("", dtype, nullable=const is None, const=const)
    return ColumnFacts("", dtype, nullable=nullable)


def _try_eval(expr: b.BoundCall, consts: Optional[list]) -> Any:
    """Evaluate a call over known-constant arguments; NOT_CONST on failure
    (the expression then raises identically at runtime — not our call)."""
    if consts is None or expr.op == "$GROUPING":
        return NOT_CONST
    try:
        return expr.fn(*consts)
    except Exception:
        return NOT_CONST


def _infer_agg_call(
    call: b.BoundAggCall,
    input_facts: Optional[OperatorFacts],
    analyzer: Optional["_Analyzer"],
    group_never_empty: bool = False,
) -> ColumnFacts:
    func = call.func.upper()
    if func in _COUNT_FUNCS:
        return ColumnFacts(func.lower(), call.dtype, nullable=False)
    if (
        group_never_empty
        and func in _STRICT_AGG_FUNCS
        and call.filter_where is None
        and call.args
        and not infer_expr(call.args[0], input_facts, analyzer).nullable
    ):
        return ColumnFacts(func.lower(), call.dtype, nullable=False)
    return ColumnFacts(func.lower(), call.dtype)


# ---------------------------------------------------------------------------
# Operator-level propagation
# ---------------------------------------------------------------------------


class _Analyzer:
    def __init__(self, catalog=None):
        self.catalog = catalog

    def analyze(self, plan: plans.LogicalPlan) -> OperatorFacts:
        method = getattr(self, f"_analyze_{type(plan).__name__}", None)
        if method is None:
            facts = self._facts_from_schema(plan.schema)
            for child in plan.inputs():
                self.analyze(child)
        else:
            facts = method(plan)
        facts = facts.normalized()
        plan.facts = facts
        return facts

    def _facts_from_schema(self, schema) -> OperatorFacts:
        return OperatorFacts(
            [ColumnFacts(name, dtype) for name, dtype in schema]
        )

    # -- leaves ----------------------------------------------------------

    def _analyze_Scan(self, plan: plans.Scan) -> OperatorFacts:
        facts = self._facts_from_schema(plan.schema)
        count = self._table_rows(plan.table_name)
        if count is not None:
            facts.row_min = facts.row_max = count
        return facts

    def _analyze_SystemScan(self, plan: plans.SystemScan) -> OperatorFacts:
        # Providers run at execution time; only the schema is static.
        return self._facts_from_schema(plan.schema)

    def _table_rows(self, name: str) -> Optional[int]:
        if self.catalog is None:
            return None
        from repro.catalog.objects import BaseTable

        try:
            obj = self.catalog.resolve(name)
        except SqlError:
            return None
        if isinstance(obj, BaseTable):
            return len(obj.table.rows)
        return None

    def _analyze_ValuesPlan(self, plan: plans.ValuesPlan) -> OperatorFacts:
        columns = [ColumnFacts(name, dtype) for name, dtype in plan.schema]
        for index, (name, dtype) in enumerate(plan.schema):
            cell_facts = [
                infer_expr(row[index], None, self) for row in plan.rows
            ]
            if cell_facts:
                nullable = any(f.nullable for f in cell_facts)
                const: Any = NOT_CONST
                if all(f.is_const for f in cell_facts):
                    values = {_hashable(f.const) for f in cell_facts}
                    if len(values) == 1:
                        const = cell_facts[0].const
                columns[index] = ColumnFacts(
                    name, dtype, nullable=nullable, const=const
                )
            else:
                columns[index] = ColumnFacts(name, dtype, nullable=False)
        n = len(plan.rows)
        return OperatorFacts(columns, row_min=n, row_max=n)

    # -- unary operators --------------------------------------------------

    def _analyze_Filter(self, plan: plans.Filter) -> OperatorFacts:
        child = self.analyze(plan.input)
        pred = infer_expr(plan.predicate, child, self)
        columns = [replace(c) for c in child.columns]
        row_max = child.row_max
        row_min = 0
        if pred.is_const and pred.const is True:
            row_min = child.row_min
        if pred.is_const and pred.const is not True:
            row_max = 0
        # Equality with a constant pins the column for downstream operators.
        for offset, value in _equality_constants(plan.predicate):
            if 0 <= offset < len(columns) and not columns[offset].is_const:
                columns[offset] = replace(
                    columns[offset], const=value, nullable=value is None
                )
        return OperatorFacts(
            columns, keys=child.keys, row_min=row_min, row_max=row_max
        )

    def _analyze_Project(self, plan: plans.Project) -> OperatorFacts:
        child = self.analyze(plan.input)
        columns = []
        passthrough: dict[int, int] = {}  # input offset -> output offset
        for out_offset, (expr, (name, dtype)) in enumerate(
            zip(plan.exprs, plan.schema)
        ):
            fact = infer_expr(expr, child, self)
            if fact.dtype is UNKNOWN and dtype is not UNKNOWN:
                fact = replace(fact, dtype=dtype)
            columns.append(replace(fact, name=name))
            if isinstance(expr, b.BoundColumn) and expr.offset not in passthrough:
                passthrough[expr.offset] = out_offset
        keys = _remap_keys(child.keys, passthrough)
        return OperatorFacts(
            columns, keys=keys, row_min=child.row_min, row_max=child.row_max
        )

    def _analyze_Window(self, plan: plans.Window) -> OperatorFacts:
        child = self.analyze(plan.input)
        columns = [replace(c) for c in child.columns]
        for call, (name, dtype) in zip(
            plan.calls, plan.schema[len(child.columns):]
        ):
            fact = infer_expr(call, child, self)
            columns.append(replace(fact, name=name, dtype=dtype))
        return OperatorFacts(
            columns, keys=child.keys, row_min=child.row_min, row_max=child.row_max
        )

    def _analyze_Sort(self, plan: plans.Sort) -> OperatorFacts:
        child = self.analyze(plan.input)
        return OperatorFacts(
            [replace(c) for c in child.columns],
            keys=child.keys,
            row_min=child.row_min,
            row_max=child.row_max,
        )

    def _analyze_Limit(self, plan: plans.Limit) -> OperatorFacts:
        child = self.analyze(plan.input)
        row_min, row_max = 0, child.row_max
        limit = _static_int(plan.limit)
        offset = _static_int(plan.offset) or 0
        if limit is not None:
            row_max = _min_bound(row_max, max(limit, 0))
            if child.row_max is not None:
                available = max(child.row_min - offset, 0)
                row_min = min(available, max(limit, 0))
        return OperatorFacts(
            [replace(c) for c in child.columns],
            keys=child.keys,
            row_min=row_min,
            row_max=row_max,
        )

    def _analyze_Distinct(self, plan: plans.Distinct) -> OperatorFacts:
        child = self.analyze(plan.input)
        keys = set(child.keys)
        keys.add(frozenset(range(len(child.columns))))
        return OperatorFacts(
            [replace(c) for c in child.columns],
            keys=tuple(keys),
            row_min=min(child.row_min, 1),
            row_max=child.row_max,
        )

    # -- joins ------------------------------------------------------------

    def _analyze_Join(self, plan: plans.Join) -> OperatorFacts:
        left = self.analyze(plan.left)
        right = self.analyze(plan.right)
        left_width = len(left.columns)
        pad_left = plan.kind in ("RIGHT", "FULL")
        pad_right = plan.kind in ("LEFT", "FULL")
        columns = []
        for col in left.columns:
            col = replace(col)
            if pad_left:
                col = replace(
                    col, nullable=True, padded=True, const=NOT_CONST
                )
            columns.append(col)
        for col in right.columns:
            col = replace(col)
            if pad_right:
                col = replace(
                    col, nullable=True, padded=True, const=NOT_CONST
                )
            columns.append(col)

        left_unique, right_unique = _equi_join_uniqueness(
            plan, left, right, left_width
        )

        # Cardinality.
        lo: Optional[int]
        if plan.kind == "CROSS":
            lo, hi = _mul(left.row_min, right.row_min), _mul(
                left.row_max, right.row_max
            )
        else:
            hi = _mul(left.row_max, right.row_max)
            if right_unique:  # each left row matches at most one right row
                hi = left.row_max if plan.kind in ("INNER", "LEFT") else hi
            if left_unique and plan.kind in ("INNER", "RIGHT"):
                hi = _min_bound(hi, right.row_max)
            lo = 0
            if plan.kind in ("LEFT", "FULL"):
                lo = max(lo, left.row_min)
            if plan.kind in ("RIGHT", "FULL"):
                lo = max(lo, right.row_min)

        # Keys: pairwise unions always hold; a unique join key on one side
        # preserves the other side's keys outright.
        shifted_right_keys = [
            frozenset(offset + left_width for offset in key)
            for key in right.keys
        ]
        keys = {
            lkey | rkey for lkey in left.keys for rkey in shifted_right_keys
        }
        if right_unique and plan.kind in ("INNER", "LEFT"):
            keys.update(left.keys)
        if left_unique and plan.kind in ("INNER", "RIGHT"):
            keys.update(shifted_right_keys)
        return OperatorFacts(columns, keys=tuple(keys), row_min=lo, row_max=hi)

    # -- aggregation -------------------------------------------------------

    def _analyze_Aggregate(self, plan: plans.Aggregate) -> OperatorFacts:
        child = self.analyze(plan.input)
        single_set = len(plan.grouping_sets) == 1
        active = frozenset(plan.grouping_sets[0]) if single_set else frozenset()
        global_only = single_set and not plan.grouping_sets[0]
        # With one non-global grouping set every emitted group is non-empty;
        # with the global set the one output row may aggregate zero rows.
        group_never_empty = single_set and not global_only

        columns: list[ColumnFacts] = []
        for index, expr in enumerate(plan.group_exprs):
            name = (
                plan.schema[index][0] if index < len(plan.schema) else ""
            )
            if single_set and index not in active:
                columns.append(ColumnFacts(name, plan.schema[index][1], const=None))
                continue
            fact = infer_expr(expr, child, self)
            if not single_set:
                # ROLLUP/CUBE suppress keys per grouping set with NULLs.
                fact = replace(fact, nullable=True, const=NOT_CONST)
            columns.append(replace(fact, name=name))
        for call, (name, dtype) in zip(
            plan.agg_calls, plan.schema[len(plan.group_exprs):]
        ):
            fact = _infer_agg_call(
                call, child, self, group_never_empty=group_never_empty
            )
            columns.append(replace(fact, name=name, dtype=dtype))
        while len(columns) < len(plan.schema):
            name, dtype = plan.schema[len(columns)]
            extra = ColumnFacts(name, dtype)
            if plan.has_grouping_id and len(columns) == plan.grouping_id_offset:
                extra = ColumnFacts(name, dtype, nullable=False)
            columns.append(extra)

        keys: tuple = ()
        if single_set:
            keys = (frozenset(plan.grouping_sets[0]),)
        if global_only:
            return OperatorFacts(columns, keys=keys, row_min=1, row_max=1)
        row_min = 0
        row_max: Optional[int] = None
        for grouping in plan.grouping_sets:
            set_min = 1 if (not grouping or child.row_min > 0) else 0
            set_max = 1 if not grouping else child.row_max
            row_min += set_min
            row_max = _add(row_max if row_max is not None else 0, set_max)
        return OperatorFacts(columns, keys=keys, row_min=row_min, row_max=row_max)

    # -- set operations ----------------------------------------------------

    def _analyze_SetOpPlan(self, plan: plans.SetOpPlan) -> OperatorFacts:
        left = self.analyze(plan.left)
        right = self.analyze(plan.right)
        columns = []
        for index, (name, dtype) in enumerate(plan.schema):
            lcol = left.columns[index] if index < len(left.columns) else None
            rcol = right.columns[index] if index < len(right.columns) else None
            if lcol is None or rcol is None:
                columns.append(ColumnFacts(name, dtype))
                continue
            if plan.op in ("INTERSECT", "EXCEPT"):
                # Output rows are drawn from the left input only.
                columns.append(replace(lcol, name=name))
                continue
            const: Any = NOT_CONST
            if (
                lcol.is_const
                and rcol.is_const
                and _hashable(lcol.const) == _hashable(rcol.const)
            ):
                const = lcol.const
            columns.append(
                ColumnFacts(
                    name,
                    dtype,
                    nullable=lcol.nullable or rcol.nullable,
                    padded=lcol.padded or rcol.padded,
                    const=const,
                )
            )
        dedup = not plan.all
        keys: tuple = ()
        if dedup:
            keys = (frozenset(range(len(plan.schema))),)
        if plan.op == "UNION":
            lo = (
                max(min(left.row_min, 1), min(right.row_min, 1))
                if dedup
                else left.row_min + right.row_min
            )
            hi = _add(left.row_max, right.row_max)
        elif plan.op == "INTERSECT":
            lo, hi = 0, _min_bound(left.row_max, right.row_max)
        else:  # EXCEPT
            lo, hi = 0, left.row_max
        return OperatorFacts(columns, keys=keys, row_min=lo, row_max=hi)


def _hashable(value: Any) -> Any:
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


def _static_int(expr: Optional[b.BoundExpr]) -> Optional[int]:
    if isinstance(expr, b.BoundLiteral) and isinstance(expr.value, int):
        return expr.value
    return None


def _remap_keys(keys, passthrough: dict[int, int]) -> tuple:
    remapped = []
    for key in keys:
        if all(offset in passthrough for offset in key):
            remapped.append(frozenset(passthrough[offset] for offset in key))
    return tuple(remapped)


def _equality_constants(predicate: b.BoundExpr):
    """Yield ``(offset, value)`` for top-level ``col = literal`` conjuncts."""
    for conjunct in _conjuncts(predicate):
        if (
            isinstance(conjunct, b.BoundCall)
            and conjunct.op == "="
            and len(conjunct.args) == 2
        ):
            first, second = conjunct.args
            for col, lit in ((first, second), (second, first)):
                if (
                    isinstance(col, b.BoundColumn)
                    and isinstance(lit, b.BoundLiteral)
                    and lit.value is not None
                ):
                    yield col.offset, lit.value


def _conjuncts(expr: b.BoundExpr):
    if isinstance(expr, b.BoundCall) and expr.op == "AND":
        for arg in expr.args:
            yield from _conjuncts(arg)
    else:
        yield expr


def _equi_join_uniqueness(
    plan: plans.Join,
    left: OperatorFacts,
    right: OperatorFacts,
    left_width: int,
) -> tuple[bool, bool]:
    """Whether the equi-join columns cover a key of either side (each row of
    the other side then matches at most one row)."""
    if plan.condition is None:
        return False, False
    left_cols: set[int] = set()
    right_cols: set[int] = set()
    for conjunct in _conjuncts(plan.condition):
        if (
            isinstance(conjunct, b.BoundCall)
            and conjunct.op == "="
            and len(conjunct.args) == 2
            and all(isinstance(a, b.BoundColumn) for a in conjunct.args)
        ):
            offsets = sorted(a.offset for a in conjunct.args)
            if offsets[0] < left_width <= offsets[1]:
                left_cols.add(offsets[0])
                right_cols.add(offsets[1] - left_width)
    left_unique = any(key and key <= left_cols for key in left.keys)
    right_unique = any(key and key <= right_cols for key in right.keys)
    return left_unique, right_unique


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def analyze_plan(plan: plans.LogicalPlan, catalog=None) -> OperatorFacts:
    """Analyze ``plan`` bottom-up, attach ``facts`` to every node (including
    subquery plans reached through bound expressions), and return the root's
    facts."""
    return _Analyzer(catalog).analyze(plan)


def annotate_plan(plan: plans.LogicalPlan, catalog=None) -> plans.LogicalPlan:
    """:func:`analyze_plan`, returning the plan for pipeline chaining."""
    analyze_plan(plan, catalog)
    return plan


def is_null_rejecting(
    predicate: b.BoundExpr,
    input_facts: OperatorFacts,
    null_offsets: set[int],
) -> bool:
    """True when ``predicate`` cannot evaluate to TRUE on any row whose
    columns at ``null_offsets`` are all NULL (an outer join's padded row).

    Justified by the dataflow lattice: the columns in question are pinned to
    the constant NULL and the predicate re-inferred; a constant FALSE or
    NULL result means padded rows never survive the filter.
    """
    for node in b.walk(predicate):
        if isinstance(
            node, (b.BoundMeasureEval, b.BoundSubquery, b.BoundOuterColumn)
        ):
            return False
    columns = [
        replace(col, const=None, nullable=True)
        if offset in null_offsets
        else replace(col, const=NOT_CONST)
        for offset, col in enumerate(input_facts.columns)
    ]
    fact = infer_expr(predicate, OperatorFacts(columns), None)
    return fact.is_const and fact.const is not True


# ---------------------------------------------------------------------------
# Rendering (EXPLAIN (TYPES), profile annotations)
# ---------------------------------------------------------------------------


def facts_lines(facts: OperatorFacts) -> list[str]:
    """Human-readable fact summary lines for one operator."""
    columns = ", ".join(col.render() for col in facts.columns)
    if facts.row_max is None:
        rows = f"{facts.row_min}..*"
    elif facts.row_min == facts.row_max:
        rows = str(facts.row_min)
    else:
        rows = f"{facts.row_min}..{facts.row_max}"
    relation = f"rows={rows}"
    rendered_keys = []
    for key in facts.keys:
        names = [
            facts.columns[offset].name or f"${offset}"
            for offset in sorted(key)
        ]
        rendered_keys.append("(" + ", ".join(names) + ")")
    if rendered_keys:
        relation += " key=" + " ".join(sorted(rendered_keys))
    return [f"[{columns}]", relation]


def facts_summary(facts: OperatorFacts) -> dict:
    """JSON-friendly fact summary (QueryProfile operator annotations)."""
    return {
        "columns": [
            {
                "name": col.name,
                "type": str(col.dtype),
                "nullable": col.nullable,
                **({"const": col.const} if col.is_const else {}),
            }
            for col in facts.columns
        ],
        "keys": [sorted(key) for key in facts.keys],
        "row_min": facts.row_min,
        "row_max": facts.row_max,
    }


def explain_types_lines(
    plan: plans.LogicalPlan, catalog=None, indent: int = 0
) -> list[str]:
    """Render the plan tree with per-node dataflow facts (EXPLAIN (TYPES))."""
    if getattr(plan, "facts", None) is None:
        analyze_plan(plan, catalog)
    pad = "  " * indent
    lines = [pad + plan.label()]
    facts = getattr(plan, "facts", None)
    if facts is not None:
        for line in facts_lines(facts):
            lines.append(pad + "    " + line)
    for child in plan.inputs():
        lines.extend(explain_types_lines(child, catalog, indent + 1))
    return lines
