"""Plan/IR invariant validator.

Checks a bound :class:`~repro.plan.logical.LogicalPlan` for structural
invariants that must hold after binding and after every optimizer rewrite:

* every operator's schema arity is consistent with its definition
  (``Project`` emits one column per expression, ``Join`` emits left ++ right,
  ``Aggregate`` emits keys ++ aggs ++ optional grouping id ++ optional
  captured rows, ``Window`` appends one column per call, set operations have
  equal-arity inputs);
* every :class:`~repro.semantics.bound.BoundColumn` offset is in range for
  the row the expression is evaluated over — the classic post-rewrite bug is
  a filter pushed below a join without re-shifting its ordinals;
* every :class:`~repro.semantics.bound.BoundOuterColumn` resolves to a real
  enclosing scope (depth no larger than the subquery nesting, offset in range
  for that scope's row).

Validation is off by default; enable it with ``REPRO_VALIDATE=1`` (any value
other than ``0``/empty) or per-database with ``Database(validate=True)``.
When enabled, the optimizer additionally fingerprints the plan between
passes and raises :class:`~repro.errors.ValidationError` the moment a rule
claims progress while leaving the plan semantically identical — the
non-convergence bug class that otherwise surfaces as an opaque
"fixpoint not reached" :class:`~repro.errors.InternalError` 50 passes later.

The validator never descends into :class:`BoundMeasureEval` nodes: measure
formulas are evaluated against the measure's *source* plan, not the current
operator's input row, so their offsets live in a different frame.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import ValidationError
from repro.plan import logical as plans
from repro.semantics import bound as b

__all__ = [
    "validation_enabled",
    "validate_plan",
    "check_plan",
    "plan_fingerprint",
]


def validation_enabled() -> bool:
    """True when ``REPRO_VALIDATE`` is set to anything but ``0`` / empty."""
    return os.environ.get("REPRO_VALIDATE", "") not in ("", "0")


# ---------------------------------------------------------------------------
# Invariant checking
# ---------------------------------------------------------------------------


class _Checker:
    def __init__(self) -> None:
        self.violations: list[str] = []

    def fail(self, where: str, message: str) -> None:
        self.violations.append(f"{where}: {message}")

    # -- expressions --------------------------------------------------------

    def check_expr(
        self, expr: Optional[b.BoundExpr], arity: int, outer: list[int], where: str
    ) -> None:
        """Check ``expr`` evaluated over a row of ``arity`` columns.

        ``outer`` is the stack of enclosing row arities (innermost last) that
        a :class:`BoundOuterColumn` of depth ``d`` indexes via ``outer[-d]``.
        """
        if expr is None:
            return
        if isinstance(expr, b.BoundColumn):
            if not (0 <= expr.offset < arity):
                self.fail(
                    where,
                    f"BoundColumn offset {expr.offset} out of range "
                    f"for input arity {arity}",
                )
            return
        if isinstance(expr, b.BoundOuterColumn):
            if expr.depth < 1 or expr.depth > len(outer):
                self.fail(
                    where,
                    f"BoundOuterColumn depth {expr.depth} exceeds subquery "
                    f"nesting depth {len(outer)}",
                )
            elif not (0 <= expr.offset < outer[-expr.depth]):
                self.fail(
                    where,
                    f"BoundOuterColumn offset {expr.offset} out of range for "
                    f"enclosing row arity {outer[-expr.depth]} "
                    f"(depth {expr.depth})",
                )
            return
        if isinstance(expr, b.BoundGroupingId):
            if not (0 <= expr.grouping_column < arity):
                self.fail(
                    where,
                    f"BoundGroupingId reads column {expr.grouping_column} "
                    f"but input arity is {arity}",
                )
            return
        if isinstance(expr, b.BoundMeasureEval):
            # Measure formulas run against the measure's source plan, in a
            # different column frame; out of scope for this checker.
            return
        if isinstance(expr, b.BoundSubquery):
            if expr.operand is not None:
                self.check_expr(expr.operand, arity, outer, where)
            self.check_plan(expr.plan, outer + [arity], where + " > subquery")
            return
        for child in expr.children():
            self.check_expr(child, arity, outer, where)

    # -- operators ----------------------------------------------------------

    def check_plan(
        self, plan: plans.LogicalPlan, outer: list[int], path: str
    ) -> None:
        where = f"{path}/{plan.label()}" if path else plan.label()
        for child in plan.inputs():
            self.check_plan(child, outer, where)

        if isinstance(plan, plans.ValuesPlan):
            for i, row in enumerate(plan.rows):
                if len(row) != plan.arity:
                    self.fail(
                        where,
                        f"row {i} has {len(row)} cells for arity {plan.arity}",
                    )
                for cell in row:
                    self.check_expr(cell, 0, outer, where)
        elif isinstance(plan, plans.Filter):
            if plan.arity != plan.input.arity:
                self.fail(
                    where,
                    f"schema arity {plan.arity} != input arity "
                    f"{plan.input.arity}",
                )
            self.check_expr(plan.predicate, plan.input.arity, outer, where)
        elif isinstance(plan, plans.Project):
            if len(plan.exprs) != plan.arity:
                self.fail(
                    where,
                    f"{len(plan.exprs)} expressions for schema arity "
                    f"{plan.arity}",
                )
            for expr in plan.exprs:
                self.check_expr(expr, plan.input.arity, outer, where)
        elif isinstance(plan, plans.Join):
            combined = plan.left.arity + plan.right.arity
            if plan.arity != combined:
                self.fail(
                    where,
                    f"schema arity {plan.arity} != left+right arity "
                    f"{combined}",
                )
            self.check_expr(plan.condition, combined, outer, where)
        elif isinstance(plan, plans.Aggregate):
            expected = (
                len(plan.group_exprs)
                + len(plan.agg_calls)
                + (1 if plan.has_grouping_id else 0)
                + (1 if plan.capture_rows else 0)
            )
            if plan.arity != expected:
                self.fail(
                    where,
                    f"schema arity {plan.arity} != keys+aggs+hidden "
                    f"{expected}",
                )
            for expr in plan.group_exprs:
                self.check_expr(expr, plan.input.arity, outer, where)
            for call in plan.agg_calls:
                self.check_expr(call, plan.input.arity, outer, where)
            for gset in plan.grouping_sets:
                for index in gset:
                    if not (0 <= index < len(plan.group_exprs)):
                        self.fail(
                            where,
                            f"grouping set references key {index} but there "
                            f"are {len(plan.group_exprs)} group expressions",
                        )
        elif isinstance(plan, plans.Window):
            expected = plan.input.arity + len(plan.calls)
            if plan.arity != expected:
                self.fail(
                    where,
                    f"schema arity {plan.arity} != input+calls {expected}",
                )
            for call in plan.calls:
                self.check_expr(call, plan.input.arity, outer, where)
        elif isinstance(plan, plans.Sort):
            if plan.arity != plan.input.arity:
                self.fail(
                    where,
                    f"schema arity {plan.arity} != input arity "
                    f"{plan.input.arity}",
                )
            for key in plan.keys:
                self.check_expr(key.expr, plan.input.arity, outer, where)
        elif isinstance(plan, plans.Limit):
            self.check_expr(plan.limit, plan.input.arity, outer, where)
            self.check_expr(plan.offset, plan.input.arity, outer, where)
        elif isinstance(plan, plans.SetOpPlan):
            if plan.left.arity != plan.right.arity:
                self.fail(
                    where,
                    f"set operation inputs disagree on arity "
                    f"({plan.left.arity} vs {plan.right.arity})",
                )


def validate_plan(plan: plans.LogicalPlan, phase: str = "") -> list[str]:
    """Return every invariant violation in ``plan`` (empty list = valid)."""
    checker = _Checker()
    checker.check_plan(plan, [], phase)
    return checker.violations


def check_plan(plan: plans.LogicalPlan, phase: str = "") -> None:
    """Raise :class:`ValidationError` if ``plan`` breaks any invariant."""
    violations = validate_plan(plan, phase)
    if violations:
        label = phase or "plan"
        detail = "; ".join(violations[:5])
        more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
        raise ValidationError(
            f"plan validation failed after {label}: {detail}{more}",
            tuple(violations),
        )


# ---------------------------------------------------------------------------
# Structural fingerprints (optimizer progress detection)
# ---------------------------------------------------------------------------


def _expr_fp(expr: Optional[b.BoundExpr]) -> str:
    """A structural expression fingerprint.

    Unlike :func:`repro.semantics.bound.fingerprint`, this recurses into
    subquery plans and window calls instead of falling back to ``id()``, so
    two structurally identical plans produced by different rewrite passes
    compare equal.  Measure evaluations hash by measure name and context
    shape, which is stable across rewrites (rules never rebuild measures).
    """
    if expr is None:
        return "~"
    if isinstance(expr, b.BoundSubquery):
        head = "NOTSUBQ" if expr.negated else "SUBQ"
        refs = ",".join(f"{d}.{o}" for d, o in expr.outer_refs)
        return (
            f"{head}[{expr.kind};{_expr_fp(expr.operand)};{refs};"
            f"{plan_fingerprint(expr.plan)}]"
        )
    if isinstance(expr, b.BoundWindowCall):
        args = ",".join(_expr_fp(a) for a in expr.args)
        part = ",".join(_expr_fp(p) for p in expr.partition_by)
        order = ",".join(
            f"{_expr_fp(s.expr)}:{s.descending}:{s.nulls_first}"
            for s in expr.order_by
        )
        return (
            f"WIN[{expr.func};{expr.distinct};{expr.star};{args};"
            f"{part};{order};{expr.frame}]"
        )
    if isinstance(expr, b.BoundMeasureEval):
        return f"MEVAL[{expr.measure.name};{expr.context.fingerprint()}]"
    if isinstance(expr, b.BoundCase):
        whens = ",".join(
            f"{_expr_fp(c)}:{_expr_fp(r)}" for c, r in expr.whens
        )
        return f"CASE[{whens};{_expr_fp(expr.else_result)}]"
    if isinstance(expr, b.BoundAggCall):
        args = ",".join(_expr_fp(a) for a in expr.args)
        order = ",".join(_expr_fp(s.expr) for s in expr.order_by)
        within = ",".join(_expr_fp(k) for k in expr.within_distinct)
        return (
            f"AGG[{expr.func};{expr.distinct};{expr.star};{args};"
            f"{_expr_fp(expr.filter_where)};{order};{within}]"
        )
    # Leaves and simple containers: reuse the canonical fingerprint for
    # anything without an identity-based fallback.
    if isinstance(
        expr,
        (
            b.BoundLiteral,
            b.BoundParameter,
            b.BoundColumn,
            b.BoundOuterColumn,
            b.BoundAggRef,
            b.BoundGroupingId,
            b.BoundCurrentDim,
        ),
    ):
        return b.fingerprint(expr)
    if isinstance(expr, b.BoundCall):
        args = ",".join(_expr_fp(a) for a in expr.args)
        return f"{expr.op}({args})"
    if isinstance(expr, b.BoundCast):
        return f"CAST[{_expr_fp(expr.operand)};{expr.dtype}]"
    if isinstance(expr, b.BoundInList):
        items = ",".join(_expr_fp(i) for i in expr.items)
        return f"IN[{expr.negated};{_expr_fp(expr.operand)};{items}]"
    return f"{type(expr).__name__}({','.join(_expr_fp(c) for c in expr.children())})"


def plan_fingerprint(plan: plans.LogicalPlan) -> str:
    """A structural fingerprint of a whole plan tree.

    Two plans with equal fingerprints are semantically identical: same
    operators, same schemas, same expressions (compared structurally, down
    through subquery plans).  The optimizer compares fingerprints across
    passes to detect a rewrite rule that claims progress without changing
    the plan.
    """
    parts: list[str] = [plan.label()]
    if isinstance(plan, plans.Scan):
        parts.append(plan.table_name)
    elif isinstance(plan, plans.ValuesPlan):
        parts.append(
            "|".join(",".join(_expr_fp(c) for c in row) for row in plan.rows)
        )
    elif isinstance(plan, plans.Filter):
        parts.append(_expr_fp(plan.predicate))
    elif isinstance(plan, plans.Project):
        parts.append(",".join(_expr_fp(e) for e in plan.exprs))
    elif isinstance(plan, plans.Join):
        parts.append(f"{plan.kind};{_expr_fp(plan.condition)}")
    elif isinstance(plan, plans.Aggregate):
        parts.append(",".join(_expr_fp(e) for e in plan.group_exprs))
        parts.append(",".join(_expr_fp(c) for c in plan.agg_calls))
        parts.append(repr(plan.grouping_sets))
        parts.append(f"{plan.has_grouping_id};{plan.capture_rows}")
    elif isinstance(plan, plans.Window):
        parts.append(",".join(_expr_fp(c) for c in plan.calls))
    elif isinstance(plan, plans.Sort):
        parts.append(
            ",".join(
                f"{_expr_fp(k.expr)}:{k.descending}:{k.nulls_first}"
                for k in plan.keys
            )
        )
    elif isinstance(plan, plans.Limit):
        parts.append(f"{_expr_fp(plan.limit)};{_expr_fp(plan.offset)}")
    elif isinstance(plan, plans.SetOpPlan):
        parts.append(f"{plan.op};{plan.all}")
    schema = ",".join(f"{name}:{dtype}" for name, dtype in plan.schema)
    children = ",".join(plan_fingerprint(child) for child in plan.inputs())
    return f"{'|'.join(parts)}{{{schema}}}({children})"
