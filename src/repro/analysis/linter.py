"""The lint rule engine: RPxxx diagnostics over the AST and catalog.

The linter never executes a statement and never raises on bad SQL: parse
failures become a single ``RP001`` diagnostic, semantic (binding) failures
become ``RP002``, and everything else is a best-effort pass over the parsed
tree with catalog metadata.

Name resolution here is a deliberately small mirror of the binder — a
*mini-resolver* that only answers "which relations are in scope, what are
their columns, and which columns are measures".  It resolves base tables and
materialized views from their schemas, views and derived tables by binding
them **as relations** (the same entry point the real binder uses, so measure
columns are classified identically), and CTEs best-effort.  When a relation
cannot be resolved the rules that depend on it are skipped rather than
guessed: lint prefers silence to false positives.

Rules that need full semantic information (measure dimensionality, summary
matchability) lean on the real subsystems: ``RP103`` checks AT modifier
dimensions against the mini-resolver's view of the measure's source relation,
and ``RP110`` replays the matview rewriter in no-record mode and converts its
:class:`~repro.matview.rewriter.CandidateReport` objects into advisory
diagnostics.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.catalog.objects import BaseTable, MaterializedView, SystemTable, View
from repro.engine.aggregates import is_aggregate_function
from repro.errors import LexerError, ParseError, SqlError
from repro.matview import rewrite_query
from repro.sql import ast, parse_statements
from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    rule_severity,
    sorted_diagnostics,
)

__all__ = ["lint_sql", "lint_statement", "lint_query"]


def lint_sql(catalog, sql: str) -> list[Diagnostic]:
    """Lint a statement (or a semicolon-separated script).

    Parse failures become a single RP001 diagnostic; spans in the result are
    positions in ``sql`` itself."""
    try:
        statements = parse_statements(sql)
    except (LexerError, ParseError) as exc:
        span = (
            ast.Span(exc.line, exc.column) if getattr(exc, "line", 0) else None
        )
        return [_diag("RP001", str(exc), span)]
    diags: list[Diagnostic] = []
    for statement in statements:
        diags.extend(lint_statement(catalog, statement))
    return sorted_diagnostics(diags)


def lint_statement(catalog, statement: ast.Statement) -> list[Diagnostic]:
    """Lint a parsed statement (dispatches to :func:`lint_query`)."""
    if isinstance(statement, ast.QueryStatement):
        if isinstance(statement.query, ast.ShowStats):
            return []  # the one position where SHOW STATS is legal
        return lint_query(catalog, statement.query)
    if isinstance(statement, ast.ExplainPlan):
        if isinstance(statement.query, ast.ShowStats):
            return [
                _diag(
                    "RP112",
                    "EXPLAIN cannot apply to SHOW STATS; it is answered "
                    "from the telemetry registry and has no plan",
                    ast.node_span(statement.query),
                    hint="run SHOW STATS directly",
                )
            ]
        if statement.query is None:
            # EXPLAIN [ANALYZE] over DDL/DML parses but never executes:
            # only queries have plans.  Lint the wrapped statement too, so
            # e.g. an unhinged INSERT source still gets its own findings.
            target = statement.target
            diags = [
                _diag(
                    "RP111",
                    f"EXPLAIN cannot explain a "
                    f"{type(target).__name__} statement",
                    getattr(target, "span", None),
                    hint="EXPLAIN and EXPLAIN ANALYZE accept queries only",
                )
            ]
            diags.extend(lint_statement(catalog, target))
            return diags
        return lint_query(catalog, statement.query)
    if isinstance(statement, ast.ExplainExpand):
        return lint_query(catalog, statement.query)
    if isinstance(statement, ast.CreateMaterializedView):
        diags = lint_query(catalog, statement.query, view_def=True)
        # RP113: a summary over a system table could never be matched or
        # invalidated (its source changes on every query), so creation is
        # rejected at runtime too (matview.definition).
        for node in statement.query.walk():
            if isinstance(node, ast.TableName) and catalog.is_system(node.name):
                diags.append(
                    _diag(
                        "RP113",
                        f"materialized view reads system table "
                        f"{node.name!r}; system tables are volatile and "
                        f"can never be subsumption-matched",
                        ast.node_span(node),
                        hint="use a plain CREATE VIEW over system tables",
                    )
                )
        return sorted_diagnostics(diags)
    if isinstance(statement, ast.CreateView):
        return lint_query(catalog, statement.query, view_def=True)
    if isinstance(statement, ast.CreateTableAs):
        return lint_query(catalog, statement.query)
    if isinstance(statement, ast.Insert):
        return lint_query(catalog, statement.source)
    # DDL/DML without an interesting query body: nothing to lint statically
    # beyond what execution itself checks.
    return []


def lint_query(
    catalog, query: ast.Query, *, view_def: bool = False
) -> list[Diagnostic]:
    """Run every lint rule over ``query`` and return sorted diagnostics."""
    linter = _Linter(catalog)
    linter.check_binds(query, view_def=view_def)
    linter.lint_query(query, view_def=view_def)
    return sorted_diagnostics(linter.diags)


def _diag(
    code: str,
    message: str,
    span: Optional[ast.Span],
    hint: Optional[str] = None,
) -> Diagnostic:
    return Diagnostic(code, rule_severity(code), message, span, hint)


# ---------------------------------------------------------------------------
# Mini-resolver
# ---------------------------------------------------------------------------


class _Rel:
    """One in-scope relation: alias plus (name, is_measure) column pairs.

    ``columns`` is None when the relation could not be resolved; rules that
    need its columns skip instead of guessing.
    """

    def __init__(
        self,
        alias: Optional[str],
        columns: Optional[list[tuple[str, bool]]],
        node: ast.Node,
    ) -> None:
        self.alias = alias
        self.columns = columns
        self.node = node
        self.by_name: Optional[dict[str, tuple[str, bool]]] = (
            None
            if columns is None
            else {name.lower(): (name, measure) for name, measure in columns}
        )

    def find(self, name: str) -> Optional[tuple[str, bool]]:
        if self.by_name is None:
            return None
        return self.by_name.get(name.lower())


def _sub_queries(node: ast.Node) -> Iterator[ast.Query]:
    """Directly nested queries of ``node`` (not recursing through them)."""
    for child in node.children():
        if isinstance(child, ast.Query):
            yield child
        else:
            yield from _sub_queries(child)


def _walk_pruning_queries(node: ast.Node) -> Iterator[ast.Node]:
    """Walk ``node`` without descending into nested Query nodes."""
    yield node
    for child in node.children():
        if isinstance(child, ast.Query):
            continue
        yield from _walk_pruning_queries(child)


def _is_plain_aggregate_call(node: ast.Node) -> bool:
    """A non-windowed aggregate call, including ``AGGREGATE(m)``."""
    return (
        isinstance(node, ast.FunctionCall)
        and node.over is None
        and node.over_name is None
        and (node.name.upper() == "AGGREGATE" or is_aggregate_function(node.name))
    )


class _Linter:
    def __init__(self, catalog) -> None:
        self.catalog = catalog
        self.diags: list[Diagnostic] = []
        #: CTE name -> columns (None = unresolvable), innermost WITH wins.
        self.ctes: dict[str, Optional[list[tuple[str, bool]]]] = {}

    def report(
        self,
        code: str,
        message: str,
        node: Optional[ast.Node],
        hint: Optional[str] = None,
    ) -> None:
        self.diags.append(_diag(code, message, ast.node_span(node), hint))

    # -- RP002: the real binder is the semantic oracle ----------------------

    def check_binds(self, query: ast.Query, *, view_def: bool) -> None:
        from repro.semantics.binder import Binder

        try:
            binder = Binder(self.catalog)
            if view_def:
                plan = binder.bind_query_as_relation(query, None).plan
            else:
                plan, _columns = binder.bind_query_top(query)
        except SqlError as exc:
            line = getattr(exc, "line", 0)
            column = getattr(exc, "column", 0)
            message = getattr(exc, "message", None) or str(exc)
            span = ast.Span(line, column) if line else ast.node_span(query)
            self.diags.append(_diag("RP002", message, span))
            return
        # The statement binds: run the dataflow-driven rules (RP114-RP118)
        # over the bound plan, whose expressions carry source spans.
        from repro.analysis.typecheck import dataflow_diagnostics

        self.diags.extend(dataflow_diagnostics(self.catalog, plan))

    # -- resolution ---------------------------------------------------------

    def _columns_for_name(self, name: str) -> Optional[list[tuple[str, bool]]]:
        lowered = name.lower()
        if lowered in self.ctes:
            return self.ctes[lowered]
        obj = self.catalog.get(name)
        if isinstance(obj, MaterializedView):
            return [
                (c.name, False)
                for c in obj.schema.columns
                if not c.name.startswith("__")
            ]
        if isinstance(obj, BaseTable):
            return [(c.name, False) for c in obj.schema.columns]
        if isinstance(obj, SystemTable):
            return [(c.name, False) for c in obj.schema.columns]
        if isinstance(obj, View):
            return self._columns_of_query(obj.query)
        return None

    def _columns_of_query(
        self, query: ast.Query
    ) -> Optional[list[tuple[str, bool]]]:
        from repro.semantics.binder import Binder

        try:
            bound = Binder(self.catalog).bind_query_as_relation(query, None)
        except SqlError:
            return None
        return [(c.name, c.is_measure) for c in bound.columns]

    def _scope(
        self, from_clause: Optional[ast.TableRef]
    ) -> tuple[list[_Rel], set[str]]:
        rels: list[_Rel] = []
        merged: set[str] = set()

        def add(ref: ast.TableRef) -> None:
            if isinstance(ref, ast.TableName):
                rels.append(
                    _Rel(
                        ref.alias or ref.name,
                        self._columns_for_name(ref.name),
                        ref,
                    )
                )
            elif isinstance(ref, ast.SubqueryRef):
                rels.append(
                    _Rel(ref.alias, self._columns_of_query(ref.query), ref)
                )
            elif isinstance(ref, ast.Join):
                add(ref.left)
                add(ref.right)
                merged.update(name.lower() for name in ref.using)
                if ref.natural and len(rels) >= 2:
                    left, right = rels[-2], rels[-1]
                    if left.by_name is not None and right.by_name is not None:
                        merged.update(
                            set(left.by_name) & set(right.by_name)
                        )
            else:  # PIVOT/UNPIVOT: columns are synthesized by the binder
                rels.append(_Rel(getattr(ref, "alias", None), None, ref))

        if from_clause is not None:
            add(from_clause)
        return rels, merged

    def _resolve(
        self, rels: list[_Rel], ref: ast.ColumnRef
    ) -> Optional[tuple[_Rel, str, bool]]:
        """Resolve a column reference to (relation, name, is_measure).

        Returns None when the reference cannot be resolved confidently
        (unknown relation, outer reference, ambiguity)."""
        if ref.qualifier is not None:
            for rel in rels:
                if rel.alias and rel.alias.lower() == ref.qualifier.lower():
                    hit = rel.find(ref.name)
                    if hit is None:
                        return None
                    return rel, hit[0], hit[1]
            return None
        matches = []
        for rel in rels:
            hit = rel.find(ref.name)
            if hit is not None:
                matches.append((rel, hit[0], hit[1]))
        if len(matches) == 1:
            return matches[0]
        return None

    # -- query traversal ----------------------------------------------------

    def lint_query(self, query: ast.Query, *, view_def: bool = False) -> None:
        if isinstance(query, ast.WithQuery):
            self._lint_with(query, view_def=view_def)
        elif isinstance(query, ast.SetOp):
            if query.limit is not None and not query.order_by:
                self.report(
                    "RP108",
                    "LIMIT without ORDER BY returns an arbitrary subset",
                    query,
                    hint="add ORDER BY to make the result deterministic",
                )
            self.lint_query(query.left, view_def=view_def)
            self.lint_query(query.right, view_def=view_def)
        elif isinstance(query, ast.Select):
            self._lint_select(query, view_def=view_def)
        elif isinstance(query, ast.Values):
            for sub in _sub_queries(query):
                self.lint_query(sub)
        elif isinstance(query, ast.ShowStats):
            # Reaching here means the node is nested (lint_statement returns
            # early for the legal top-level form).
            self.report(
                "RP112",
                "SHOW STATS is a top-level statement; it cannot be nested "
                "inside a view, subquery, or set operation",
                query,
                hint="query the metrics from application code via "
                "Database.metrics() instead",
            )

    def _lint_with(self, query: ast.WithQuery, *, view_def: bool) -> None:
        saved = dict(self.ctes)
        defined: list[ast.Cte] = []
        for cte in query.ctes:
            if self.catalog.get(cte.name) is not None:
                self.report(
                    "RP104",
                    f"CTE {cte.name!r} shadows a catalog table or view of "
                    f"the same name",
                    cte,
                    hint="rename the CTE to avoid surprising resolution",
                )
            self.lint_query(cte.query)
            columns = self._columns_of_query(cte.query)
            if columns is not None and cte.columns:
                columns = [
                    (alias, measure)
                    for alias, (_, measure) in zip(cte.columns, columns)
                ]
            self.ctes[cte.name.lower()] = columns
            defined.append(cte)
        # RP105: a CTE no later CTE and no part of the body ever names.
        for index, cte in enumerate(defined):
            used = False
            later = [c.query for c in defined[index + 1 :]] + [query.body]
            for scope in later:
                for node in scope.walk():
                    if (
                        isinstance(node, ast.TableName)
                        and node.name.lower() == cte.name.lower()
                    ):
                        used = True
                        break
                if used:
                    break
            if not used:
                self.report(
                    "RP105",
                    f"CTE {cte.name!r} is defined but never referenced",
                    cte,
                    hint="drop the unused CTE",
                )
        self.lint_query(query.body, view_def=view_def)
        self.ctes = saved

    def _is_aggregate_select(self, select: ast.Select) -> bool:
        if select.group_by or select.force_aggregate:
            return True
        for item in select.items:
            if item.is_measure:
                # ``expr AS MEASURE name`` defines a measure; its aggregate
                # calls do not collapse the query to one row.
                continue
            for node in _walk_pruning_queries(item.expr):
                if _is_plain_aggregate_call(node):
                    return True
        if select.having is not None:
            return True
        return False

    def _lint_select(self, select: ast.Select, *, view_def: bool) -> None:
        rels, merged = self._scope(select.from_clause)
        self._rule_select_stars(select, view_def)
        self._rule_duplicate_aliases(select, rels)
        self._rule_aggregate_in_where(select)
        self._rule_limit_without_order(select)
        self._rule_row_grain_measures(select, rels)
        self._rule_at_operands(select, rels)
        self._rule_ambiguous_columns(select, rels, merged)
        self._rule_summary_advisor(select)
        for sub in _sub_queries(select):
            self.lint_query(sub)

    # -- individual rules ---------------------------------------------------

    def _rule_select_stars(self, select: ast.Select, view_def: bool) -> None:
        if not view_def:
            return
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                star = (
                    f"{item.expr.qualifier}.*" if item.expr.qualifier else "*"
                )
                self.report(
                    "RP109",
                    f"SELECT {star} in a view definition silently changes "
                    f"when the underlying table does",
                    item,
                    hint="name the columns the view exposes",
                )

    def _rule_duplicate_aliases(
        self, select: ast.Select, rels: list[_Rel]
    ) -> None:
        seen_items: dict[str, ast.SelectItem] = {}
        for item in select.items:
            if not item.alias:
                continue
            lowered = item.alias.lower()
            if lowered in seen_items:
                self.report(
                    "RP104",
                    f"output alias {item.alias!r} duplicates an earlier "
                    f"select item",
                    item,
                    hint="give each output column a distinct alias",
                )
            else:
                seen_items[lowered] = item
        seen_rels: dict[str, _Rel] = {}
        for rel in rels:
            if not rel.alias:
                continue
            lowered = rel.alias.lower()
            if lowered in seen_rels:
                self.report(
                    "RP104",
                    f"table alias {rel.alias!r} is used twice in FROM",
                    rel.node,
                    hint="alias one of the relations differently",
                )
            else:
                seen_rels[lowered] = rel

    def _rule_aggregate_in_where(self, select: ast.Select) -> None:
        if select.where is None:
            return
        for node in _walk_pruning_queries(select.where):
            if _is_plain_aggregate_call(node):
                self.report(
                    "RP106",
                    f"aggregate function {node.name.upper()} is not allowed "
                    f"in WHERE",
                    node,
                    hint="filter groups with HAVING, or rows with a plain "
                    "predicate",
                )

    def _rule_limit_without_order(self, select: ast.Select) -> None:
        if select.limit is not None and not select.order_by:
            self.report(
                "RP108",
                "LIMIT without ORDER BY returns an arbitrary subset",
                select,
                hint="add ORDER BY to make the result deterministic",
            )

    def _measure_exempt_ids(self, roots: list[ast.Node]) -> set[int]:
        """ids of measure refs that are fine at row grain: AT operands and
        arguments of AGGREGATE()/EVAL()."""
        exempt: set[int] = set()
        for root in roots:
            for node in _walk_pruning_queries(root):
                if isinstance(node, ast.At):
                    operand = node.operand
                    while isinstance(operand, ast.At):
                        operand = operand.operand
                    exempt.add(id(operand))
                elif (
                    isinstance(node, ast.FunctionCall)
                    and node.name.upper() in ("AGGREGATE", "EVAL")
                    and node.args
                ):
                    for ref in node.args[0].walk():
                        exempt.add(id(ref))
        return exempt

    def _rule_row_grain_measures(
        self, select: ast.Select, rels: list[_Rel]
    ) -> None:
        if self._is_aggregate_select(select):
            return
        roots: list[ast.Node] = [item.expr for item in select.items]
        if select.where is not None:
            roots.append(select.where)
        roots.extend(o.expr for o in select.order_by)
        exempt = self._measure_exempt_ids(roots)
        for root in roots:
            for node in _walk_pruning_queries(root):
                if isinstance(node, ast.At):
                    # Modifier internals have dimension scoping, not row
                    # scoping; only the operand chain matters here.
                    continue
                if not isinstance(node, ast.ColumnRef) or id(node) in exempt:
                    continue
                resolved = self._resolve(rels, node)
                if resolved is not None and resolved[2]:
                    self.report(
                        "RP101",
                        f"measure {node.name!r} is evaluated at row grain "
                        f"here",
                        node,
                        hint="wrap it in AGGREGATE(...) in a grouped query, "
                        "or apply AT to set the context explicitly",
                    )

    def _rule_at_operands(self, select: ast.Select, rels: list[_Rel]) -> None:
        roots: list[ast.Node] = [item.expr for item in select.items]
        for clause in (select.where, select.having, select.qualify):
            if clause is not None:
                roots.append(clause)
        roots.extend(o.expr for o in select.order_by)
        for root in roots:
            for node in _walk_pruning_queries(root):
                if not isinstance(node, ast.At):
                    continue
                operand = node.operand
                while isinstance(operand, ast.At):
                    operand = operand.operand
                if isinstance(operand, ast.Literal):
                    self.report(
                        "RP102",
                        "AT can only be applied to a measure",
                        node,
                        hint="the operand must be a measure column",
                    )
                    continue
                if not isinstance(operand, ast.ColumnRef):
                    continue
                resolved = self._resolve(rels, operand)
                if resolved is None:
                    continue
                rel, name, is_measure = resolved
                if not is_measure:
                    self.report(
                        "RP102",
                        f"AT applied to {operand.name!r}, which is a regular "
                        f"column, not a measure",
                        node,
                        hint="only measure columns carry an evaluation "
                        "context to transform",
                    )
                    continue
                self._check_at_dimensions(node, rel)

    def _check_at_dimensions(self, at: ast.At, rel: _Rel) -> None:
        """RP103: every column a SET/ALL dimension expression references
        must be a (non-measure) column of the measure's source relation."""
        if rel.by_name is None:
            return

        def check_dim(dim: ast.Expression) -> None:
            for ref in dim.walk():
                if not isinstance(ref, ast.ColumnRef):
                    continue
                if ref.qualifier is not None and (
                    not rel.alias
                    or ref.qualifier.lower() != rel.alias.lower()
                ):
                    continue
                hit = rel.find(ref.name)
                if hit is None:
                    self.report(
                        "RP103",
                        f"{ref.name!r} is not a column of the measure's "
                        f"source relation"
                        + (f" {rel.alias!r}" if rel.alias else ""),
                        ref,
                        hint="AT dimensions must be expressions over the "
                        "measure table's dimension columns",
                    )
                elif hit[1]:
                    self.report(
                        "RP103",
                        f"{ref.name!r} is a measure, not a dimension of the "
                        f"measure's source relation",
                        ref,
                        hint="AT dimensions must be non-measure columns",
                    )

        for modifier in at.modifiers:
            if isinstance(modifier, ast.AllModifier):
                for dim in modifier.dims:
                    check_dim(dim)
            elif isinstance(modifier, ast.SetModifier):
                check_dim(modifier.dim)

    def _rule_ambiguous_columns(
        self, select: ast.Select, rels: list[_Rel], merged: set[str]
    ) -> None:
        if len(rels) < 2 or any(rel.by_name is None for rel in rels):
            return
        aliases = {
            item.alias.lower() for item in select.items if item.alias
        }
        roots: list[ast.Node] = [item.expr for item in select.items]
        for clause in (select.where, select.having, select.qualify):
            if clause is not None:
                roots.append(clause)
        for element in select.group_by:
            roots.append(element)
        reported: set[str] = set()
        for root in roots:
            for node in _walk_pruning_queries(root):
                if isinstance(node, ast.At):
                    continue  # AT dims resolve against the measure source
                if not isinstance(node, ast.ColumnRef):
                    continue
                if node.qualifier is not None:
                    continue
                lowered = node.name.lower()
                if lowered in merged or lowered in reported:
                    continue
                holders = [
                    rel for rel in rels if rel.find(node.name) is not None
                ]
                if len(holders) > 1 and lowered not in aliases:
                    names = ", ".join(
                        rel.alias or "<subquery>" for rel in holders
                    )
                    reported.add(lowered)
                    self.report(
                        "RP107",
                        f"column {node.name!r} is ambiguous: it exists in "
                        f"{names}",
                        node,
                        hint="qualify the column with its table alias",
                    )

    def _rule_summary_advisor(self, select: ast.Select) -> None:
        if not isinstance(select.from_clause, ast.TableName):
            return
        if not self._is_aggregate_select(select):
            return
        if not self.catalog.materialized_views_over(select.from_clause.name):
            return
        try:
            outcome = rewrite_query(self.catalog, select, record=False)
        except SqlError:
            return
        for report in outcome.reports:
            if report.status == "hit":
                continue
            if report.status == "stale":
                self.report(
                    "RP110",
                    f"summary {report.view!r} is stale and was skipped",
                    select,
                    hint=f"REFRESH MATERIALIZED VIEW {report.view} to "
                    f"re-enable it",
                )
            else:
                self.report(
                    "RP110",
                    f"summary {report.view!r} cannot answer this query "
                    f"[{report.rule}]: {report.reason}",
                    select,
                )
