"""Diagnostic objects and the RPxxx code registry.

Every static-analysis finding is a :class:`Diagnostic` carrying a stable
``RPxxx`` code, a :class:`~repro.sql.ast.Span` locating the offending
construct in the original SQL text, a human message, and (usually) a hint
suggesting the fix.  Codes are stable across releases so tests and editor
integrations can match on them; new rules take new codes rather than reusing
retired ones.

Severity ordering is ``error > warning > info``.  Errors mean the statement
will not bind or will not do what it says; warnings flag constructs that run
but are probably mistakes; info diagnostics are advisory (e.g. the
summary-matchability advisor explaining why a materialized summary cannot
answer a query).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.sql.ast import Span

__all__ = ["Diagnostic", "Severity", "RULES", "rule_severity"]


class Severity(enum.IntEnum):
    """Diagnostic severity; higher values sort first in reports."""

    INFO = 1
    WARNING = 2
    ERROR = 3

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


#: code -> (severity, one-line rule summary).  The catalogue of every rule
#: the linter can emit; ``docs/STATIC_ANALYSIS.md`` documents each with
#: examples.
RULES: dict[str, tuple[Severity, str]] = {
    "RP001": (Severity.ERROR, "statement does not lex or parse"),
    "RP002": (Severity.ERROR, "statement does not bind (semantic error)"),
    "RP101": (
        Severity.WARNING,
        "measure referenced at row grain outside AGGREGATE/AT",
    ),
    "RP102": (Severity.ERROR, "AT applied to a non-measure expression"),
    "RP103": (
        Severity.ERROR,
        "AT modifier names a column that is not a dimension of the "
        "measure's source",
    ),
    "RP104": (Severity.WARNING, "duplicate or shadowed alias"),
    "RP105": (Severity.WARNING, "CTE is defined but never referenced"),
    "RP106": (Severity.ERROR, "aggregate function call in WHERE"),
    "RP107": (Severity.ERROR, "unqualified column name is ambiguous"),
    "RP108": (Severity.WARNING, "LIMIT without a deterministic ORDER BY"),
    "RP109": (Severity.WARNING, "SELECT * in a view or summary definition"),
    "RP110": (
        Severity.INFO,
        "grouped query cannot be answered from a materialized summary",
    ),
    "RP111": (
        Severity.ERROR,
        "EXPLAIN [ANALYZE] applied to a DDL/DML statement",
    ),
    "RP112": (
        Severity.ERROR,
        "SHOW STATS nested inside a view, subquery, or EXPLAIN",
    ),
    "RP113": (
        Severity.ERROR,
        "materialized view defined over a repro_* system table",
    ),
    "RP114": (
        Severity.ERROR,
        "comparison between incompatible types",
    ),
    "RP115": (
        Severity.WARNING,
        "predicate is always NULL or always false",
    ),
    "RP116": (
        Severity.ERROR,
        "CAST of a constant that can never succeed",
    ),
    "RP117": (
        Severity.ERROR,
        "AT SET value type is incompatible with the dimension column",
    ),
    "RP118": (
        Severity.WARNING,
        "grouping key may be NULL from outer-join padding",
    ),
}


def rule_severity(code: str) -> Severity:
    return RULES[code][0]


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    ``span`` is ``None`` only when the problem has no source position at all
    (e.g. a lexer error at end of input); rules over parsed SQL always carry
    the span of the offending node.
    """

    code: str
    severity: Severity
    message: str
    span: Optional[Span] = None
    hint: Optional[str] = None

    @property
    def line(self) -> int:
        return self.span.line if self.span else 0

    @property
    def column(self) -> int:
        return self.span.column if self.span else 0

    def render(self) -> str:
        """``error RP106 at line 3, column 7: ... (hint: ...)``"""
        where = f" at {self.span}" if self.span else ""
        hint = f" (hint: {self.hint})" if self.hint else ""
        return f"{self.severity} {self.code}{where}: {self.message}{hint}"

    def __str__(self) -> str:
        return self.render()


def sort_key(diag: Diagnostic) -> tuple:
    """Severity-major, then source order."""
    return (-int(diag.severity), diag.line, diag.column, diag.code)


def sorted_diagnostics(diags: list[Diagnostic]) -> list[Diagnostic]:
    return sorted(diags, key=sort_key)
