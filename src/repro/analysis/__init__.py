"""Static analysis: lint diagnostics and the plan/IR validator.

Two subsystems share this package:

* the **linter** (:func:`lint_sql`) — RPxxx diagnostics over parsed SQL,
  surfaced via :meth:`Database.lint`, the shell's ``\\lint`` meta command,
  and ``EXPLAIN (LINT)``;
* the **validator** (:func:`validate_plan`) — structural invariant checks
  over bound logical plans, run after binding and after every optimizer
  pass when ``REPRO_VALIDATE=1`` (or ``Database(validate=True)``).

``python -m repro.analysis --self-check`` lints the paper listings and the
bundled examples, which is what ``make lint`` and CI run.
"""

from repro.analysis.diagnostics import Diagnostic, RULES, Severity
from repro.analysis.linter import lint_query, lint_sql, lint_statement
from repro.analysis.validator import (
    check_plan,
    plan_fingerprint,
    validate_plan,
    validation_enabled,
)

__all__ = [
    "Diagnostic",
    "RULES",
    "Severity",
    "check_plan",
    "lint_query",
    "lint_sql",
    "lint_statement",
    "plan_fingerprint",
    "validate_plan",
    "validation_enabled",
]
