"""``python -m repro.analysis --self-check``: lint the repo's own SQL.

The self-check exercises the linter against every SQL surface the repo
ships:

* the paper's listings (including the derived expansions, Listings 5/11)
  run against the paper tables — all must lint completely clean;
* every script in ``examples/``: each SQL string constant is linted and then
  executed in source order against a fresh database, so the catalog evolves
  exactly as the example's reader sees it.  A statement that executes
  successfully must not carry warning- or error-severity diagnostics.

``make lint`` and the CI lint job run this; exit status 1 on any finding.
"""

from __future__ import annotations

import argparse
import ast as pyast
import pathlib
import sys

from repro import Database
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.errors import SqlError
from repro.workloads.listings import LISTINGS, SETUP, expanded_listings
from repro.workloads.paper_data import load_paper_tables

_SQL_HEADS = (
    "SELECT",
    "WITH",
    "VALUES",
    "CREATE",
    "INSERT",
    "UPDATE",
    "DELETE",
    "DROP",
    "TRUNCATE",
    "REFRESH",
    "EXPLAIN",
)


def _looks_like_sql(text: str) -> bool:
    head = text.lstrip().split(None, 1)
    return bool(head) and head[0].upper() in _SQL_HEADS


def _sql_constants(path: pathlib.Path) -> list[str]:
    """Every SQL-looking string constant in a Python file, in source order."""
    tree = pyast.parse(path.read_text(), filename=str(path))
    found: list[str] = []
    for node in pyast.walk(tree):
        if isinstance(node, pyast.Constant) and isinstance(node.value, str):
            if _looks_like_sql(node.value):
                found.append(node.value)
    return found


def _problems(diags: list[Diagnostic], *, threshold: Severity) -> list[Diagnostic]:
    return [d for d in diags if d.severity >= threshold]


def _print_findings(label: str, sql: str, diags: list[Diagnostic]) -> None:
    print(f"FAIL {label}")
    first_line = " ".join(sql.strip().splitlines()[:1])
    print(f"  sql: {first_line[:90]}")
    for diag in diags:
        print(f"  {diag.render()}")


def _check_listings() -> int:
    failures = 0
    db = Database()
    load_paper_tables(db)
    for name, ddl in SETUP.items():
        diags = db.lint(ddl)
        if diags:
            _print_findings(f"setup:{name}", ddl, diags)
            failures += 1
        db.execute(ddl)
    listings = dict(LISTINGS)
    listings.update(expanded_listings(db))
    typed = 0
    for name, sql in sorted(listings.items()):
        diags = db.lint(sql)
        if diags:
            _print_findings(f"paper:{name}", sql, diags)
            failures += 1
        failures += _check_listing_types(db, name, sql)
        typed += 1
    print(
        f"paper listings: {len(listings)} queries + {len(SETUP)} views, "
        f"{typed} dataflow-typed, {failures} with findings"
    )
    return failures


def _check_listing_types(db: Database, name: str, sql: str) -> int:
    """Dataflow coverage gate: every operator in a listing's plan must
    carry facts, and no inferred output column type may be UNKNOWN."""
    from repro.sql import parse_statement
    from repro.types import UNKNOWN

    statement = parse_statement(sql)
    query = getattr(statement, "query", None)
    if query is None:
        return 0
    try:
        planned = db.plan_query(query, sql=sql)
    except SqlError as exc:
        print(f"FAIL types:{name}: planning failed: {exc}")
        return 1
    failures = 0

    def visit(plan) -> None:
        nonlocal failures
        facts = getattr(plan, "facts", None)
        if facts is None:
            print(
                f"FAIL types:{name}: operator {plan.label()} carries no "
                f"dataflow facts"
            )
            failures += 1
        for child in plan.inputs():
            visit(child)

    visit(planned.plan)
    root_facts = getattr(planned.plan, "facts", None)
    if root_facts is not None:
        for column in root_facts.columns:
            if column.dtype.unwrap() is UNKNOWN:
                print(
                    f"FAIL types:{name}: output column "
                    f"{column.name or '?'!r} has UNKNOWN inferred type"
                )
                failures += 1
    return failures


def _check_examples(examples_dir: pathlib.Path) -> int:
    failures = 0
    executed = 0
    lint_only = 0
    for path in sorted(examples_dir.glob("*.py")):
        db = Database()
        for sql in _sql_constants(path):
            diags = db.lint(sql)
            try:
                db.execute_script(sql)
            except SqlError:
                # The constant depends on runtime state the extraction
                # cannot reproduce: tables loaded from Python, parameters,
                # or it is a fragment of dynamically-built SQL.  Parse and
                # binding diagnostics are meaningless then, but the purely
                # structural rules still apply.
                lint_only += 1
                diags = [
                    d for d in diags if d.code not in ("RP001", "RP002")
                ]
            else:
                executed += 1
            problems = _problems(diags, threshold=Severity.WARNING)
            if problems:
                _print_findings(f"example:{path.name}", sql, problems)
                failures += 1
    print(
        f"examples: {executed} statements executed+linted, "
        f"{lint_only} linted only, {failures} with findings"
    )
    return failures


def _check_example_flips(examples_dir: pathlib.Path) -> int:
    """Replay every example's SQL with telemetry on; count plan flips.

    The examples are deterministic, so any ``plan_flip`` event is a
    regression — either nondeterminism crept into planning, or an example
    started re-running a statement across a plan-changing DDL.
    """
    failures = 0
    checked = 0
    for path in sorted(examples_dir.glob("*.py")):
        db = Database(telemetry=True)
        for sql in _sql_constants(path):
            try:
                db.execute_script(sql)
            except SqlError:
                # Same tolerance as _check_examples: the constant depends
                # on runtime state the replay cannot reproduce.
                continue
        checked += 1
        flips = [e for e in db.events() if e["event"] == "plan_flip"]
        if flips:
            failures += 1
            print(f"FAIL example:{path.name}: {len(flips)} plan flip(s)")
            for flip in flips:
                print(
                    f"  {flip['fingerprint']}: {flip['old_strategy']}/"
                    f"{flip['old_plan_hash']} -> {flip['new_strategy']}/"
                    f"{flip['new_plan_hash']}"
                )
                print(f"    sql: {flip['query'][:90]}")
    print(f"flip-check: {checked} examples replayed, {failures} with plan flips")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static-analysis self-check over the repo's own SQL.",
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="lint the paper listings and the bundled examples",
    )
    parser.add_argument(
        "--flip-check",
        action="store_true",
        help="replay the examples with telemetry on and fail on any "
        "plan_flip event",
    )
    parser.add_argument(
        "--lock-check",
        action="store_true",
        help="statically check repro/server and repro/introspect for "
        "Database state accessed outside rwlock scopes",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="with --lock-check, also print the allowlisted scopes",
    )
    parser.add_argument(
        "--examples-dir",
        default=None,
        help="override the examples directory (default: ./examples)",
    )
    args = parser.parse_args(argv)
    if not args.self_check and not args.flip_check and not args.lock_check:
        parser.print_help()
        return 2

    failures = 0
    examples_dir = pathlib.Path(args.examples_dir or "examples")
    if args.self_check:
        failures += _check_listings()
        if examples_dir.is_dir():
            failures += _check_examples(examples_dir)
        else:
            print(f"examples: directory {examples_dir} not found, skipped")
    if args.flip_check:
        if examples_dir.is_dir():
            failures += _check_example_flips(examples_dir)
        else:
            print(f"flip-check: directory {examples_dir} not found, skipped")
    if args.lock_check:
        from repro.analysis.lockcheck import run_lock_check

        failures += run_lock_check(verbose=args.verbose)
    if failures:
        print(f"self-check: FAILED ({failures} findings)")
        return 1
    print("self-check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
