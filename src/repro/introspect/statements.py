"""Per-fingerprint statement statistics and the plan-flip log.

The :class:`StatementStatsStore` is the storage behind the
``repro_stat_statements`` and ``repro_plan_flips`` system tables: one
entry per statement fingerprint accumulating calls, wall time, rows, and
errors, plus the last observed execution strategy and plan hash.  When a
fingerprint's plan hash *changes* between executions, :meth:`observe`
returns a :class:`PlanFlip` describing the transition; the Telemetry
facade turns that into a ``plan_flip`` event and a ``plan_flips_total``
increment.

Everything here is plain bookkeeping — no clocks beyond the flip
timestamp, and the flip log is a bounded ring like every other telemetry
buffer.  The store is thread-safe: concurrent sessions observe into the
same fingerprint entry, so every mutation and every read happens under
one store lock, and :meth:`reset` clears the entries *and* the flip ring
atomically — a reader can never see a flip whose fingerprint is already
gone from the statistics.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import deque
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "StatementEntry",
    "StrategyEntry",
    "PlanFlip",
    "StatementStatsStore",
]


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="microseconds")


@dataclass
class StatementEntry:
    """Lifetime statistics for one statement fingerprint."""

    fingerprint: str
    query: str  # normalized (literal-free) text
    calls: int = 0
    total_wall_ms: float = 0.0
    min_wall_ms: Optional[float] = None
    max_wall_ms: Optional[float] = None
    rows_returned: int = 0
    errors: int = 0
    last_strategy: Optional[str] = None
    last_plan_hash: Optional[str] = None

    @property
    def mean_wall_ms(self) -> float:
        return self.total_wall_ms / self.calls if self.calls else 0.0

    def as_row(self) -> tuple:
        """The ``repro_stat_statements`` row, in column order."""
        return (
            self.fingerprint,
            self.query,
            self.calls,
            self.total_wall_ms,
            self.mean_wall_ms,
            self.min_wall_ms,
            self.max_wall_ms,
            self.rows_returned,
            self.errors,
            self.last_strategy,
            self.last_plan_hash,
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "query": self.query,
            "calls": self.calls,
            "total_wall_ms": self.total_wall_ms,
            "mean_wall_ms": self.mean_wall_ms,
            "min_wall_ms": self.min_wall_ms,
            "max_wall_ms": self.max_wall_ms,
            "rows_returned": self.rows_returned,
            "errors": self.errors,
            "last_strategy": self.last_strategy,
            "last_plan_hash": self.last_plan_hash,
        }


@dataclass
class StrategyEntry:
    """Lifetime statistics for one (fingerprint, strategy) pair.

    This is the timing *history* behind ``repro_strategy_stats``: where
    :class:`StatementEntry` keeps only the last observed strategy, one
    of these accumulates per strategy, so inline-vs-window-vs-subquery
    -vs-WinMagic costs for the same statement survive across executions
    and a cost-based chooser can compare them.
    """

    fingerprint: str
    strategy: str
    query: str  # normalized (literal-free) text
    calls: int = 0
    total_wall_ms: float = 0.0
    min_wall_ms: Optional[float] = None
    max_wall_ms: Optional[float] = None
    rows_returned: int = 0

    @property
    def mean_wall_ms(self) -> float:
        return self.total_wall_ms / self.calls if self.calls else 0.0

    def as_row(self) -> tuple:
        """The ``repro_strategy_stats`` row, in column order."""
        return (
            self.fingerprint,
            self.strategy,
            self.query,
            self.calls,
            self.total_wall_ms,
            self.mean_wall_ms,
            self.min_wall_ms,
            self.max_wall_ms,
            self.rows_returned,
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "strategy": self.strategy,
            "query": self.query,
            "calls": self.calls,
            "total_wall_ms": self.total_wall_ms,
            "mean_wall_ms": self.mean_wall_ms,
            "min_wall_ms": self.min_wall_ms,
            "max_wall_ms": self.max_wall_ms,
            "rows_returned": self.rows_returned,
        }


@dataclass
class PlanFlip:
    """One detected plan change for a statement fingerprint."""

    seq: int
    ts: str
    fingerprint: str
    query: str
    old_strategy: Optional[str]
    new_strategy: Optional[str]
    old_plan_hash: str
    new_plan_hash: str

    def as_row(self) -> tuple:
        return (
            self.seq,
            self.ts,
            self.fingerprint,
            self.query,
            self.old_strategy,
            self.new_strategy,
            self.old_plan_hash,
            self.new_plan_hash,
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "fingerprint": self.fingerprint,
            "query": self.query,
            "old_strategy": self.old_strategy,
            "new_strategy": self.new_strategy,
            "old_plan_hash": self.old_plan_hash,
            "new_plan_hash": self.new_plan_hash,
        }


class StatementStatsStore:
    """Fingerprint-keyed statement statistics plus the flip ring."""

    def __init__(self, *, flip_capacity: int = 200):
        self._entries: Dict[str, StatementEntry] = {}
        self._strategy: Dict[Tuple[str, str], StrategyEntry] = {}
        self._flips: deque = deque(maxlen=flip_capacity)
        self._flip_seq = 0
        #: One lock for the whole store: entry mutation, flip append, and
        #: reset must be atomic with respect to concurrent sessions.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _entry(self, fingerprint: str, query: str) -> StatementEntry:
        entry = self._entries.get(fingerprint)
        if entry is None:
            entry = StatementEntry(fingerprint, query)
            self._entries[fingerprint] = entry
        return entry

    def observe(
        self,
        fingerprint: str,
        query: str,
        duration_ms: float,
        *,
        rows: int = 0,
        strategy: Optional[str] = None,
        plan_hash: Optional[str] = None,
    ) -> Optional[PlanFlip]:
        """Record one completed execution; returns the flip, if any.

        A flip is a *change* of plan hash: the first hash seen for a
        fingerprint only seeds the detector, and statements with no plan
        (``plan_hash`` None — DDL, utilities) never flip or overwrite a
        stored hash.
        """
        with self._lock:
            return self._observe_locked(
                fingerprint,
                query,
                duration_ms,
                rows=rows,
                strategy=strategy,
                plan_hash=plan_hash,
            )

    def _observe_locked(
        self,
        fingerprint: str,
        query: str,
        duration_ms: float,
        *,
        rows: int,
        strategy: Optional[str],
        plan_hash: Optional[str],
    ) -> Optional[PlanFlip]:
        entry = self._entry(fingerprint, query)
        entry.calls += 1
        entry.total_wall_ms += duration_ms
        entry.min_wall_ms = (
            duration_ms
            if entry.min_wall_ms is None
            else min(entry.min_wall_ms, duration_ms)
        )
        entry.max_wall_ms = (
            duration_ms
            if entry.max_wall_ms is None
            else max(entry.max_wall_ms, duration_ms)
        )
        entry.rows_returned += rows
        if strategy is not None:
            key = (fingerprint, strategy)
            per = self._strategy.get(key)
            if per is None:
                per = StrategyEntry(fingerprint, strategy, query)
                self._strategy[key] = per
            per.calls += 1
            per.total_wall_ms += duration_ms
            per.min_wall_ms = (
                duration_ms
                if per.min_wall_ms is None
                else min(per.min_wall_ms, duration_ms)
            )
            per.max_wall_ms = (
                duration_ms
                if per.max_wall_ms is None
                else max(per.max_wall_ms, duration_ms)
            )
            per.rows_returned += rows
        flip: Optional[PlanFlip] = None
        if plan_hash is not None:
            if (
                entry.last_plan_hash is not None
                and entry.last_plan_hash != plan_hash
            ):
                self._flip_seq += 1
                flip = PlanFlip(
                    seq=self._flip_seq,
                    ts=_utc_now(),
                    fingerprint=fingerprint,
                    query=query,
                    old_strategy=entry.last_strategy,
                    new_strategy=strategy,
                    old_plan_hash=entry.last_plan_hash,
                    new_plan_hash=plan_hash,
                )
                self._flips.append(flip)
            entry.last_plan_hash = plan_hash
        if strategy is not None:
            entry.last_strategy = strategy
        return flip

    def record_error(self, fingerprint: str, query: str) -> None:
        """Count a failed execution (never a call, never a flip)."""
        with self._lock:
            self._entry(fingerprint, query).errors += 1

    def entries(self) -> List[StatementEntry]:
        """All entries, in first-seen order (point-in-time copies)."""
        with self._lock:
            return [dataclasses.replace(e) for e in self._entries.values()]

    def flips(self) -> List[PlanFlip]:
        """Retained plan flips, oldest first."""
        with self._lock:
            return list(self._flips)

    def strategy_entries(self) -> List[StrategyEntry]:
        """Per-(fingerprint, strategy) history, in first-seen order."""
        with self._lock:
            return [dataclasses.replace(e) for e in self._strategy.values()]

    def snapshot(
        self,
    ) -> Tuple[List[StatementEntry], List[PlanFlip], List[StrategyEntry]]:
        """Entries, flips, and strategy history under one lock acquisition.

        This is the consistency primitive behind the
        ``repro_stat_statements`` / ``repro_plan_flips`` /
        ``repro_strategy_stats`` snapshot group: a query joining the
        tables sees one store state, so a flip or strategy row always has
        a matching statistics row even while other sessions execute or
        :meth:`reset` concurrently.
        """
        with self._lock:
            return (
                [dataclasses.replace(e) for e in self._entries.values()],
                list(self._flips),
                [dataclasses.replace(e) for e in self._strategy.values()],
            )

    def reset(self) -> None:
        """Discard all statistics and retained flips (``reset_stats()``).

        All three clears happen under the store lock — atomically, as far
        as any concurrent observer is concerned — so ``repro_plan_flips``
        can never reference a fingerprint absent from
        ``repro_stat_statements``.
        """
        with self._lock:
            self._entries.clear()
            self._strategy.clear()
            self._flips.clear()
