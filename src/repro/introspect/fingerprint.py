"""Statement fingerprints and plan hashes.

A **fingerprint** identifies a statement up to its constants: literals are
replaced by ``?`` placeholders and IN-lists collapse to a single ``?``, so
``WHERE x = 1`` and ``WHERE x = 2`` — or ``IN (1, 2)`` and ``IN (1, 2, 3)``
— aggregate under one ``repro_stat_statements`` row, pg_stat_statements
style.  Normalization is a pure AST transform rendered back through the
canonical printer, so two spellings of the same statement (whitespace,
comments, redundant parens the parser drops) share a fingerprint too.

A **plan hash** identifies *how* a statement ran: the chosen execution
strategy (``summary`` vs ``interpreter``) plus the bound plan's operator
tree shape.  The flip detector compares consecutive plan hashes per
fingerprint; a change is the "why did this query get slow" primitive.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Optional

from repro.plan import logical as plans
from repro.sql import ast
from repro.sql.printer import to_sql
from repro.sql.visitor import transform

__all__ = [
    "fingerprint_statement",
    "normalize_statement",
    "plan_shape",
    "plan_hash",
    "is_introspection_plan",
]

#: Hex digest prefix lengths.  Short enough to read in a result grid, long
#: enough that collisions are out of reach for any real workload.
_FINGERPRINT_LEN = 16
_PLAN_HASH_LEN = 12


def _normalize_expr(expr: ast.Expression) -> ast.Expression:
    if isinstance(expr, ast.Literal):
        return ast.Parameter(0)
    if isinstance(expr, ast.InList) and len(expr.items) != 1:
        # Children were already normalized (bottom-up), so the items are
        # all ``?`` now; collapsing them makes the list length irrelevant.
        return dataclasses.replace(expr, items=[ast.Parameter(0)])
    return expr


def normalize_statement(statement: ast.Node) -> str:
    """The canonical, literal-free SQL text of ``statement``."""
    return to_sql(transform(statement, _normalize_expr))


def fingerprint_statement(statement: ast.Node) -> tuple[str, str]:
    """``(fingerprint, normalized_sql)`` for a parsed statement.

    The fingerprint is a sha256 prefix of the normalized text; identical
    statements modulo constants hash identically.
    """
    text = normalize_statement(statement)
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    return digest[:_FINGERPRINT_LEN], text


def plan_shape(plan: plans.LogicalPlan) -> str:
    """A nested-label rendering of the plan's operator tree.

    Labels carry the discriminating detail (``Scan(Orders)`` vs
    ``Scan(prod_rev)``), so a summary rewrite or a join-order change
    yields a different shape string.
    """
    children = ", ".join(plan_shape(child) for child in plan.inputs())
    label = plan.label()
    return f"{label}[{children}]" if children else label


def plan_hash(strategy: str, shape: str) -> str:
    """Hash of (execution strategy, operator tree shape)."""
    digest = hashlib.sha256(f"{strategy}|{shape}".encode("utf-8")).hexdigest()
    return digest[:_PLAN_HASH_LEN]


def is_introspection_plan(plan: Optional[plans.LogicalPlan]) -> bool:
    """True when the plan scans at least one system table and no base table.

    Such queries are the database observing itself; they count in
    ``introspection_queries_total`` instead of ``queries_total``,
    mirroring the internal-maintenance exclusion.
    """
    if plan is None:
        return False
    saw_system = False
    for node in plan.walk():
        if isinstance(node, plans.SystemScan):
            saw_system = True
        elif isinstance(node, plans.Scan):
            return False
    return saw_system
