"""Queryable introspection: the ``repro_*`` system tables.

The database observing itself, as SQL.  This package provides

* :func:`install_system_tables` — registers the twelve virtual
  ``repro_*`` tables in a Database's catalog (see
  :data:`SYSTEM_TABLE_NAMES`), from statement statistics
  (``repro_stat_statements``, ``repro_strategy_stats``,
  ``repro_plan_flips``) through live progress
  (``repro_running_queries``) to ``ANALYZE`` results
  (``repro_table_stats``, ``repro_column_stats``);
* statement fingerprinting (:func:`fingerprint_statement`) — literals
  normalized to ``?`` and IN-lists collapsed over the AST, so repeated
  parameterized statements aggregate under one fingerprint;
* plan hashing (:func:`plan_shape` / :func:`plan_hash`) and the
  per-fingerprint :class:`StatementStatsStore` whose flip detector backs
  ``repro_plan_flips``.

Column references, fingerprinting rules, and plan-flip semantics are
documented in ``docs/OBSERVABILITY.md`` ("System tables").
"""

from repro.introspect.fingerprint import (
    fingerprint_statement,
    is_introspection_plan,
    normalize_statement,
    plan_hash,
    plan_shape,
)
from repro.introspect.statements import (
    PlanFlip,
    StatementEntry,
    StatementStatsStore,
    StrategyEntry,
)
from repro.introspect.tables import SYSTEM_TABLE_NAMES, install_system_tables

__all__ = [
    "SYSTEM_TABLE_NAMES",
    "PlanFlip",
    "StatementEntry",
    "StatementStatsStore",
    "StrategyEntry",
    "fingerprint_statement",
    "install_system_tables",
    "is_introspection_plan",
    "normalize_statement",
    "plan_hash",
    "plan_shape",
]
