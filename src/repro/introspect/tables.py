"""The ``repro_*`` system tables: schemas and providers.

:func:`install_system_tables` registers twelve read-only virtual tables
in a Database's catalog.  Each is a
:class:`~repro.catalog.objects.SystemTable` whose provider closes over
the Database and computes rows on demand — no storage, no refresh,
always current.  They bind and scan like ordinary tables, so views
(including measure views) compose over them and the whole measure
vocabulary (``AS MEASURE``, ``AGGREGATE``, ``AT``) applies to the
engine's own statistics.

Telemetry-backed tables (``repro_stat_statements``, ``repro_strategy_stats``,
``repro_metrics``, ``repro_events``, ``repro_slow_queries``,
``repro_plan_flips``) are empty — not errors — when telemetry is off;
``repro_tables``, ``repro_matviews``, and the ``ANALYZE``-backed
``repro_table_stats`` / ``repro_column_stats`` read the catalog and work
regardless.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.catalog.objects import BaseTable, SystemTable, View
from repro.catalog.schema import Column, TableSchema
from repro.types import BOOLEAN, DOUBLE, INTEGER, VARCHAR

if TYPE_CHECKING:  # pragma: no cover
    from repro.api import Database

__all__ = ["SYSTEM_TABLE_NAMES", "install_system_tables"]

#: Every system table this module installs, in registration order.
SYSTEM_TABLE_NAMES = (
    "repro_stat_statements",
    "repro_plan_flips",
    "repro_strategy_stats",
    "repro_metrics",
    "repro_events",
    "repro_slow_queries",
    "repro_matviews",
    "repro_tables",
    "repro_running_queries",
    "repro_query_progress",
    "repro_table_stats",
    "repro_column_stats",
)


def _schema(*columns: tuple) -> TableSchema:
    return TableSchema([Column(name, dtype) for name, dtype in columns])


def _stat_text(value) -> "str | None":
    """Render a min/max statistic as text (the column type varies per
    analyzed column, the system-table column cannot)."""
    return None if value is None else str(value)


def install_system_tables(db: "Database") -> None:
    """Register the ``repro_*`` introspection tables in ``db``'s catalog."""

    def stat_statements() -> list[tuple]:
        if db.telemetry is None:
            return []
        return [e.as_row() for e in db.telemetry.statements.entries()]

    def plan_flips() -> list[tuple]:
        if db.telemetry is None:
            return []
        return [f.as_row() for f in db.telemetry.statements.flips()]

    def strategy_stats() -> list[tuple]:
        if db.telemetry is None:
            return []
        return [
            e.as_row() for e in db.telemetry.statements.strategy_entries()
        ]

    def statements_group() -> dict[str, list[tuple]]:
        """All three statement tables from ONE locked read of the store.

        A query touching repro_stat_statements, repro_plan_flips, and
        repro_strategy_stats gets rows derived from a single
        :meth:`StatementStatsStore.snapshot`, so a concurrent
        ``reset_stats()`` (which clears all three atomically) can never
        leave a flip or strategy row pointing at a fingerprint the
        statistics no longer contain.
        """
        if db.telemetry is None:
            return {
                "repro_stat_statements": [],
                "repro_plan_flips": [],
                "repro_strategy_stats": [],
            }
        entries, flips, strategies = db.telemetry.statements.snapshot()
        return {
            "repro_stat_statements": [e.as_row() for e in entries],
            "repro_plan_flips": [f.as_row() for f in flips],
            "repro_strategy_stats": [s.as_row() for s in strategies],
        }

    def table_stats_group() -> dict[str, list[tuple]]:
        """Both ANALYZE tables from one pass over the stored statistics,
        so a column row always has a matching table row even if another
        session re-analyzes between scans."""
        table_rows: list[tuple] = []
        column_rows: list[tuple] = []
        for stats in db.catalog.all_table_stats():
            mods = db.catalog.mods_since_analyze(stats.table)
            table_rows.append(
                (
                    stats.table,
                    stats.row_count,
                    len(stats.columns),
                    stats.analyzed_at,
                    mods,
                    mods > 0,
                )
            )
            for column in stats.columns:
                column_rows.append(
                    (
                        stats.table,
                        column.column,
                        column.dtype,
                        column.ndv,
                        column.null_count,
                        column.null_frac,
                        _stat_text(column.min_value),
                        _stat_text(column.max_value),
                        column.histogram_json(),
                    )
                )
        return {
            "repro_table_stats": table_rows,
            "repro_column_stats": column_rows,
        }

    def metrics() -> list[tuple]:
        if db.telemetry is None:
            return []
        return db.telemetry.registry.rows()

    def events() -> list[tuple]:
        if db.telemetry is None:
            return []
        rows = []
        for entry in db.telemetry.events.tail():
            detail = {
                k: v
                for k, v in entry.items()
                if k not in ("seq", "ts", "event", "sql")
            }
            rows.append(
                (
                    entry["seq"],
                    entry["ts"],
                    entry["event"],
                    entry.get("sql"),
                    json.dumps(detail, default=str, sort_keys=True),
                )
            )
        return rows

    def slow_queries() -> list[tuple]:
        if db.telemetry is None or db.telemetry.slow_log is None:
            return []
        return [
            (
                entry["seq"],
                entry["ts"],
                entry["sql"],
                entry["duration_ms"],
                entry["threshold_ms"],
            )
            for entry in db.telemetry.slow_log.entries()
        ]

    def matviews() -> list[tuple]:
        rows = []
        for view in db.catalog.materialized_views():
            stats = view.stats
            rows.append(
                (
                    view.name,
                    view.definition.source_name,
                    view.stale,
                    len(view.table),
                    stats.hits,
                    stats.rejects,
                    stats.stale_skips,
                    stats.refreshes,
                    stats.incremental_merges,
                    stats.invalidations,
                    stats.last_reject_reason,
                )
            )
        return rows

    def tables() -> list[tuple]:
        rows = []
        for obj in db.catalog:
            if isinstance(obj, BaseTable):
                columns, count = len(obj.schema.columns), len(obj.table)
            else:
                assert isinstance(obj, View)
                columns = len(obj.column_names) or None
                count = None
            rows.append((obj.name, obj.kind.lower(), columns, count))
        for system in db.catalog.system_tables():
            rows.append(
                (
                    system.name,
                    system.kind.lower(),
                    len(system.schema.columns),
                    None,
                )
            )
        return sorted(rows, key=lambda r: r[0].lower())

    def running_group() -> dict[str, list[tuple]]:
        """Both live-progress tables from ONE registry snapshot.

        A join of repro_running_queries against repro_query_progress sees
        one consistent set of queries: a query finishing between the two
        scans can never leave operator rows without their parent row.
        The observer's own query id (current_query_id, set by the
        Database around every tracked execution) is excluded, so a query
        polling the registry never observes itself.
        """
        from repro.engine.progress import current_query_id

        states = db.running.snapshot(exclude=current_query_id.get())
        progress_rows: list[tuple] = []
        for state in states:
            progress_rows.extend(state.operator_rows())
        return {
            "repro_running_queries": [s.as_row() for s in states],
            "repro_query_progress": progress_rows,
        }

    register = db.catalog.register_system_table
    db.catalog.register_snapshot_group("statements", statements_group)
    db.catalog.register_snapshot_group("running", running_group)
    db.catalog.register_snapshot_group("table_stats", table_stats_group)
    register(
        SystemTable(
            "repro_stat_statements",
            _schema(
                ("fingerprint", VARCHAR),
                ("query", VARCHAR),
                ("calls", INTEGER),
                ("total_wall_ms", DOUBLE),
                ("mean_wall_ms", DOUBLE),
                ("min_wall_ms", DOUBLE),
                ("max_wall_ms", DOUBLE),
                ("rows_returned", INTEGER),
                ("errors", INTEGER),
                ("last_strategy", VARCHAR),
                ("last_plan_hash", VARCHAR),
            ),
            stat_statements,
            comment="per-fingerprint statement statistics",
            group="statements",
        )
    )
    register(
        SystemTable(
            "repro_plan_flips",
            _schema(
                ("seq", INTEGER),
                ("ts", VARCHAR),
                ("fingerprint", VARCHAR),
                ("query", VARCHAR),
                ("old_strategy", VARCHAR),
                ("new_strategy", VARCHAR),
                ("old_plan_hash", VARCHAR),
                ("new_plan_hash", VARCHAR),
            ),
            plan_flips,
            comment="plan-hash changes detected per statement fingerprint",
            group="statements",
        )
    )
    register(
        SystemTable(
            "repro_strategy_stats",
            _schema(
                ("fingerprint", VARCHAR),
                ("strategy", VARCHAR),
                ("query", VARCHAR),
                ("calls", INTEGER),
                ("total_wall_ms", DOUBLE),
                ("mean_wall_ms", DOUBLE),
                ("min_wall_ms", DOUBLE),
                ("max_wall_ms", DOUBLE),
                ("rows_returned", INTEGER),
            ),
            strategy_stats,
            comment="per-(fingerprint, strategy) timing history",
            group="statements",
        )
    )
    register(
        SystemTable(
            "repro_metrics",
            _schema(
                ("metric", VARCHAR),
                ("labels", VARCHAR),
                ("value", DOUBLE),
            ),
            metrics,
            comment="every telemetry metric sample (SHOW STATS as a table)",
        )
    )
    register(
        SystemTable(
            "repro_events",
            _schema(
                ("seq", INTEGER),
                ("ts", VARCHAR),
                ("event", VARCHAR),
                ("sql", VARCHAR),
                ("detail", VARCHAR),
            ),
            events,
            comment="the structured event log (detail is a JSON object)",
        )
    )
    register(
        SystemTable(
            "repro_slow_queries",
            _schema(
                ("seq", INTEGER),
                ("ts", VARCHAR),
                ("sql", VARCHAR),
                ("duration_ms", DOUBLE),
                ("threshold_ms", DOUBLE),
            ),
            slow_queries,
            comment="slow-query log entries (profiles stay in slow_queries())",
        )
    )
    register(
        SystemTable(
            "repro_matviews",
            _schema(
                ("name", VARCHAR),
                ("source", VARCHAR),
                ("stale", BOOLEAN),
                ("row_count", INTEGER),
                ("hits", INTEGER),
                ("rejects", INTEGER),
                ("stale_skips", INTEGER),
                ("refreshes", INTEGER),
                ("incremental_merges", INTEGER),
                ("invalidations", INTEGER),
                ("last_reject_reason", VARCHAR),
            ),
            matviews,
            comment="materialized-view state and summary statistics",
        )
    )
    register(
        SystemTable(
            "repro_tables",
            _schema(
                ("name", VARCHAR),
                ("kind", VARCHAR),
                ("column_count", INTEGER),
                ("row_count", INTEGER),
            ),
            tables,
            comment="every catalog object, system tables included",
        )
    )
    register(
        SystemTable(
            "repro_running_queries",
            _schema(
                ("query_id", VARCHAR),
                ("session_id", VARCHAR),
                ("sql", VARCHAR),
                ("traceparent", VARCHAR),
                ("started", VARCHAR),
                ("elapsed_ms", DOUBLE),
                ("rows_processed", INTEGER),
                ("current_operator", VARCHAR),
                ("memory_bytes", INTEGER),
                ("memory_limit_bytes", INTEGER),
            ),
            lambda: running_group()["repro_running_queries"],
            comment="queries executing right now (the observer is excluded)",
            group="running",
        )
    )
    register(
        SystemTable(
            "repro_query_progress",
            _schema(
                ("query_id", VARCHAR),
                ("op_id", INTEGER),
                ("operator", VARCHAR),
                ("est_rows_min", INTEGER),
                ("est_rows_max", INTEGER),
                ("rows_out", INTEGER),
                ("calls", INTEGER),
                ("state", VARCHAR),
            ),
            lambda: running_group()["repro_query_progress"],
            comment="per-operator estimated-vs-actual rows for running queries",
            group="running",
        )
    )
    register(
        SystemTable(
            "repro_table_stats",
            _schema(
                ("table_name", VARCHAR),
                ("row_count", INTEGER),
                ("column_count", INTEGER),
                ("analyzed_at", VARCHAR),
                ("mods_since_analyze", INTEGER),
                ("stale", BOOLEAN),
            ),
            lambda: table_stats_group()["repro_table_stats"],
            comment="per-table ANALYZE results with staleness tracking",
            group="table_stats",
        )
    )
    register(
        SystemTable(
            "repro_column_stats",
            _schema(
                ("table_name", VARCHAR),
                ("column_name", VARCHAR),
                ("dtype", VARCHAR),
                ("ndv", INTEGER),
                ("null_count", INTEGER),
                ("null_frac", DOUBLE),
                ("min_value", VARCHAR),
                ("max_value", VARCHAR),
                ("histogram", VARCHAR),
            ),
            lambda: table_stats_group()["repro_column_stats"],
            comment="per-column ANALYZE statistics (NDV, nulls, min/max, histogram)",
            group="table_stats",
        )
    )
