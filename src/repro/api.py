"""Public API: the :class:`Database`.

>>> from repro import Database
>>> db = Database()
>>> db.execute("CREATE TABLE t (x INTEGER)")           # doctest: +ELLIPSIS
Result(...)
>>> db.execute("INSERT INTO t VALUES (1), (2)").rowcount
2
>>> db.execute("SELECT SUM(x) FROM t").scalar()
3

Measures work end to end::

    db.execute('''CREATE VIEW eo AS
                  SELECT orderDate, prodName,
                         (SUM(revenue) - SUM(cost)) / SUM(revenue)
                           AS MEASURE profitMargin
                  FROM Orders''')
    db.execute("SELECT prodName, AGGREGATE(profitMargin) FROM eo GROUP BY prodName")

``Database.expand`` returns the measure-free SQL a query rewrites to (the
paper's Listing 5), and ``EXPLAIN EXPAND <query>`` does the same inside SQL.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Optional, Sequence

from repro.catalog import Catalog, MaterializedView, TableSchema
from repro.catalog.schema import Column
from repro.engine.evaluator import ExecutionContext
from repro.engine.executor import execute_plan
from repro.errors import BindError, CatalogError, SqlError
from repro.matview import analyze_definition, maintenance, rewrite_query
from repro.plan.optimizer import optimize
from repro.result import Result, ResultColumn
from repro.semantics.binder import Binder
from repro.sql import ast, parse_statement, parse_statements
from repro.storage.locks import RWLock
from repro.types import parse_type_name

__all__ = ["Database", "PlannedQuery"]


@dataclasses.dataclass(frozen=True)
class PlannedQuery:
    """A query planned once for repeated execution.

    Produced by :meth:`Database.plan_query` and replayed by
    :meth:`Database.execute_planned`; the query server's plan cache stores
    these.  ``relations`` (every relation name the original AST references
    plus every table the bound plan scans, lowercased) drives cache
    invalidation; ``strategy``/``plan_shape`` reproduce the plan hash the
    flip detector watches, so cached replays never look like plan changes.
    """

    sql: str
    query: ast.Query
    plan: Any
    columns: tuple
    strategy: str
    reports: tuple
    relations: frozenset
    plan_shape: Optional[str]
    fingerprint: Optional[str]
    normalized: Optional[str]


class Database:
    """An in-memory SQL database with measure support.

    Parameters
    ----------
    cache:
        Enable memoization of measure evaluations and correlated subqueries
        (the paper's "localized self-join" strategy).  On by default; the
        F02 benchmark turns it off to expose the naive quadratic behaviour.
    optimizer:
        Enable the logical-plan optimizer (A02 ablation).
    summaries:
        Enable answering queries from materialized summary tables (the
        :mod:`repro.matview` rewriter).  Off, summaries can still be
        created and refreshed but are never consulted.
    validate:
        Run the :mod:`repro.analysis` plan/IR validator on every bound plan
        and after every optimizer pass.  Defaults to the ``REPRO_VALIDATE``
        environment flag; cheap enough for test suites, off for benchmarks.
    profile:
        Profile every query: phase timings (parse/rewrite/bind/optimize/
        execute), per-operator row counts and wall time, and measure-cache
        behaviour.  The resulting :class:`~repro.profile.QueryProfile` is
        available from :meth:`last_profile`.  Off by default — when off, the
        executor pays a single ``is None`` check per operator and no timers
        run.  ``EXPLAIN ANALYZE`` profiles a single query regardless of
        this flag.
    telemetry:
        Database-lifetime observability (:mod:`repro.telemetry`): cumulative
        metrics (:meth:`metrics`, :meth:`metrics_text`, ``SHOW STATS``), a
        structured event log (:meth:`events`), and a trace export
        (:meth:`export_traces`).  Pass True for defaults or a pre-built
        :class:`~repro.telemetry.Telemetry` to configure capacities and
        sinks.  Off by default; when off, the query path pays one ``is
        None`` check.
    slow_query_ms:
        Capture SQL, duration, and the full QueryProfile of every statement
        at or over this wall-time threshold (:meth:`slow_queries`).  Setting
        it implies ``telemetry=True``.
    memory_limit_bytes:
        Per-query memory budget.  The executor accounts estimated bytes of
        materialized state (operator outputs, hash-join build tables,
        aggregation buffers) as it runs and raises
        :class:`~repro.errors.ResourceExhausted` — a graceful, catchable
        error naming the operator — instead of letting a runaway join OOM
        the host.  Setting a limit implies progress tracking.
    track_progress:
        Maintain a live :class:`~repro.engine.progress.ProgressState` per
        query (rows processed, current operator, bytes buffered,
        estimated-vs-actual rows per operator), visible while the query
        runs through the ``repro_running_queries`` / ``repro_query_progress``
        system tables, :meth:`running_queries`, and the server's
        ``/queries`` endpoint.  Default None means "on iff telemetry is
        on"; pass False to force it off (the zero-overhead configuration)
        or True to track without telemetry.
    record_to:
        Attach the workload flight recorder (:mod:`repro.history`): every
        executed statement — canonical SQL, bind params, session,
        traceparent, fingerprint, strategy, outcome, wall time, rows —
        is appended to a JSON-lines journal at this path (or to a
        pre-built :class:`~repro.history.JournalWriter`).  Replay it with
        ``python -m repro.history replay <journal> --diff``.
    """

    def __init__(
        self,
        *,
        cache: bool = True,
        optimizer: bool = True,
        summaries: bool = True,
        validate: Optional[bool] = None,
        profile: bool = False,
        telemetry=False,
        slow_query_ms: Optional[float] = None,
        memory_limit_bytes: Optional[int] = None,
        track_progress: Optional[bool] = None,
        record_to=None,
    ):
        from repro.analysis.validator import validation_enabled

        self.catalog = Catalog()
        self.cache_enabled = cache
        self.optimizer_enabled = optimizer
        self.summaries_enabled = summaries
        self.validate_enabled = (
            validation_enabled() if validate is None else validate
        )
        self.profile_enabled = profile
        if telemetry is False and slow_query_ms is None:
            #: The Telemetry facade, or None when telemetry is off.
            self.telemetry = None
        elif telemetry is False or telemetry is True:
            from repro.telemetry import Telemetry

            self.telemetry = Telemetry(slow_query_ms=slow_query_ms)
        else:  # a caller-configured Telemetry instance
            self.telemetry = telemetry
            if slow_query_ms is not None:
                raise ValueError(
                    "pass slow_query_ms to the Telemetry instance, not both"
                )
        #: Single-writer/many-reader lock over the catalog and all table
        #: data.  Direct Database calls do not take it (single-threaded use
        #: stays zero-cost); the session layer (repro.server) wraps every
        #: statement in rwlock.read() or rwlock.write(), which is what
        #: makes concurrent sessions safe.
        self.rwlock = RWLock()
        #: Internal: True while a refresh/delta query runs, so a summary's
        #: own definition is never answered from the (old) summary itself.
        self._suppress_summaries = False
        #: Statistics of the most recent query execution.
        self.last_stats: Optional[ExecutionContext] = None
        #: QueryProfile of the most recent profiled query (see last_profile).
        self._last_profile = None
        #: CandidateReports of the most recent top-level query's summary
        #: rewrite (telemetry uses them to label the execution strategy).
        self._last_rewrite_reports: list = []
        #: Bound plan of the most recent profiled query (telemetry hashes
        #: it for plan-flip detection; None when telemetry is off).
        self._last_plan = None
        from repro.engine.progress import QueryRegistry

        #: Per-query memory budget in bytes; None = unlimited.  Mutable:
        #: the shell's \connect-ed admin can tighten it at runtime.
        self.memory_limit_bytes = memory_limit_bytes
        #: None = auto (track iff telemetry is on); see __init__ docs.
        self._track_progress = track_progress
        #: Directory of in-flight tracked queries; backs the
        #: repro_running_queries / repro_query_progress system tables and
        #: the server's /queries endpoint.  Always present (cheap), only
        #: populated when tracking is enabled.
        self.running = QueryRegistry()
        #: The workload flight recorder, or None when recording is off.
        self.recorder = None
        if record_to is not None:
            from repro.history import JournalWriter

            self.recorder = (
                record_to
                if isinstance(record_to, JournalWriter)
                else JournalWriter(record_to)
            )
        from repro.introspect import install_system_tables

        # The repro_* system tables always exist — with telemetry off they
        # bind and scan normally and simply return no rows.
        install_system_tables(self)

    # -- statement execution ----------------------------------------------

    def execute(self, sql: str, params: Sequence[Any] = ()) -> Result:
        """Parse and execute a single SQL statement.

        ``params`` supplies values for positional ``?`` placeholders, in
        order (DB-API style).
        """
        if self.telemetry is not None:
            return self._execute_traced(sql, params)
        if not self.profile_enabled:
            return self._execute_plain(parse_statement(sql), params)
        from repro.profile import Profiler

        profiler = Profiler()
        with profiler.phase("parse"):
            statement = parse_statement(sql)
        if isinstance(statement, ast.QueryStatement) and self.recorder is None:
            # The profiler carries the parse span into the query pipeline so
            # the finished profile covers the whole statement.
            return self._run_query(statement.query, params, profiler=profiler)
        return self._execute_plain(statement, params)

    def execute_script(self, sql: str) -> list[Result]:
        """Execute a semicolon-separated script; returns one Result each."""
        if self.telemetry is not None:
            try:
                statements = parse_statements(sql)
            except SqlError as exc:
                self.telemetry.record_error(exc, sql=sql)
                raise
            return [self._run_traced_statement(s) for s in statements]
        return [self._execute_plain(s) for s in parse_statements(sql)]

    def _execute_traced(self, sql: str, params: Sequence[Any] = ()) -> Result:
        """Telemetry-on :meth:`execute`: meter, log, and trace the statement."""
        from repro.profile import Profiler

        profiler = Profiler()
        try:
            with profiler.phase("parse"):
                statement = parse_statement(sql)
        except SqlError as exc:
            self.telemetry.record_error(exc, sql=sql)
            raise
        return self._run_traced_statement(
            statement, params, sql=sql, profiler=profiler
        )

    def _execute_plain(
        self, statement: ast.Statement, params: Sequence[Any] = ()
    ) -> Result:
        """Telemetry-off execution; journals to the recorder when attached.

        Without a recorder this is exactly ``_execute_statement`` — the
        zero-overhead path stays zero-overhead.
        """
        if self.recorder is None:
            return self._execute_statement(statement, params)
        import time as _time

        from repro.introspect import fingerprint_statement
        from repro.sql.printer import to_sql
        from repro.telemetry import statement_kind

        try:
            sql = to_sql(statement)
        except Exception:
            sql = None
        try:
            fingerprint, _ = fingerprint_statement(statement)
        except Exception:
            fingerprint = None
        kind = statement_kind(statement)
        start = _time.perf_counter()
        try:
            result = self._execute_statement(statement, params)
        except SqlError as exc:
            self.recorder.record(
                sql=sql,
                params=params,
                fingerprint=fingerprint,
                kind=kind,
                wall_ms=(_time.perf_counter() - start) * 1000.0,
                error=exc,
            )
            raise
        self.recorder.record(
            sql=sql,
            params=params,
            fingerprint=fingerprint,
            kind=kind,
            wall_ms=(_time.perf_counter() - start) * 1000.0,
            result=result,
        )
        return result

    def _run_traced_statement(
        self,
        statement: ast.Statement,
        params: Sequence[Any] = (),
        *,
        sql: Optional[str] = None,
        profiler=None,
    ) -> Result:
        """Execute one parsed statement with telemetry recording.

        Queries run under a profiler (telemetry needs the span tree and
        counters even when ``profile=False``); other statements are wall
        timed.  Every SqlError is counted in ``errors_total`` before it
        propagates.
        """
        import time as _time

        from repro.introspect import (
            fingerprint_statement,
            is_introspection_plan,
            plan_shape,
        )
        from repro.telemetry import statement_kind

        telemetry = self.telemetry
        kind = statement_kind(statement)
        if sql is None:
            from repro.sql.printer import to_sql

            try:
                sql = to_sql(statement)
            except Exception:
                sql = None
        try:
            fingerprint, normalized = fingerprint_statement(statement)
        except Exception:
            # A statement the printer cannot canonicalize still executes
            # and is metered; it just has no stat_statements row.
            fingerprint = normalized = None
        start = _time.perf_counter()
        try:
            if isinstance(statement, ast.QueryStatement) and not isinstance(
                statement.query, ast.ShowStats
            ):
                if profiler is None:
                    from repro.profile import Profiler

                    profiler = Profiler()
                self._last_rewrite_reports = []
                self._last_plan = None
                result = self._run_query(
                    statement.query, params, profiler=profiler
                )
                telemetry.record_query(
                    kind,
                    self._last_profile,
                    rows=len(result.rows),
                    sql=sql,
                    reports=self._last_rewrite_reports,
                    fingerprint=fingerprint,
                    query_text=normalized,
                    plan_shape=(
                        None
                        if self._last_plan is None
                        else plan_shape(self._last_plan)
                    ),
                    introspection=is_introspection_plan(self._last_plan),
                )
                if self.recorder is not None:
                    self.recorder.record(
                        sql=sql,
                        params=params,
                        fingerprint=fingerprint,
                        strategy=(
                            "summary"
                            if any(
                                r.status == "hit"
                                for r in self._last_rewrite_reports
                            )
                            else "interpreter"
                        ),
                        kind=kind,
                        wall_ms=(_time.perf_counter() - start) * 1000.0,
                        result=result,
                    )
                return result
            result = self._execute_statement(statement, params)
        except SqlError as exc:
            from repro.errors import ResourceExhausted

            if isinstance(exc, ResourceExhausted) and profiler is not None:
                # The budget fired mid-execution; freeze what the profiler
                # saw up to the failing operator into the slow-query log.
                telemetry.record_resource_exhausted(
                    exc, sql=sql, profiler=profiler
                )
            telemetry.record_error(
                exc, sql=sql, fingerprint=fingerprint, query_text=normalized
            )
            if self.recorder is not None:
                self.recorder.record(
                    sql=sql,
                    params=params,
                    fingerprint=fingerprint,
                    kind=kind,
                    wall_ms=(_time.perf_counter() - start) * 1000.0,
                    error=exc,
                )
            raise
        telemetry.record_statement(
            kind,
            (_time.perf_counter() - start) * 1000.0,
            rowcount=result.rowcount,
            sql=sql,
            fingerprint=fingerprint,
            query_text=normalized,
        )
        if self.recorder is not None:
            self.recorder.record(
                sql=sql,
                params=params,
                fingerprint=fingerprint,
                kind=kind,
                wall_ms=(_time.perf_counter() - start) * 1000.0,
                result=result,
            )
        return result

    def query(self, sql: str) -> Result:
        """Alias of :meth:`execute` for read-only use."""
        return self.execute(sql)

    def _execute_statement(
        self, statement: ast.Statement, params: Sequence[Any] = ()
    ) -> Result:
        if isinstance(statement, ast.QueryStatement):
            return self._run_query(statement.query, params)
        if isinstance(statement, ast.CreateTable):
            return self._create_table(statement)
        if isinstance(statement, ast.CreateTableAs):
            return self._create_table_as(statement)
        if isinstance(statement, ast.Truncate):
            table = self.catalog.base_table(statement.table)
            count = len(table.table)
            table.table.truncate()
            if count:
                maintenance.on_mutation(self, statement.table)
                self.catalog.note_rows_changed(statement.table, count)
            return Result(rowcount=count, message=f"{count} rows truncated")
        if isinstance(statement, ast.Analyze):
            return self._analyze(statement)
        if isinstance(statement, ast.CreateView):
            return self._create_view(statement)
        if isinstance(statement, ast.CreateMaterializedView):
            return self._create_materialized_view(statement)
        if isinstance(statement, ast.RefreshMaterializedView):
            return self._refresh_materialized_view(statement)
        if isinstance(statement, ast.DropObject):
            dropped = self.catalog.drop(
                statement.kind, statement.name, if_exists=statement.if_exists
            )
            if dropped:
                # Summaries reading the dropped table/view can no longer be
                # refreshed or trusted; mark them stale.
                maintenance.on_mutation(self, statement.name)
            return Result(message=f"{statement.kind} {statement.name} dropped")
        if isinstance(statement, ast.Insert):
            return self._insert(statement, params)
        if isinstance(statement, ast.Update):
            return self._update(statement, params)
        if isinstance(statement, ast.Delete):
            return self._delete(statement, params)
        if isinstance(statement, ast.ExplainPlan):
            return self._explain(statement)
        if isinstance(statement, ast.ExplainExpand):
            sql = self.expand_query(statement.query)
            from repro.types import VARCHAR

            return Result(
                columns=[ResultColumn("expanded_sql", VARCHAR)],
                rows=[(sql,)],
                rowcount=1,
            )
        raise SqlError(f"cannot execute {type(statement).__name__}")

    def _analyze(self, statement: ast.Analyze) -> Result:
        """``ANALYZE [table]``: gather per-column statistics into the catalog.

        With no table, every base table (materialized views included) is
        analyzed.  The stored statistics back ``repro_table_stats`` /
        ``repro_column_stats`` and reset the table's staleness counter.
        Returns one row per analyzed table.
        """
        from repro.catalog.objects import BaseTable
        from repro.catalog.stats import analyze_table
        from repro.types import INTEGER, VARCHAR

        if statement.table is not None:
            obj = self.catalog.resolve(statement.table)
            if not isinstance(obj, BaseTable):
                raise CatalogError(
                    f"{statement.table!r} is a {obj.kind.lower()}; ANALYZE "
                    f"targets tables"
                )
            targets = [obj]
        else:
            targets = sorted(
                (o for o in self.catalog if isinstance(o, BaseTable)),
                key=lambda o: o.name.lower(),
            )
        rows = []
        for table in targets:
            stats = analyze_table(table.name, table.schema, table.table.rows)
            self.catalog.store_table_stats(stats)
            rows.append((table.name, stats.row_count, len(stats.columns)))
        return Result(
            columns=[
                ResultColumn("table_name", VARCHAR),
                ResultColumn("row_count", INTEGER),
                ResultColumn("columns_analyzed", INTEGER),
            ],
            rows=rows,
            rowcount=len(rows),
        )

    def _run_query(
        self,
        query: ast.Query,
        params: Sequence[Any] = (),
        profiler=None,
    ) -> Result:
        if isinstance(query, ast.ShowStats):
            # Answered from the telemetry registry, not the planner; the
            # binder rejects nested uses (lint rule RP112).
            return self._show_stats()
        # Internal queries (summary refresh/delta) never auto-profile; they
        # would clobber the user-visible last_profile().
        if (
            profiler is None
            and self.profile_enabled
            and not self._suppress_summaries
        ):
            from repro.profile import Profiler

            profiler = Profiler()
        tracer = profiler.tracer if profiler is not None else None
        original_query = query

        outcome = None
        if self.summaries_enabled and not self._suppress_summaries:
            span = tracer.begin("rewrite", "phase") if tracer is not None else None
            outcome = rewrite_query(self.catalog, query)
            if span is not None:
                if outcome.used is not None:
                    span.meta["summary"] = outcome.used.name
                tracer.end(span)
            if self.telemetry is not None:
                # Mirrors what rewrite_query(record=True) just added to the
                # per-view SummaryStats, keeping the lifetime hit/miss
                # counters consistent with summary_stats().
                self.telemetry.record_rewrite(outcome)
                self._last_rewrite_reports = outcome.reports
            query = outcome.query
        # Hit/miss latency is only measured when a summary was at least a
        # candidate, so queries that never touch a summary pay nothing.
        watch_summaries = outcome is not None and (
            outcome.used is not None or bool(outcome.reports)
        )
        if watch_summaries:
            import time as _time

            latency_start = _time.perf_counter()

        span = tracer.begin("bind", "phase") if tracer is not None else None
        binder = Binder(self.catalog)
        plan, columns = binder.bind_query_top(query)
        if tracer is not None:
            tracer.end(span)
        if self.optimizer_enabled:
            span = tracer.begin("optimize", "phase") if tracer is not None else None
            # optimize() re-validates the bound plan and every pass itself.
            plan = optimize(plan, validate=self.validate_enabled)
            if tracer is not None:
                tracer.end(span)
        elif self.validate_enabled:
            from repro.analysis.validator import check_plan

            check_plan(plan, "binding")
        track_progress = (
            not self._suppress_summaries and self.progress_enabled()
        )
        if profiler is not None or track_progress:
            # Dataflow facts ride on the plan nodes: the profiler folds
            # them into the operator tree (types/keys/cardinality bounds
            # per node), the progress tables report them as estimated
            # rows next to the actuals, and the cardinality bounds are
            # the input for cost-based strategy selection (ROADMAP).
            from repro.analysis.dataflow import analyze_plan

            analyze_plan(plan, self.catalog)
        progress = None
        if track_progress:
            from repro.sql.printer import to_sql as _to_sql

            try:
                progress_sql = _to_sql(original_query)
            except Exception:
                progress_sql = ""
            progress = self._start_progress(progress_sql, plan)
        ctx = ExecutionContext(
            self.catalog,
            enable_cache=self.cache_enabled,
            params=params,
            profiler=profiler,
            progress=progress,
        )
        span = tracer.begin("execute", "phase") if tracer is not None else None
        if progress is None:
            rows = execute_plan(plan, ctx)
        else:
            from repro.engine.progress import current_query_id

            # current_query_id is how a query over the running-queries
            # tables avoids observing itself in the registry snapshot.
            query_token = current_query_id.set(progress.query_id)
            try:
                rows = execute_plan(plan, ctx)
            finally:
                current_query_id.reset(query_token)
                self.running.finish(progress)
        if tracer is not None:
            tracer.end(span)
        self.last_stats = ctx
        if watch_summaries:
            elapsed_ms = (_time.perf_counter() - latency_start) * 1000.0
            if outcome.used is not None:
                outcome.used.stats.record_hit_latency(elapsed_ms)
            else:
                for report in outcome.reports:
                    view = self.catalog.get(report.view)
                    if isinstance(view, MaterializedView):
                        view.stats.record_miss_latency(elapsed_ms)
        if profiler is not None:
            from repro.sql.printer import to_sql

            self._last_plan = plan
            self._last_profile = profiler.finish(
                plan, ctx, len(rows), sql=to_sql(original_query)
            )
        return Result(
            columns=[ResultColumn(c.name, c.dtype) for c in columns],
            rows=rows,
            rowcount=len(rows),
        )

    # -- planned execution (the query server's path) -------------------------

    def plan_query(self, query: ast.Query, *, sql: Optional[str] = None) -> PlannedQuery:
        """Plan ``query`` once for repeated execution, without running it.

        Runs the same rewrite -> bind -> optimize pipeline as
        :meth:`execute` but returns the finished plan instead of rows.
        Unlike the execute path, nothing is stored on the Database — the
        returned :class:`PlannedQuery` is self-contained, so concurrent
        sessions can plan and replay without racing on shared state.
        Summary-rewrite telemetry is recorded here (at plan time); cached
        replays deliberately skip the rewriter and its counters.
        """
        if isinstance(query, ast.ShowStats):
            raise SqlError("SHOW STATS has no plan; execute it directly")
        from repro.introspect import fingerprint_statement, plan_shape
        from repro.plan.logical import Scan
        from repro.sql.printer import to_sql
        from repro.sql.visitor import find_all

        statement = ast.QueryStatement(query)
        if sql is None:
            sql = to_sql(statement)
        try:
            fingerprint, normalized = fingerprint_statement(statement)
        except Exception:
            fingerprint = normalized = None
        reports: tuple = ()
        rewritten = query
        if self.summaries_enabled and not self._suppress_summaries:
            outcome = rewrite_query(self.catalog, query)
            if self.telemetry is not None:
                self.telemetry.record_rewrite(outcome)
            reports = tuple(outcome.reports)
            rewritten = outcome.query
        binder = Binder(self.catalog)
        plan, columns = binder.bind_query_top(rewritten)
        if self.optimizer_enabled:
            plan = optimize(plan, validate=self.validate_enabled)
        elif self.validate_enabled:
            from repro.analysis.validator import check_plan

            check_plan(plan, "binding")
        from repro.analysis.dataflow import analyze_plan

        # Facts (types/nullability/keys/cardinality bounds) travel with the
        # cached plan; DML invalidation bounds how stale the bounds can get.
        analyze_plan(plan, self.catalog)
        strategy = (
            "summary"
            if any(r.status == "hit" for r in reports)
            else "interpreter"
        )
        relations = {
            ref.name.lower() for ref in find_all(query, ast.TableName)
        }
        relations.update(
            node.table_name.lower()
            for node in plan.walk()
            if isinstance(node, Scan)
        )
        return PlannedQuery(
            sql=sql,
            query=query,
            plan=plan,
            columns=tuple(columns),
            strategy=strategy,
            reports=reports,
            relations=frozenset(relations),
            plan_shape=plan_shape(plan),
            fingerprint=fingerprint,
            normalized=normalized,
        )

    def execute_planned(
        self,
        planned: PlannedQuery,
        params: Sequence[Any] = (),
        *,
        cancel_event=None,
        profiler=None,
    ):
        """Execute a :class:`PlannedQuery`; ``(Result, QueryProfile | None)``.

        All mutable execution state lives in a fresh
        :class:`ExecutionContext`, so any number of sessions can replay the
        same plan concurrently.  Deliberately does NOT update
        ``last_stats``/``last_profile()`` (shared slots would race) and
        does not touch per-view summary latency attribution — the profile
        is returned to the caller instead.  ``cancel_event`` (a
        ``threading.Event``) aborts execution at the next operator
        boundary with :class:`~repro.errors.QueryCancelled`.
        """
        progress = (
            self._start_progress(planned.sql, planned.plan)
            if self.progress_enabled()
            else None
        )
        ctx = ExecutionContext(
            self.catalog,
            enable_cache=self.cache_enabled,
            params=params,
            profiler=profiler,
            cancel_event=cancel_event,
            progress=progress,
        )
        tracer = profiler.tracer if profiler is not None else None
        span = tracer.begin("execute", "phase") if tracer is not None else None
        if progress is None:
            rows = execute_plan(planned.plan, ctx)
        else:
            from repro.engine.progress import current_query_id

            query_token = current_query_id.set(progress.query_id)
            try:
                rows = execute_plan(planned.plan, ctx)
            finally:
                current_query_id.reset(query_token)
                self.running.finish(progress)
        if tracer is not None:
            tracer.end(span)
        profile = (
            None
            if profiler is None
            else profiler.finish(planned.plan, ctx, len(rows), sql=planned.sql)
        )
        result = Result(
            columns=[ResultColumn(c.name, c.dtype) for c in planned.columns],
            rows=rows,
            rowcount=len(rows),
        )
        return result, profile

    # -- live progress --------------------------------------------------------

    def progress_enabled(self) -> bool:
        """Whether queries maintain live progress state.

        A memory budget forces tracking on (accounting rides the same
        state); otherwise the explicit ``track_progress`` flag wins, and
        its None default follows telemetry — a telemetry-on Database is
        already paying for a profiler per query, so the extra ticks are
        noise, while a bare Database stays on the zero-overhead path.
        """
        if self.memory_limit_bytes is not None:
            return True
        if self._track_progress is None:
            return self.telemetry is not None
        return self._track_progress

    def _start_progress(self, sql: str, plan):
        """Register one tracked execution in the running-query registry."""
        from repro.telemetry import current_session, current_traceparent

        progress = self.running.start(
            sql=sql,
            session_id=current_session.get(),
            traceparent=current_traceparent.get(),
            memory_limit_bytes=self.memory_limit_bytes,
        )
        # Pre-register every operator with its dataflow cardinality
        # bounds so estimated-vs-actual rows are observable immediately.
        progress.attach_plan(plan)
        return progress

    def running_queries(self) -> list[dict]:
        """Live progress of every in-flight tracked query, as dicts
        (the JSON shape the server's ``/queries`` endpoint serves).
        Empty when no query is running or tracking is off."""
        return [state.as_dict() for state in self.running.snapshot()]

    # -- DDL / DML ----------------------------------------------------------

    def _create_table(self, statement: ast.CreateTable) -> Result:
        schema = TableSchema(
            [Column(c.name, parse_type_name(c.type_name)) for c in statement.columns]
        )
        replaced = statement.or_replace and statement.name in self.catalog
        self.catalog.create_table(
            statement.name,
            schema,
            or_replace=statement.or_replace,
            if_not_exists=statement.if_not_exists,
        )
        if replaced:
            maintenance.on_mutation(self, statement.name)
        return Result(message=f"table {statement.name} created")

    def _create_table_as(self, statement: ast.CreateTableAs) -> Result:
        from repro.types import UNKNOWN, VARCHAR

        result = self._run_query(statement.query)
        schema = TableSchema(
            [
                Column(c.name, VARCHAR if c.dtype.unwrap() is UNKNOWN else c.dtype.unwrap())
                for c in result.columns
            ]
        )
        replaced = statement.or_replace and statement.name in self.catalog
        table = self.catalog.create_table(
            statement.name, schema, or_replace=statement.or_replace
        )
        count = table.table.insert_many(result.rows)
        if replaced:
            maintenance.on_mutation(self, statement.name)
        return Result(rowcount=count, message=f"table {statement.name} created ({count} rows)")

    def _create_view(self, statement: ast.CreateView) -> Result:
        # Bind eagerly so that invalid views are rejected at creation time.
        probe = Binder(self.catalog)
        bound = probe.bind_query_as_relation(statement.query, None)
        if statement.column_names and len(statement.column_names) != len(bound.columns):
            raise BindError(
                f"view {statement.name!r} declares "
                f"{len(statement.column_names)} columns but its query returns "
                f"{len(bound.columns)}"
            )
        replaced = statement.or_replace and statement.name in self.catalog
        self.catalog.create_view(
            statement.name,
            statement.query,
            column_names=statement.column_names,
            or_replace=statement.or_replace,
        )
        if replaced:
            # Summaries computed against the old view definition no longer
            # answer queries over the new one; invalidate every summary
            # whose source chain includes this view.
            maintenance.on_mutation(self, statement.name)
        return Result(message=f"view {statement.name} created")

    def _create_materialized_view(
        self, statement: ast.CreateMaterializedView
    ) -> Result:
        from repro.storage.table import MemoryTable

        existing = self.catalog.get(statement.name)
        if existing is not None:
            # Fail before computing any rows; OR REPLACE only replaces
            # another materialized view (the catalog enforces this too).
            if not statement.or_replace:
                raise CatalogError(f"object {statement.name!r} already exists")
            if not isinstance(existing, MaterializedView):
                raise CatalogError(
                    f"{statement.name!r} is a {existing.kind.lower()}, not a "
                    f"materialized view; OR REPLACE cannot replace it"
                )
        definition = analyze_definition(
            self.catalog, statement.name, statement.query
        )
        result = maintenance.compute_rows(self, definition.refresh_query)
        view = MaterializedView(
            statement.name,
            MemoryTable(maintenance.result_schema(result)),
            query=statement.query,
            definition=definition,
        )
        count = view.table.insert_many(result.rows)
        self.catalog.add_materialized_view(
            statement.name, view, or_replace=statement.or_replace
        )
        return Result(
            rowcount=count,
            message=f"materialized view {statement.name} created ({count} rows)",
        )

    def _refresh_materialized_view(
        self, statement: ast.RefreshMaterializedView
    ) -> Result:
        obj = self.catalog.resolve(statement.name)
        if not isinstance(obj, MaterializedView):
            raise CatalogError(
                f"{statement.name!r} is a {obj.kind.lower()}, not a "
                f"materialized view"
            )
        count = maintenance.refresh(self, obj)
        return Result(
            rowcount=count,
            message=f"materialized view {statement.name} refreshed ({count} rows)",
        )

    def _insert(self, statement: ast.Insert, params: Sequence[Any] = ()) -> Result:
        table = self.catalog.base_table(statement.table)
        result = self._run_query(statement.source, params)
        expected = (
            len(statement.columns)
            if statement.columns
            else len(table.schema.columns)
        )
        count = 0
        before = len(table.table)
        for row in result.rows:
            if len(row) != expected:
                raise CatalogError(
                    f"INSERT expects {expected} values per row, got {len(row)}"
                )
            if statement.columns:
                table.table.insert_partial(statement.columns, row)
            else:
                table.table.insert(row)
            count += 1
        if count:
            maintenance.on_insert(
                self, statement.table, table.table.rows[before:]
            )
            self.catalog.note_rows_changed(statement.table, count)
        return Result(rowcount=count, message=f"{count} rows inserted")

    def _bind_table_predicate(self, table, where: Optional[ast.Expression]):
        """Bind an UPDATE/DELETE predicate (and a row evaluator) over a
        single base table's row."""
        from repro.semantics.binder import _DummyQueryBinder
        from repro.semantics.exprbinder import ExprBinder
        from repro.semantics.scope import RelColumn, Relation, Scope

        query_binder = _DummyQueryBinder(Binder(self.catalog))
        scope = Scope()
        columns = [
            RelColumn(c.name, c.dtype, i)
            for i, c in enumerate(table.schema.columns)
        ]
        scope.add_relation(Relation(table.name, columns, 0, len(columns)))
        expr_binder = ExprBinder(query_binder, scope, clause="WHERE")
        bound_where = expr_binder.bind(where) if where is not None else None
        return expr_binder, bound_where

    def _matching_indexes(self, table, bound_where, params=()) -> list[int]:
        from repro.engine.evaluator import EvalEnv, evaluate

        ctx = ExecutionContext(
            self.catalog, enable_cache=self.cache_enabled, params=params
        )
        matches = []
        for index, row in enumerate(table.table.rows):
            if bound_where is None or evaluate(bound_where, EvalEnv(row), ctx) is True:
                matches.append(index)
        return matches

    def _update(self, statement: ast.Update, params: Sequence[Any] = ()) -> Result:
        from repro.engine.evaluator import EvalEnv, evaluate
        from repro.types import coerce_value

        table = self.catalog.base_table(statement.table)
        expr_binder, bound_where = self._bind_table_predicate(
            table, statement.where
        )
        targets = []
        for assignment in statement.assignments:
            index = table.schema.index_of(assignment.column)
            targets.append((index, expr_binder.bind(assignment.value)))
        ctx = ExecutionContext(
            self.catalog, enable_cache=self.cache_enabled, params=params
        )
        rows = table.table.rows
        count = 0
        for row_index in self._matching_indexes(table, bound_where, params):
            env = EvalEnv(rows[row_index])
            updated = list(rows[row_index])
            for column_index, value_expr in targets:
                updated[column_index] = coerce_value(
                    evaluate(value_expr, env, ctx),
                    table.schema.columns[column_index].dtype,
                )
            rows[row_index] = tuple(updated)
            count += 1
        if count:
            maintenance.on_mutation(self, statement.table)
            self.catalog.note_rows_changed(statement.table, count)
        return Result(rowcount=count, message=f"{count} rows updated")

    def _delete(self, statement: ast.Delete, params: Sequence[Any] = ()) -> Result:
        table = self.catalog.base_table(statement.table)
        _, bound_where = self._bind_table_predicate(table, statement.where)
        doomed = set(self._matching_indexes(table, bound_where, params))
        if doomed:
            kept = [
                row
                for index, row in enumerate(table.table.rows)
                if index not in doomed
            ]
            table.table.rows[:] = kept
            maintenance.on_mutation(self, statement.table)
            self.catalog.note_rows_changed(statement.table, len(doomed))
        return Result(rowcount=len(doomed), message=f"{len(doomed)} rows deleted")

    def _explain(self, statement: ast.ExplainPlan) -> Result:
        from repro.plan.logical import plan_tree_string
        from repro.types import VARCHAR

        if statement.query is None:
            # EXPLAIN over DDL/DML parses (lint rule RP111 flags it) but has
            # no plan to show: this engine only plans queries.
            target = type(statement.target).__name__
            raise SqlError(
                f"EXPLAIN cannot explain a {target} statement; "
                "only queries have plans (lint rule RP111)"
            )
        if isinstance(statement.query, ast.ShowStats):
            raise SqlError(
                "EXPLAIN cannot explain SHOW STATS; it is answered from "
                "the telemetry registry and has no plan"
            )
        query = statement.query
        lint_lines: list[str] = []
        if statement.lint:
            from repro.analysis.linter import lint_query

            lint_lines = [
                f"lint: {diag.render()}"
                for diag in lint_query(self.catalog, query)
            ] or ["lint: clean"]
        if statement.analyze:
            return self._explain_analyze(statement, lint_lines)
        summary_lines: list[str] = []
        if self.summaries_enabled and not self._suppress_summaries:
            # record=False: EXPLAIN reports the decision without inflating
            # the per-view hit/reject counters.
            outcome = rewrite_query(self.catalog, query, record=False)
            summary_lines = outcome.explain_lines()
            query = outcome.query
        binder = Binder(self.catalog)
        plan, _ = binder.bind_query_top(query)
        if self.optimizer_enabled:
            plan = optimize(plan, validate=self.validate_enabled)
        if statement.types:
            from repro.analysis.dataflow import explain_types_lines

            plan_lines = explain_types_lines(plan, self.catalog)
        else:
            plan_lines = plan_tree_string(plan).splitlines()
        lines = lint_lines + summary_lines + plan_lines
        return Result(
            columns=[ResultColumn("plan", VARCHAR)],
            rows=[(line,) for line in lines],
            rowcount=len(lines),
        )

    def _explain_analyze(
        self, statement: ast.ExplainPlan, lint_lines: list[str]
    ) -> Result:
        """``EXPLAIN ANALYZE``: execute the query under a fresh profiler and
        render the operator tree annotated with observed rows and timing.

        Like PostgreSQL, the query genuinely runs (summary hit counters and
        DML-visible side effects of the execution happen); the result rows
        are discarded and the annotated plan is returned instead.
        """
        from repro.profile import Profiler
        from repro.types import VARCHAR

        profiler = Profiler()
        self._run_query(statement.query, profiler=profiler)
        profile = self._last_profile
        types_lines: list[str] = []
        if statement.types and self._last_plan is not None:
            # (ANALYZE, TYPES): the observed tree first, then the same plan
            # with the statically inferred facts, so predicted bounds can be
            # read next to what actually happened.
            from repro.analysis.dataflow import explain_types_lines

            types_lines = ["types:"] + explain_types_lines(
                self._last_plan, self.catalog
            )
        lines = (
            lint_lines
            + profile.plan_lines()
            + types_lines
            + profile.summary_lines()
        )
        return Result(
            columns=[ResultColumn("plan", VARCHAR)],
            rows=[(line,) for line in lines],
            rowcount=len(lines),
        )

    def last_profile(self):
        """The :class:`~repro.profile.QueryProfile` of the most recent
        profiled query, or None.

        Populated whenever the database was constructed with
        ``profile=True`` or ``telemetry=True`` (queries run under a
        profiler either way) or an ``EXPLAIN ANALYZE`` statement ran.
        """
        return self._last_profile

    # -- telemetry -----------------------------------------------------------

    def _show_stats(self) -> Result:
        """``SHOW STATS``: one row per telemetry metric sample.

        Histograms contribute ``_bucket``/``_sum``/``_count`` rows.  With
        telemetry off the result is empty (same columns, zero rows).
        """
        from repro.types import DOUBLE, VARCHAR

        columns = [
            ResultColumn("metric", VARCHAR),
            ResultColumn("labels", VARCHAR),
            ResultColumn("value", DOUBLE),
        ]
        rows = [] if self.telemetry is None else self.telemetry.registry.rows()
        return Result(columns=columns, rows=rows, rowcount=len(rows))

    def metrics(self) -> dict:
        """A plain-dict snapshot of every telemetry metric.

        Maps metric name to ``{"kind", "help", "labels", "series"}``;
        empty when telemetry is off.  See docs/OBSERVABILITY.md for the
        full catalog.
        """
        return {} if self.telemetry is None else self.telemetry.snapshot()

    def metrics_text(self) -> str:
        """The metrics in the Prometheus text exposition format (the body
        a ``/metrics`` scrape endpoint would serve).  Empty when off."""
        return "" if self.telemetry is None else self.telemetry.metrics_text()

    def events(self, n: Optional[int] = None) -> list:
        """The most recent ``n`` structured telemetry events (all by
        default), oldest first, as plain dicts."""
        return [] if self.telemetry is None else self.telemetry.events.tail(n)

    def slow_queries(self) -> list:
        """Slow-query log entries (``Database(slow_query_ms=...)``),
        oldest first; each carries sql, duration_ms, and the profile."""
        return [] if self.telemetry is None else self.telemetry.slow_queries()

    def stat_statements(self) -> list:
        """Per-fingerprint statement statistics, first-seen order.

        One dict per statement fingerprint — calls, total/mean/min/max
        wall ms, rows returned, errors, last strategy, and last plan hash;
        the same rows the ``repro_stat_statements`` system table exposes
        to SQL.  Empty when telemetry is off.
        """
        if self.telemetry is None:
            return []
        return [e.as_dict() for e in self.telemetry.statements.entries()]

    def plan_flips(self) -> list:
        """Detected plan flips, oldest first (``repro_plan_flips`` as
        dicts): statements whose plan hash changed between executions.
        Empty when telemetry is off."""
        if self.telemetry is None:
            return []
        return [f.as_dict() for f in self.telemetry.statements.flips()]

    def strategy_stats(self) -> list:
        """Per-(fingerprint, strategy) timing history, first-seen order.

        One dict per pair — calls, total/mean/min/max wall ms, rows —
        the same rows the ``repro_strategy_stats`` system table exposes.
        Populated by ordinary execution (``interpreter``/``summary``)
        and by :meth:`execute_with_strategy` runs; empty when telemetry
        is off.
        """
        if self.telemetry is None:
            return []
        return [
            e.as_dict() for e in self.telemetry.statements.strategy_entries()
        ]

    def table_stats(self) -> list:
        """Stored ``ANALYZE`` results as dicts (row count, per-column NDV
        / null fraction / min / max / histogram), plus each table's
        rows-changed-since-analyze staleness counter.  Empty until
        ``ANALYZE`` runs."""
        return [
            {
                **stats.as_dict(),
                "mods_since_analyze": self.catalog.mods_since_analyze(
                    stats.table
                ),
            }
            for stats in self.catalog.all_table_stats()
        ]

    def reset_stats(self) -> None:
        """Discard all per-fingerprint statement statistics and retained
        plan flips (``pg_stat_statements_reset`` style).  Cumulative
        metrics, events, and traces are unaffected."""
        if self.telemetry is not None:
            self.telemetry.statements.reset()

    def export_traces(self, *, indent: Optional[int] = None) -> str:
        """Serialize captured query traces to OTel-flavored JSON
        (schema ``repro-trace-v1``); an empty envelope when telemetry is
        off.  Always valid JSON (round-trips through ``json.loads``)."""
        import json as _json

        if self.telemetry is None:
            from repro.telemetry import TRACE_SCHEMA

            return _json.dumps(
                {
                    "schema": TRACE_SCHEMA,
                    "trace_count": 0,
                    "traces_dropped": 0,
                    "traces": [],
                },
                indent=indent,
            )
        return self.telemetry.traces.export_json(indent=indent)

    # -- static analysis ------------------------------------------------------

    def lint(self, sql: str) -> list:
        """Run the static analyzer over ``sql`` without executing it.

        Returns a list of :class:`repro.analysis.Diagnostic` objects, sorted
        by severity then source position; empty means the statement is
        clean.  Lexer/parser failures surface as a single ``RP001``
        diagnostic and semantic (binding) failures as ``RP002`` — lint never
        raises on bad SQL.
        """
        from repro.analysis.linter import lint_sql

        diagnostics = lint_sql(self.catalog, sql)
        if self.telemetry is not None:
            self.telemetry.record_lint(diagnostics)
        return diagnostics

    # -- measure expansion ----------------------------------------------------

    def expand(self, sql: str, *, strategy: str = "subquery") -> str:
        """Rewrite a query's measure references to plain SQL.

        ``strategy`` selects the rewrite (paper section 6.4): ``"subquery"``
        (the general correlated-subquery expansion of section 4.2),
        ``"inline"`` (inline the formula into a simple GROUP BY query),
        ``"window"`` (rewrite to window aggregates, section 5.1), or
        ``"auto"`` (try inline, then window, then fall back to subquery).
        """
        statement = parse_statement(sql)
        if isinstance(statement, ast.ExplainExpand):
            query = statement.query
        elif isinstance(statement, ast.QueryStatement):
            query = statement.query
        else:
            raise SqlError("expand() requires a query")
        return self.expand_query(query, strategy=strategy)

    def expand_query(self, query: ast.Query, *, strategy: str = "subquery") -> str:
        """Like :meth:`expand`, for an already-parsed query AST."""
        from repro.core.expansion import expand_to_sql

        if self.telemetry is not None:
            # The *requested* strategy; "auto" resolves inside expand_to_sql.
            self.telemetry.record_expansion(strategy)
        if not self.profile_enabled:
            return expand_to_sql(self, query, strategy=strategy)
        from repro.profile import Profiler

        profiler = Profiler()
        with profiler.phase("expand"):
            sql = expand_to_sql(
                self, query, strategy=strategy, tracer=profiler.tracer
            )
        self._last_profile = profiler.finish(sql=sql)
        return sql

    def execute_with_strategy(
        self, sql: str, params: Sequence[Any] = (), *, strategy: str
    ) -> Result:
        """Execute a query under a chosen expansion strategy.

        ``"interpreter"`` runs the query directly (the top-down measure
        interpreter).  Any expansion strategy (``"subquery"``,
        ``"inline"``, ``"window"``, ``"winmagic"``, ``"auto"``) first
        rewrites the query to measure-free SQL, then executes the
        rewritten form.  Timing is recorded in the per-strategy history
        (``repro_strategy_stats``) under the *original* statement's
        fingerprint — that is what makes one query's strategies
        comparable rows — and no plan hash is stored, so strategy
        experiments never register as plan flips.  A shape the strategy
        does not support raises
        :class:`~repro.errors.UnsupportedError`, recorded (and journaled)
        as an error like any other failure.
        """
        if strategy == "interpreter":
            return self.execute(sql, params)
        import time as _time

        from repro.introspect import fingerprint_statement

        try:
            statement = parse_statement(sql)
        except SqlError as exc:
            if self.telemetry is not None:
                self.telemetry.record_error(exc, sql=sql)
            raise
        if not isinstance(statement, ast.QueryStatement) or isinstance(
            statement.query, ast.ShowStats
        ):
            raise SqlError("execute_with_strategy() requires a query")
        try:
            fingerprint, normalized = fingerprint_statement(statement)
        except Exception:
            fingerprint = normalized = None
        profiler = None
        if self.telemetry is not None:
            from repro.profile import Profiler

            profiler = Profiler()
        start = _time.perf_counter()
        try:
            expanded_sql = self.expand_query(
                statement.query, strategy=strategy
            )
            expanded = parse_statement(expanded_sql)
            self._last_rewrite_reports = []
            self._last_plan = None
            result = self._run_query(
                expanded.query, params, profiler=profiler
            )
        except SqlError as exc:
            if self.telemetry is not None:
                self.telemetry.record_error(
                    exc,
                    sql=sql,
                    fingerprint=fingerprint,
                    query_text=normalized,
                )
            if self.recorder is not None:
                self.recorder.record(
                    sql=sql,
                    params=params,
                    fingerprint=fingerprint,
                    strategy=strategy,
                    kind="select",
                    wall_ms=(_time.perf_counter() - start) * 1000.0,
                    error=exc,
                )
            raise
        wall_ms = (_time.perf_counter() - start) * 1000.0
        if self.telemetry is not None:
            # plan_shape=None: the expanded plan's hash would differ per
            # strategy by construction, and a deliberate experiment is
            # not a plan flip.
            self.telemetry.record_query(
                "select",
                self._last_profile,
                rows=len(result.rows),
                sql=sql,
                reports=(),
                fingerprint=fingerprint,
                query_text=normalized,
                plan_shape=None,
                strategy=strategy,
            )
        if self.recorder is not None:
            self.recorder.record(
                sql=sql,
                params=params,
                fingerprint=fingerprint,
                strategy=strategy,
                kind="select",
                wall_ms=wall_ms,
                result=result,
            )
        return result

    # -- convenience ------------------------------------------------------------

    def create_table_from_rows(
        self,
        name: str,
        columns: Sequence[tuple[str, str]],
        rows: Iterable[Sequence[Any]],
    ) -> int:
        """Create a table and bulk-load Python rows (used by workloads)."""
        schema = TableSchema(
            [Column(col, parse_type_name(type_name)) for col, type_name in columns]
        )
        replaced = name in self.catalog
        table = self.catalog.create_table(name, schema, or_replace=True)
        count = table.table.insert_many(rows)
        if replaced:
            maintenance.on_mutation(self, name)
        return count

    def table_names(self) -> list[str]:
        """Sorted names of every table and view in the catalog."""
        return self.catalog.names()

    def summary_stats(self) -> dict:
        """Per-materialized-view observability counters.

        Maps view name to hit/reject/stale-skip/refresh counters, cumulative
        hit/miss query latency (``hit_time_ms``/``miss_time_ms``), plus the
        current staleness flag — the numbers EXPLAIN's ``summary:`` lines
        are drawn from.
        """
        return {
            view.name: {**view.stats.as_dict(), "stale": view.stale}
            for view in self.catalog.materialized_views()
        }

    def describe(self, name: str) -> dict:
        """Structured metadata for a table or view.

        This is the information the paper's Looker Open SQL Interface
        exposes to BI tools (section 5.6): regular columns appear as
        dimensions, measure columns as measures with their dimensionality.
        Measure formulas are intentionally NOT included — the view is an
        abstraction boundary (section 3.2).
        """
        from repro.catalog.objects import BaseTable

        obj = self.catalog.resolve(name)
        if isinstance(obj, MaterializedView):
            visible = [
                c for c in obj.schema.columns if not c.name.startswith("__")
            ]
            dimension_names = {d.name.lower() for d in obj.definition.dimensions}
            return {
                "name": obj.name,
                "kind": "materialized view",
                "source": obj.definition.source_name,
                "stale": obj.stale,
                "rows": len(obj.table),
                "columns": [
                    {
                        "name": c.name,
                        "type": str(c.dtype),
                        "measure": c.name.lower() not in dimension_names,
                    }
                    for c in visible
                ],
                "dimensions": [d.name for d in obj.definition.dimensions],
                "measures": [
                    {"name": m.name, "rollup": m.kind}
                    for m in obj.definition.measures
                ],
            }
        if isinstance(obj, BaseTable):
            return {
                "name": obj.name,
                "kind": "table",
                "rows": len(obj.table),
                "columns": [
                    {"name": c.name, "type": str(c.dtype), "measure": False}
                    for c in obj.schema.columns
                ],
                "measures": [],
            }
        from repro.catalog.objects import SystemTable

        if isinstance(obj, SystemTable):
            return {
                "name": obj.name,
                "kind": "system table",
                "comment": obj.comment,
                "columns": [
                    {"name": c.name, "type": str(c.dtype), "measure": False}
                    for c in obj.schema.columns
                ],
                "measures": [],
            }
        bound = Binder(self.catalog).bind_query_as_relation(obj.query, None)
        columns = []
        measures = []
        dimension_names = [c.name for c in bound.columns if not c.is_measure]
        for column in bound.columns:
            columns.append(
                {
                    "name": column.name,
                    "type": str(column.dtype),
                    "measure": column.is_measure,
                }
            )
            if column.is_measure:
                measures.append(
                    {
                        "name": column.name,
                        "type": str(column.dtype.unwrap()),
                        "dimensions": list(dimension_names),
                    }
                )
        return {
            "name": obj.name,
            "kind": "view",
            "columns": columns,
            "measures": measures,
        }
