"""Semantic analysis: scopes, bound IR, and the query binder.

Submodules are imported lazily to keep the bound-IR module importable from
the engine without dragging in the full binder (which depends on the engine).
"""

__all__ = ["Binder", "BoundRelation", "OutputColumn"]


def __getattr__(name):
    if name in __all__:
        from repro.semantics import binder

        return getattr(binder, name)
    raise AttributeError(name)
