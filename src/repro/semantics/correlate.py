"""Correlation utilities: walking and rewriting bound expressions and plans.

The binder uses these to

* collect the correlated references of a subquery (memoization keys),
* "lift" expressions over an Aggregate: outer references at depth 1 that
  point at the query's FROM row must be remapped onto group-key slots.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator, Optional

from repro.errors import BindError
from repro.plan import logical as plans
from repro.semantics import bound as b

__all__ = [
    "transform_expr",
    "plan_expressions",
    "collect_outer_refs",
    "remap_plan_outer",
    "transform_plan_exprs",
]


def transform_expr(
    expr: b.BoundExpr,
    fn: Callable[[b.BoundExpr], Optional[b.BoundExpr]],
) -> b.BoundExpr:
    """Rebuild ``expr`` top-down: if ``fn`` returns a node, it replaces the
    subtree wholesale; otherwise children are transformed recursively."""
    replacement = fn(expr)
    if replacement is not None:
        return replacement
    changes = {}
    for f in dataclasses.fields(expr):  # type: ignore[arg-type]
        value = getattr(expr, f.name)
        new = _transform_value(value, fn)
        if new is not value:
            changes[f.name] = new
    if not changes:
        return expr
    return dataclasses.replace(expr, **changes)  # type: ignore[arg-type]


def _transform_value(value, fn):
    if isinstance(value, b.BoundExpr):
        return transform_expr(value, fn)
    if isinstance(value, list):
        new_items = [_transform_value(item, fn) for item in value]
        if all(new is old for new, old in zip(new_items, value)):
            return value
        return new_items
    if isinstance(value, tuple) and any(isinstance(item, b.BoundExpr) for item in value):
        new_items = tuple(_transform_value(item, fn) for item in value)
        if all(new is old for new, old in zip(new_items, value)):
            return value
        return new_items
    if isinstance(value, b.SortSpec):
        new_expr = transform_expr(value.expr, fn)
        if new_expr is value.expr:
            return value
        return b.SortSpec(new_expr, value.descending, value.nulls_first)
    return value


def plan_expressions(plan: plans.LogicalPlan) -> Iterator[b.BoundExpr]:
    """Yield every bound expression embedded in ``plan`` (this node and all
    inputs), without descending into subquery plans."""
    if isinstance(plan, plans.ValuesPlan):
        for row in plan.rows:
            yield from row
    elif isinstance(plan, plans.Filter):
        yield plan.predicate
    elif isinstance(plan, plans.Project):
        yield from plan.exprs
    elif isinstance(plan, plans.Join):
        if plan.condition is not None:
            yield plan.condition
    elif isinstance(plan, plans.Aggregate):
        yield from plan.group_exprs
        yield from plan.agg_calls
    elif isinstance(plan, plans.Window):
        yield from plan.calls
    elif isinstance(plan, plans.Sort):
        for spec in plan.keys:
            yield spec.expr
    elif isinstance(plan, plans.Limit):
        if plan.limit is not None:
            yield plan.limit
        if plan.offset is not None:
            yield plan.offset
    for child in plan.inputs():
        yield from plan_expressions(child)


def collect_outer_refs(plan: plans.LogicalPlan) -> list[tuple[int, int]]:
    """Collect (depth, offset) of every outer reference escaping ``plan``.

    Depths are as seen from directly inside the plan; references from nested
    subqueries are shifted down accordingly.  Duplicates removed, order
    deterministic.
    """
    seen: dict[tuple[int, int], None] = {}

    def visit_expr(expr: b.BoundExpr, shift: int) -> None:
        for node in b.walk(expr):
            if isinstance(node, b.BoundOuterColumn):
                depth = node.depth - shift
                if depth >= 1:
                    seen[(depth, node.offset)] = None
            elif isinstance(node, b.BoundSubquery):
                for ref_depth, offset in node.outer_refs:
                    depth = ref_depth - shift - 1
                    if depth >= 1:
                        seen[(depth, offset)] = None
            elif isinstance(node, b.BoundMeasureEval):
                for child in node.context.child_exprs():
                    visit_expr(child, shift)

    for expr in plan_expressions(plan):
        visit_expr(expr, 0)
    return list(seen)


def transform_plan_exprs(
    plan: plans.LogicalPlan,
    fn: Callable[[b.BoundExpr], b.BoundExpr],
) -> None:
    """Apply ``fn`` to every expression of ``plan`` in place (all inputs,
    not descending into subquery plans — callers handle those via ``fn``)."""
    if isinstance(plan, plans.ValuesPlan):
        plan.rows = [[fn(cell) for cell in row] for row in plan.rows]
    elif isinstance(plan, plans.Filter):
        plan.predicate = fn(plan.predicate)
    elif isinstance(plan, plans.Project):
        plan.exprs = [fn(expr) for expr in plan.exprs]
    elif isinstance(plan, plans.Join):
        if plan.condition is not None:
            plan.condition = fn(plan.condition)
    elif isinstance(plan, plans.Aggregate):
        plan.group_exprs = [fn(expr) for expr in plan.group_exprs]
        plan.agg_calls = [fn(call) for call in plan.agg_calls]  # type: ignore[misc]
    elif isinstance(plan, plans.Window):
        plan.calls = [fn(call) for call in plan.calls]  # type: ignore[misc]
    elif isinstance(plan, plans.Sort):
        plan.keys = [
            b.SortSpec(fn(spec.expr), spec.descending, spec.nulls_first)
            for spec in plan.keys
        ]
    elif isinstance(plan, plans.Limit):
        if plan.limit is not None:
            plan.limit = fn(plan.limit)
        if plan.offset is not None:
            plan.offset = fn(plan.offset)
    for child in plan.inputs():
        transform_plan_exprs(child, fn)


def normalize_outer(expr: b.BoundExpr, depth: int) -> Optional[b.BoundExpr]:
    """Rewrite outer references at ``depth`` into local column references.

    Returns None when the expression contains subqueries or other-depth
    outer references (no safe normal form for fingerprint matching).
    """
    blocked = False

    def visit(node: b.BoundExpr) -> Optional[b.BoundExpr]:
        nonlocal blocked
        if isinstance(node, b.BoundOuterColumn):
            if node.depth == depth:
                return b.BoundColumn(node.offset, node.dtype, node.name)
            blocked = True
            return node
        if isinstance(node, (b.BoundSubquery, b.BoundMeasureEval)):
            blocked = True
            return node
        return None

    normalized = transform_expr(expr, visit)
    return None if blocked else normalized


def remap_outer_expr(
    expr: b.BoundExpr,
    mapping: dict[int, int],
    expr_mapping: dict[str, tuple[int, "b.DataType"]],
    depth: int = 1,
) -> b.BoundExpr:
    """Remap outer references at ``depth`` onto aggregate-output slots.

    A whole subtree whose outer-normalized form matches a GROUP BY
    expression is replaced by one outer reference to that key's slot (this is
    what makes ``YEAR(o.orderDate)`` legal against ``GROUP BY
    YEAR(orderDate)``); remaining lone references must be group keys
    themselves (SQL's correlation rule for aggregates).
    """

    def visit(node: b.BoundExpr) -> Optional[b.BoundExpr]:
        if not isinstance(node, b.BoundOuterColumn):
            has_target_ref = any(
                isinstance(n, b.BoundOuterColumn) and n.depth == depth
                for n in b.walk(node)
            )
            if has_target_ref:
                normalized = normalize_outer(node, depth)
                if normalized is not None:
                    from repro.semantics.bound import fingerprint

                    hit = expr_mapping.get(fingerprint(normalized))
                    if hit is not None:
                        slot, dtype = hit
                        return b.BoundOuterColumn(depth, slot, dtype)
        if isinstance(node, b.BoundOuterColumn) and node.depth == depth:
            if node.offset not in mapping:
                raise BindError(
                    f"correlated reference to {node.name or 'a column'} "
                    "must be a GROUP BY expression of the outer query"
                )
            return b.BoundOuterColumn(
                depth, mapping[node.offset], node.dtype, node.name
            )
        if isinstance(node, b.BoundSubquery):
            remap_plan_outer(node.plan, mapping, expr_mapping, depth + 1)
            node.outer_refs = collect_outer_refs(node.plan)
            return node
        return None

    return transform_expr(expr, visit)


def remap_plan_outer(
    plan: plans.LogicalPlan,
    mapping: dict[int, int],
    expr_mapping: Optional[dict[str, tuple[int, "b.DataType"]]] = None,
    depth: int = 1,
) -> None:
    """Remap a subquery plan's outer references in place (see
    :func:`remap_outer_expr`)."""
    expr_mapping = expr_mapping or {}
    transform_plan_exprs(
        plan, lambda e: remap_outer_expr(e, mapping, expr_mapping, depth)
    )
