"""Name-resolution scopes.

A :class:`Scope` holds the relations visible in one query level's FROM clause;
scopes chain to enclosing query levels for correlated references.  Columns
resolve to a :class:`Resolution` carrying the nesting depth (0 = this query)
and the flat offset into that level's FROM row, or to a measure binding when
the name denotes a measure column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import BindError
from repro.semantics.bound import BoundExpr
from repro.types import DataType

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.definition import MeasureGroup, MeasureInstance

__all__ = ["RelColumn", "Relation", "Scope", "Resolution"]


@dataclass
class RelColumn:
    """One column exposed by a FROM-clause relation.

    Measure columns have ``offset`` None (they are virtual) and carry their
    :class:`~repro.core.definition.MeasureInstance`.
    """

    name: str
    dtype: DataType
    offset: Optional[int]
    measure: Optional["MeasureInstance"] = None

    @property
    def is_measure(self) -> bool:
        return self.measure is not None


@dataclass
class Relation:
    """A FROM-clause item: alias, columns, and measure metadata."""

    alias: Optional[str]
    columns: list[RelColumn]
    start: int  # first FROM-row offset owned by this relation
    width: int  # number of non-measure columns
    group: Optional["MeasureGroup"] = None
    #: FROM-row offset -> the dimension expression over the measure source.
    dim_for_offset: dict[int, BoundExpr] = field(default_factory=dict)

    def find(self, name: str) -> Optional[RelColumn]:
        lowered = name.lower()
        for column in self.columns:
            if column.name.lower() == lowered:
                return column
        return None


@dataclass
class Resolution:
    depth: int
    relation: Relation
    column: RelColumn


class Scope:
    """Visible relations for one query level, chained to the enclosing level."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.relations: list[Relation] = []
        #: Column names merged by USING/NATURAL joins: unqualified references
        #: resolve to the left occurrence instead of being ambiguous.
        self.merged_names: set[str] = set()

    @property
    def width(self) -> int:
        return sum(relation.width for relation in self.relations)

    def add_relation(self, relation: Relation) -> None:
        if relation.alias:
            lowered = relation.alias.lower()
            for existing in self.relations:
                if existing.alias and existing.alias.lower() == lowered:
                    raise BindError(f"duplicate table alias {relation.alias!r}")
        self.relations.append(relation)

    def resolve(self, parts: tuple[str, ...]) -> Resolution:
        """Resolve a possibly-qualified column name, walking up the chain."""
        depth = 0
        scope: Optional[Scope] = self
        while scope is not None:
            found = scope._resolve_local(parts)
            if found is not None:
                relation, column = found
                return Resolution(depth, relation, column)
            scope = scope.parent
            depth += 1
        raise BindError(f"unknown column {'.'.join(parts)!r}")

    def _resolve_local(
        self, parts: tuple[str, ...]
    ) -> Optional[tuple[Relation, RelColumn]]:
        if len(parts) >= 2:
            qualifier = parts[-2].lower()
            name = parts[-1]
            for relation in self.relations:
                if relation.alias and relation.alias.lower() == qualifier:
                    column = relation.find(name)
                    if column is None:
                        raise BindError(
                            f"relation {relation.alias!r} has no column {name!r}"
                        )
                    return relation, column
            return None
        name = parts[0]
        matches = [
            (relation, column)
            for relation in self.relations
            if (column := relation.find(name)) is not None
        ]
        if not matches:
            return None
        if len(matches) > 1:
            if name.lower() in self.merged_names:
                return matches[0]
            raise BindError(f"ambiguous column reference {name!r}")
        return matches[0]

    def relation_of_offset(self, offset: int) -> Optional[Relation]:
        for relation in self.relations:
            if relation.start <= offset < relation.start + relation.width:
                return relation
        return None
