"""Bound expression IR.

The binder translates AST expressions into this IR.  Bound expressions
reference their inputs by **column offset** into the current operator's input
row (a flat tuple), which makes evaluation fast and makes expression identity
well-defined: :func:`fingerprint` renders a canonical string used for

* matching SELECT expressions against GROUP BY expressions,
* identifying dimensions in ``AT (ALL dim)`` / ``AT (SET dim = ...)``,
* memoization keys for measure evaluation and correlated subqueries.

Correlated references into an enclosing query's row are
:class:`BoundOuterColumn` with a ``depth`` (1 = immediately enclosing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

from repro.sql.printer import format_literal
from repro.types import DataType

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.core.context import ContextSpec
    from repro.core.definition import MeasureInstance
    from repro.plan.logical import LogicalPlan

__all__ = [
    "BoundExpr",
    "BoundLiteral",
    "BoundColumn",
    "BoundParameter",
    "BoundOuterColumn",
    "BoundCall",
    "BoundCase",
    "BoundCast",
    "BoundInList",
    "BoundAggCall",
    "BoundAggRef",
    "BoundWindowCall",
    "BoundGroupingId",
    "BoundSubquery",
    "BoundMeasureEval",
    "BoundCurrentDim",
    "fingerprint",
    "walk",
    "max_outer_depth",
    "contains_aggregate",
    "SortSpec",
]


class BoundExpr:
    """Base class of all bound expressions."""

    dtype: DataType

    #: Source position of the AST node this expression was bound from
    #: (``repro.sql.ast.Span`` or None).  Set by :meth:`ExprBinder.bind`
    #: as an instance attribute; carried through rewrites by value so the
    #: evaluator and the dataflow analyzer can point errors and
    #: diagnostics at real source text.
    span = None

    def children(self) -> Iterator["BoundExpr"]:
        return iter(())


@dataclass
class BoundLiteral(BoundExpr):
    value: Any
    dtype: DataType


@dataclass
class BoundParameter(BoundExpr):
    """A positional query parameter, read from the execution context."""

    index: int
    dtype: DataType


@dataclass
class BoundColumn(BoundExpr):
    """A column of the current operator's input row."""

    offset: int
    dtype: DataType
    name: str = ""


@dataclass
class BoundOuterColumn(BoundExpr):
    """A correlated reference to an enclosing query's row."""

    depth: int
    offset: int
    dtype: DataType
    name: str = ""


@dataclass
class BoundCall(BoundExpr):
    """A scalar function or operator call.

    ``op`` is the canonical name (e.g. ``+``, ``AND``, ``YEAR``); ``fn`` is
    the runtime callable taking evaluated argument values.
    """

    op: str
    args: list[BoundExpr]
    dtype: DataType
    fn: Callable[..., Any]

    def children(self) -> Iterator[BoundExpr]:
        return iter(self.args)


@dataclass
class BoundCase(BoundExpr):
    """Searched CASE (simple CASE is desugared by the binder)."""

    whens: list[tuple[BoundExpr, BoundExpr]]
    else_result: Optional[BoundExpr]
    dtype: DataType

    def children(self) -> Iterator[BoundExpr]:
        for cond, result in self.whens:
            yield cond
            yield result
        if self.else_result is not None:
            yield self.else_result


@dataclass
class BoundCast(BoundExpr):
    operand: BoundExpr
    dtype: DataType

    def children(self) -> Iterator[BoundExpr]:
        yield self.operand


@dataclass
class BoundInList(BoundExpr):
    operand: BoundExpr
    items: list[BoundExpr]
    negated: bool
    dtype: DataType

    def children(self) -> Iterator[BoundExpr]:
        yield self.operand
        yield from self.items


@dataclass
class BoundAggCall(BoundExpr):
    """An aggregate function call, evaluated over a set of rows.

    Appears in two places: inside :class:`~repro.plan.logical.Aggregate`
    nodes (the normal case) and inside measure formulas, where the row set is
    the measure's context-filtered source rows.
    """

    func: str
    args: list[BoundExpr]
    distinct: bool
    star: bool
    filter_where: Optional[BoundExpr]
    dtype: DataType
    order_by: list["SortSpec"] = field(default_factory=list)
    within_distinct: list[BoundExpr] = field(default_factory=list)

    def children(self) -> Iterator[BoundExpr]:
        yield from self.args
        if self.filter_where is not None:
            yield self.filter_where
        for spec in self.order_by:
            yield spec.expr
        yield from self.within_distinct


@dataclass
class SortSpec:
    """One ORDER BY key: expression + direction + null placement."""

    expr: BoundExpr
    descending: bool = False
    nulls_first: Optional[bool] = None


@dataclass
class BoundAggRef(BoundExpr):
    """Reference to an aggregate slot in the Aggregate operator's output."""

    index: int
    dtype: DataType


@dataclass
class BoundWindowCall(BoundExpr):
    """A window function call (evaluated by the Window operator)."""

    func: str
    args: list[BoundExpr]
    partition_by: list[BoundExpr]
    order_by: list[SortSpec]
    frame: Optional[tuple]  # (unit, start_kind, start_off, end_kind, end_off)
    dtype: DataType
    distinct: bool = False
    star: bool = False

    def children(self) -> Iterator[BoundExpr]:
        yield from self.args
        yield from self.partition_by
        for spec in self.order_by:
            yield spec.expr


@dataclass
class BoundGroupingId(BoundExpr):
    """``GROUPING(...)`` / ``GROUPING_ID(...)``: reads the grouping bitmap.

    ``grouping_column`` is the offset of the hidden grouping-id column in the
    Aggregate output; ``key_indexes`` are the positions (within the group key
    list) of the argument dimensions, most significant first.
    """

    grouping_column: int
    key_indexes: list[int]
    dtype: DataType


@dataclass
class BoundSubquery(BoundExpr):
    """A scalar / EXISTS / IN subquery with its own plan.

    ``outer_refs`` lists the (depth, offset) pairs of every correlated
    reference *as seen from inside the subquery* (depth >= 1); the executor
    uses their runtime values as a memoization key.
    """

    plan: "LogicalPlan"
    kind: str  # 'SCALAR' | 'EXISTS' | 'IN'
    dtype: DataType
    operand: Optional[BoundExpr] = None  # for IN
    negated: bool = False
    outer_refs: list[tuple[int, int]] = field(default_factory=list)

    def children(self) -> Iterator[BoundExpr]:
        if self.operand is not None:
            yield self.operand


@dataclass
class BoundMeasureEval(BoundExpr):
    """Evaluation of a measure (a CSE) at a call site.

    This is the paper's ``EVAL(m AT (...))``: ``measure`` identifies the
    measure and its source relation, ``context`` describes how to build the
    evaluation-context predicate from the current row.
    """

    measure: "MeasureInstance"
    context: "ContextSpec"
    dtype: DataType

    def children(self) -> Iterator[BoundExpr]:
        yield from self.context.child_exprs()


@dataclass
class BoundCurrentDim(BoundExpr):
    """``CURRENT dim`` inside an AT modifier: reads the dimension's pinned
    value from the evaluation context being modified (NULL if unconstrained)."""

    dim_key: str
    dtype: DataType


# ---------------------------------------------------------------------------
# Utilities
# ---------------------------------------------------------------------------


def walk(expr: BoundExpr) -> Iterator[BoundExpr]:
    """Yield ``expr`` and all descendants, pre-order."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def max_outer_depth(expr: BoundExpr) -> int:
    """Deepest enclosing-scope reference in ``expr`` (0 = uncorrelated)."""
    depth = 0
    for node in walk(expr):
        if isinstance(node, BoundOuterColumn):
            depth = max(depth, node.depth)
        elif isinstance(node, BoundSubquery):
            for ref_depth, _ in node.outer_refs:
                # Refs at depth d inside the subquery point d-1 levels above us.
                depth = max(depth, ref_depth - 1)
    return depth


def contains_aggregate(expr: BoundExpr) -> bool:
    return any(isinstance(node, BoundAggCall) for node in walk(expr))


def fingerprint(expr: BoundExpr) -> str:
    """A canonical string identity for a bound expression.

    Two expressions with equal fingerprints compute the same value on the
    same input row.  Used for GROUP BY matching and dimension keys.
    """
    if isinstance(expr, BoundLiteral):
        return format_literal(expr.value)
    if isinstance(expr, BoundParameter):
        return f"?{expr.index}"
    if isinstance(expr, BoundColumn):
        return f"${expr.offset}"
    if isinstance(expr, BoundOuterColumn):
        return f"$up{expr.depth}.{expr.offset}"
    if isinstance(expr, BoundCall):
        args = ",".join(fingerprint(a) for a in expr.args)
        return f"{expr.op}({args})"
    if isinstance(expr, BoundCase):
        whens = ",".join(
            f"{fingerprint(c)}:{fingerprint(r)}" for c, r in expr.whens
        )
        tail = fingerprint(expr.else_result) if expr.else_result else ""
        return f"CASE({whens};{tail})"
    if isinstance(expr, BoundCast):
        return f"CAST({fingerprint(expr.operand)} AS {expr.dtype})"
    if isinstance(expr, BoundInList):
        items = ",".join(fingerprint(i) for i in expr.items)
        head = "NOTIN" if expr.negated else "IN"
        return f"{head}({fingerprint(expr.operand)};{items})"
    if isinstance(expr, BoundAggCall):
        args = ",".join(fingerprint(a) for a in expr.args)
        parts = [expr.func, "D" if expr.distinct else "", "*" if expr.star else "", args]
        if expr.filter_where is not None:
            parts.append(fingerprint(expr.filter_where))
        if expr.within_distinct:
            parts.append("W:" + ",".join(fingerprint(k) for k in expr.within_distinct))
        return "AGG(" + "|".join(parts) + ")"
    if isinstance(expr, BoundAggRef):
        return f"$agg{expr.index}"
    if isinstance(expr, BoundGroupingId):
        keys = ",".join(str(i) for i in expr.key_indexes)
        return f"GROUPING_ID({keys}@{expr.grouping_column})"
    if isinstance(expr, BoundCurrentDim):
        return f"CURRENT({expr.dim_key})"
    if isinstance(expr, BoundMeasureEval):
        return f"MEASURE({id(expr.measure)};{expr.context.fingerprint()})"
    if isinstance(expr, BoundSubquery):
        return f"SUBQ({id(expr.plan)})"
    if isinstance(expr, BoundWindowCall):
        return f"WIN({id(expr)})"
    raise TypeError(f"no fingerprint for {type(expr).__name__}")
