"""Expression binding: AST expressions to the bound IR.

One :class:`ExprBinder` binds one clause of one query.  It knows the query's
scope, whether aggregates are allowed at its call site, and — for measure
machinery — how to attach evaluation-context information to measure
references:

* a measure column reference becomes a :class:`BoundMeasureEval` whose
  :class:`~repro.core.context.ContextSpec` starts life as a row-grain
  placeholder; the query binder later rewrites it for aggregate call sites;
* ``AGGREGATE(m)`` prepends a VISIBLE modifier (paper: ``AGGREGATE(m)`` is
  ``EVAL(m AT (VISIBLE))``);
* ``m AT (mods)`` binds the modifiers against the measure's dimensions;
* inside ``AT (WHERE p)``, unqualified names resolve to the measure table's
  dimensions (the source row) while qualified names resolve to the enclosing
  query (the call-site row) — exactly the reading of paper Listing 12 query 4.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.context import ContextSpec
from repro.core.modifiers import (
    BoundAll,
    BoundModifier,
    BoundSet,
    BoundVisible,
    BoundWhere,
)
from repro.engine.aggregates import aggregate_result_type, is_aggregate_function
from repro.engine.functions import lookup_function
from repro.engine.window import is_window_only_function
from repro.errors import BindError, MeasureError, UnsupportedError
from repro.semantics import bound as b
from repro.semantics.correlate import collect_outer_refs, transform_expr
from repro.semantics.scope import Relation, Scope
from repro.sql import ast
from repro.types import (
    BOOLEAN,
    DOUBLE,
    INTEGER,
    UNKNOWN,
    VARCHAR,
    DataType,
    arithmetic_result,
    common_type,
    division_result,
    infer_literal_type,
    is_distinct,
    is_not_distinct,
    parse_type_name,
    sql_add,
    sql_and,
    sql_compare,
    sql_div,
    sql_mod,
    sql_mul,
    sql_neg,
    sql_not,
    sql_or,
    sql_sub,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.semantics.binder import QueryBinder

__all__ = ["ExprBinder"]


def _null_propagating(fn):
    def wrapper(*args):
        for arg in args:
            if arg is None:
                return None
        return fn(*args)

    return wrapper


def _concat(left, right):
    if left is None or right is None:
        return None
    return str(left) + str(right)


def _between(value, low, high):
    return sql_and(sql_compare(">=", value, low), sql_compare("<=", value, high))


def _not_between(value, low, high):
    return sql_not(_between(value, low, high))


def _like_matcher(negated: bool):
    import re

    def matcher(value, pattern, escape=None):
        if value is None or pattern is None:
            return None
        regex_parts = []
        index = 0
        while index < len(pattern):
            char = pattern[index]
            if escape and char == escape and index + 1 < len(pattern):
                regex_parts.append(re.escape(pattern[index + 1]))
                index += 2
                continue
            if char == "%":
                regex_parts.append(".*")
            elif char == "_":
                regex_parts.append(".")
            else:
                regex_parts.append(re.escape(char))
            index += 1
        matched = re.fullmatch("".join(regex_parts), value, re.DOTALL) is not None
        return (not matched) if negated else matched

    return matcher


class ExprBinder:
    """Binds AST expressions for one clause of one query."""

    def __init__(
        self,
        query_binder: "QueryBinder",
        scope: Scope,
        *,
        allow_aggregates: bool = False,
        allow_windows: bool = False,
        allow_measures: bool = True,
        formula_mode: bool = False,
        clause: str = "expression",
    ):
        self.qb = query_binder
        self.scope = scope
        self.allow_aggregates = allow_aggregates
        self.allow_windows = allow_windows
        self.allow_measures = allow_measures
        self.formula_mode = formula_mode
        self.clause = clause
        self._in_aggregate_args = False

    # -- entry point -------------------------------------------------------

    def bind(self, expr: ast.Expression) -> b.BoundExpr:
        method = getattr(self, f"_bind_{type(expr).__name__}", None)
        if method is None:
            raise UnsupportedError(f"cannot bind {type(expr).__name__}")
        try:
            bound = method(expr)
        except BindError as exc:
            # Attach the offending node's source span: the innermost node
            # with a span wins, errors keep their position while unwinding.
            span = ast.node_span(expr)
            if span is not None:
                exc.attach_location(span.line, span.column)
            raise
        # Thread the source span onto the bound node (innermost span wins:
        # sub-binders that already stamped one keep it) so runtime errors
        # and dataflow diagnostics can point at source text.
        if bound.span is None:
            span = ast.node_span(expr)
            if span is not None:
                bound.span = span
        return bound

    # -- leaves -----------------------------------------------------------

    def _bind_Literal(self, expr: ast.Literal) -> b.BoundExpr:
        return b.BoundLiteral(expr.value, infer_literal_type(expr.value))

    def _bind_Parameter(self, expr: ast.Parameter) -> b.BoundExpr:
        return b.BoundParameter(expr.index, UNKNOWN)

    def _bind_ColumnRef(self, expr: ast.ColumnRef) -> b.BoundExpr:
        # Sibling measures defined in the same SELECT may be referenced by
        # name inside measure formulas (paper section 5.4).
        if self.formula_mode and len(expr.parts) == 1:
            sibling = self.qb.resolve_sibling_measure(expr.parts[0])
            if sibling is not None:
                return sibling
        resolution = self.scope.resolve(expr.parts)
        column = resolution.column
        if column.is_measure:
            if not self.allow_measures:
                raise MeasureError(
                    f"measure {column.name!r} is not allowed in the {self.clause} clause"
                )
            if resolution.depth > 0:
                raise UnsupportedError(
                    f"correlated reference to measure {column.name!r} is not supported"
                )
            return self.qb.new_measure_eval(
                column.measure, resolution.relation, inherited=self.formula_mode
            )
        if resolution.depth == 0:
            return b.BoundColumn(column.offset, column.dtype, column.name)
        return b.BoundOuterColumn(
            resolution.depth, column.offset, column.dtype, column.name
        )

    def _bind_Star(self, expr: ast.Star) -> b.BoundExpr:
        raise BindError("* is only valid as a SELECT item or inside COUNT(*)")

    # -- operators ----------------------------------------------------------

    def _bind_Unary(self, expr: ast.Unary) -> b.BoundExpr:
        operand = self.bind(expr.operand)
        if expr.op == "NOT":
            return b.BoundCall("NOT", [operand], BOOLEAN, sql_not)
        if expr.op == "-":
            return b.BoundCall(
                "NEG", [operand], operand.dtype.unwrap(), sql_neg
            )
        raise UnsupportedError(f"unary operator {expr.op}")

    def _bind_Binary(self, expr: ast.Binary) -> b.BoundExpr:
        left = self.bind(expr.left)
        right = self.bind(expr.right)
        return self._make_binary(expr.op, left, right)

    def _make_binary(self, op: str, left: b.BoundExpr, right: b.BoundExpr) -> b.BoundExpr:
        if op == "AND":
            return b.BoundCall("AND", [left, right], BOOLEAN, sql_and)
        if op == "OR":
            return b.BoundCall("OR", [left, right], BOOLEAN, sql_or)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            fn = lambda a, c, op=op: sql_compare(op, a, c)  # noqa: E731
            return b.BoundCall(op, [left, right], BOOLEAN, fn)
        if op == "+":
            return b.BoundCall(
                "+", [left, right], arithmetic_result(left.dtype, right.dtype), sql_add
            )
        if op == "-":
            return b.BoundCall(
                "-", [left, right], arithmetic_result(left.dtype, right.dtype), sql_sub
            )
        if op == "*":
            return b.BoundCall(
                "*", [left, right], arithmetic_result(left.dtype, right.dtype), sql_mul
            )
        if op == "/":
            return b.BoundCall(
                "/", [left, right], division_result(left.dtype, right.dtype), sql_div
            )
        if op == "%":
            return b.BoundCall(
                "%", [left, right], arithmetic_result(left.dtype, right.dtype), sql_mod
            )
        if op == "||":
            return b.BoundCall("||", [left, right], VARCHAR, _concat)
        raise UnsupportedError(f"binary operator {op}")

    def _bind_IsNull(self, expr: ast.IsNull) -> b.BoundExpr:
        operand = self.bind(expr.operand)
        if expr.negated:
            fn = lambda v: v is not None  # noqa: E731
        else:
            fn = lambda v: v is None  # noqa: E731
        return b.BoundCall("IS NULL", [operand], BOOLEAN, fn)

    def _bind_IsDistinctFrom(self, expr: ast.IsDistinctFrom) -> b.BoundExpr:
        left = self.bind(expr.left)
        right = self.bind(expr.right)
        fn = is_not_distinct if expr.negated else is_distinct
        return b.BoundCall("IS DISTINCT", [left, right], BOOLEAN, fn)

    def _bind_Between(self, expr: ast.Between) -> b.BoundExpr:
        operand = self.bind(expr.operand)
        low = self.bind(expr.low)
        high = self.bind(expr.high)
        fn = _not_between if expr.negated else _between
        return b.BoundCall("BETWEEN", [operand, low, high], BOOLEAN, fn)

    def _bind_InList(self, expr: ast.InList) -> b.BoundExpr:
        operand = self.bind(expr.operand)
        items = [self.bind(item) for item in expr.items]
        return b.BoundInList(operand, items, expr.negated, BOOLEAN)

    def _bind_Like(self, expr: ast.Like) -> b.BoundExpr:
        operand = self.bind(expr.operand)
        pattern = self.bind(expr.pattern)
        args = [operand, pattern]
        if expr.escape is not None:
            args.append(self.bind(expr.escape))
        return b.BoundCall("LIKE", args, BOOLEAN, _like_matcher(expr.negated))

    def _bind_Case(self, expr: ast.Case) -> b.BoundExpr:
        whens: list[tuple[b.BoundExpr, b.BoundExpr]] = []
        result_type: DataType = UNKNOWN
        for when in expr.whens:
            if expr.operand is not None:
                condition = b.BoundCall(
                    "=",
                    [self.bind(expr.operand), self.bind(when.condition)],
                    BOOLEAN,
                    lambda a, c: sql_compare("=", a, c),
                )
            else:
                condition = self.bind(when.condition)
            result = self.bind(when.result)
            result_type = common_type(result_type, result.dtype)
            whens.append((condition, result))
        else_result = None
        if expr.else_result is not None:
            else_result = self.bind(expr.else_result)
            result_type = common_type(result_type, else_result.dtype)
        return b.BoundCase(whens, else_result, result_type)

    def _bind_Cast(self, expr: ast.Cast) -> b.BoundExpr:
        if expr.is_measure_type:
            raise UnsupportedError("CAST to a MEASURE type is not supported")
        operand = self.bind(expr.operand)
        return b.BoundCast(operand, parse_type_name(expr.type_name))

    # -- subqueries ---------------------------------------------------------

    def _bind_ScalarSubquery(self, expr: ast.ScalarSubquery) -> b.BoundExpr:
        plan, columns = self.qb.binder.bind_query_top(expr.query, self.scope)
        if len(columns) != 1:
            raise BindError("scalar subquery must return exactly one column")
        return b.BoundSubquery(
            plan,
            "SCALAR",
            columns[0].dtype.unwrap(),
            outer_refs=collect_outer_refs(plan),
        )

    def _bind_Exists(self, expr: ast.Exists) -> b.BoundExpr:
        plan, _ = self.qb.binder.bind_query_top(expr.query, self.scope)
        return b.BoundSubquery(
            plan,
            "EXISTS",
            BOOLEAN,
            negated=expr.negated,
            outer_refs=collect_outer_refs(plan),
        )

    def _bind_InSubquery(self, expr: ast.InSubquery) -> b.BoundExpr:
        operand = self.bind(expr.operand)
        plan, columns = self.qb.binder.bind_query_top(expr.query, self.scope)
        if len(columns) != 1:
            raise BindError("IN subquery must return exactly one column")
        return b.BoundSubquery(
            plan,
            "IN",
            BOOLEAN,
            operand=operand,
            negated=expr.negated,
            outer_refs=collect_outer_refs(plan),
        )

    # -- function calls -----------------------------------------------------

    def _bind_FunctionCall(self, expr: ast.FunctionCall) -> b.BoundExpr:
        name = expr.name.upper()
        if expr.over is not None or expr.over_name is not None:
            return self._bind_window_call(expr)
        if name in ("AGGREGATE", "EVAL"):
            return self._bind_measure_operator(expr)
        if name in ("GROUPING", "GROUPING_ID"):
            args = [self.bind(arg) for arg in expr.args]
            if not args:
                raise BindError(f"{name} requires at least one argument")
            return b.BoundCall("$GROUPING", args, INTEGER, _grouping_misuse)
        if is_window_only_function(name):
            raise BindError(f"{name} requires an OVER clause")
        if is_aggregate_function(name):
            return self._bind_aggregate_call(expr)
        function = lookup_function(name)
        if function is None:
            raise BindError(f"unknown function {name}")
        function.check_arity(len(expr.args))
        args = [self.bind(arg) for arg in expr.args]
        fn = function.fn if function.null_safe else _null_propagating(function.fn)
        return b.BoundCall(name, args, function.result_type([a.dtype for a in args]), fn)

    def _bind_aggregate_call(self, expr: ast.FunctionCall) -> b.BoundExpr:
        name = expr.name.upper()
        if not self.allow_aggregates:
            raise BindError(
                f"aggregate function {name} is not allowed in the {self.clause} clause"
            )
        if self._in_aggregate_args:
            raise BindError("aggregate functions cannot be nested")
        if name == "COUNT" and expr.star_arg:
            filter_where = (
                self.bind(expr.filter_where) if expr.filter_where is not None else None
            )
            within_distinct = [self.bind(k) for k in expr.within_distinct]
            return b.BoundAggCall(
                "COUNT", [], False, True, filter_where, INTEGER,
                within_distinct=within_distinct,
            )
        if expr.star_arg:
            raise BindError(f"{name}(*) is not valid")
        if not expr.args:
            raise BindError(f"{name} requires an argument")
        self._in_aggregate_args = True
        try:
            args = [self.bind(arg) for arg in expr.args]
            filter_where = (
                self.bind(expr.filter_where) if expr.filter_where is not None else None
            )
            order_by = [
                b.SortSpec(self.bind(item.expr), item.descending, item.nulls_first)
                for item in expr.order_by
            ]
            within_distinct = [self.bind(k) for k in expr.within_distinct]
        finally:
            self._in_aggregate_args = False
        dtype = aggregate_result_type(name, [a.dtype for a in args])
        return b.BoundAggCall(
            name, args, expr.distinct, False, filter_where, dtype, order_by,
            within_distinct,
        )

    def _bind_window_call(self, expr: ast.FunctionCall) -> b.BoundExpr:
        name = expr.name.upper()
        if not self.allow_windows:
            raise BindError(
                f"window function {name} is not allowed in the {self.clause} clause"
            )
        if not (is_window_only_function(name) or is_aggregate_function(name)):
            raise BindError(f"{name} is not a window function")
        args = [self.bind(arg) for arg in expr.args]
        spec = expr.over
        if spec is None and expr.over_name is not None:
            spec = self.qb.resolve_named_window(expr.over_name)
        partition_by = [self.bind(e) for e in spec.partition_by]
        order_by = [
            b.SortSpec(self.bind(item.expr), item.descending, item.nulls_first)
            for item in spec.order_by
        ]
        frame = None
        if spec.frame is not None:
            frame = (
                spec.frame.unit,
                spec.frame.start.kind,
                self.bind(spec.frame.start.offset)
                if spec.frame.start.offset is not None
                else None,
                spec.frame.end.kind,
                self.bind(spec.frame.end.offset)
                if spec.frame.end.offset is not None
                else None,
            )
        if is_aggregate_function(name):
            dtype = aggregate_result_type(
                name, [a.dtype for a in args]
            ) if (args or name == "COUNT") else UNKNOWN
        elif name in ("LAG", "LEAD", "FIRST_VALUE", "LAST_VALUE"):
            dtype = args[0].dtype.unwrap() if args else UNKNOWN
        elif name in ("PERCENT_RANK", "CUME_DIST"):
            dtype = DOUBLE
        else:
            dtype = INTEGER
        return b.BoundWindowCall(
            name,
            args,
            partition_by,
            order_by,
            frame,
            dtype,
            distinct=expr.distinct,
            star=expr.star_arg,
        )

    # -- measure operators -------------------------------------------------

    def _bind_measure_operator(self, expr: ast.FunctionCall) -> b.BoundExpr:
        name = expr.name.upper()
        if len(expr.args) != 1 or expr.star_arg:
            raise BindError(f"{name} takes exactly one argument")
        operand = self.bind(expr.args[0])
        if not isinstance(operand, b.BoundMeasureEval):
            raise MeasureError(f"the argument of {name} must be a measure")
        if name == "AGGREGATE":
            # AGGREGATE(m) == EVAL(m AT (VISIBLE)): VISIBLE applies first.
            operand.context.modifiers.insert(0, BoundVisible())
            self.qb.note_aggregate_operator(self.clause)
        return operand

    def _bind_At(self, expr: ast.At) -> b.BoundExpr:
        operand = self.bind(expr.operand)
        if not isinstance(operand, b.BoundMeasureEval):
            raise MeasureError("AT can only be applied to a measure")
        relation = self.qb.relation_for_spec(operand.context)
        modifiers = [self._bind_modifier(m, relation) for m in expr.modifiers]
        # Modifiers of an outer AT apply before those of an inner AT; within
        # one AT they apply left to right (paper section 3.5).
        operand.context.modifiers = modifiers + operand.context.modifiers
        return operand

    def _bind_modifier(self, modifier: ast.AtModifier, relation: Relation) -> BoundModifier:
        if isinstance(modifier, ast.AllModifier):
            if not modifier.dims:
                return BoundAll(None)
            keys = [self._dimension_of(dim, relation)[1] for dim in modifier.dims]
            return BoundAll(keys)
        if isinstance(modifier, ast.SetModifier):
            source_expr, key = self._dimension_of(modifier.dim, relation)
            value = self._bind_set_value(modifier.value, relation)
            return BoundSet(key, source_expr, value)
        if isinstance(modifier, ast.VisibleModifier):
            return BoundVisible()
        if isinstance(modifier, ast.WhereModifier):
            return self._bind_where_modifier(modifier.predicate, relation)
        raise UnsupportedError(f"unknown AT modifier {type(modifier).__name__}")

    def _dimension_of(
        self, dim_expr: ast.Expression, relation: Relation
    ) -> tuple[b.BoundExpr, str]:
        """Bind a dimension expression and rewrite it onto the source row.

        A bare name that matches one of the measure relation's columns
        resolves there directly, so that ``AT (ALL custName)`` works even
        when another join input also has a custName column.
        """
        if isinstance(dim_expr, ast.ColumnRef) and len(dim_expr.parts) == 1:
            column = relation.find(dim_expr.parts[0])
            if column is not None and not column.is_measure:
                dim = relation.dim_for_offset.get(column.offset)
                if dim is not None:
                    from repro.semantics.bound import fingerprint

                    return dim, fingerprint(dim)
        bound = self.bind(dim_expr)
        rewritten = self.qb.rewrite_to_source(bound, relation)
        if rewritten is None:
            raise MeasureError(
                "AT dimension must be an expression over the measure table's "
                "dimension columns"
            )
        from repro.semantics.bound import fingerprint

        return rewritten, fingerprint(rewritten)

    def _bind_set_value(
        self, value: ast.Expression, relation: Relation
    ) -> b.BoundExpr:
        """Bind a SET value, resolving CURRENT dim against the relation."""

        def bind_with_current(expr: ast.Expression) -> b.BoundExpr:
            if isinstance(expr, ast.CurrentDim):
                source_expr, key = self._dimension_of(expr.dim, relation)
                return b.BoundCurrentDim(key, source_expr.dtype)
            if isinstance(expr, ast.Binary):
                left = bind_with_current(expr.left)
                right = bind_with_current(expr.right)
                return self._make_binary(expr.op, left, right)
            if isinstance(expr, ast.Unary):
                operand = bind_with_current(expr.operand)
                if expr.op == "-":
                    return b.BoundCall("NEG", [operand], operand.dtype.unwrap(), sql_neg)
                if expr.op == "NOT":
                    return b.BoundCall("NOT", [operand], BOOLEAN, sql_not)
                raise UnsupportedError(f"unary operator {expr.op} in SET value")
            if isinstance(expr, ast.FunctionCall):
                name = expr.name.upper()
                function = lookup_function(name)
                if function is None:
                    raise BindError(f"unknown function {name} in SET value")
                function.check_arity(len(expr.args))
                args = [bind_with_current(arg) for arg in expr.args]
                fn = function.fn if function.null_safe else _null_propagating(function.fn)
                return b.BoundCall(
                    name, args, function.result_type([a.dtype for a in args]), fn
                )
            return self.bind(expr)

        return bind_with_current(value)

    def _bind_where_modifier(
        self, predicate: ast.Expression, relation: Relation
    ) -> BoundWhere:
        bound = _AtWhereBinder(self, relation).bind(predicate)
        from repro.semantics.bound import fingerprint

        # Decompose equality conjuncts `source = call_site` so that the
        # evaluator can serve them from the per-dimension source indexes.
        eq_pairs: list[tuple[b.BoundExpr, b.BoundExpr]] = []
        residual: list[b.BoundExpr] = []
        for conjunct in _conjuncts_of(bound):
            pair = _split_eq_conjunct(conjunct)
            if pair is not None:
                eq_pairs.append(pair)
            else:
                residual.append(conjunct)
        pred = None
        if residual:
            pred = residual[0]
            for item in residual[1:]:
                pred = b.BoundCall("AND", [pred, item], BOOLEAN, sql_and)
        outer_refs: list[tuple[int, int]] = []
        if pred is not None:
            for node in b.walk(pred):
                if isinstance(node, b.BoundOuterColumn):
                    outer_refs.append((node.depth, node.offset))
        return BoundWhere(
            pred,
            outer_refs,
            fingerprint(bound),
            eq_pairs,
        )

    def _bind_CurrentDim(self, expr: ast.CurrentDim) -> b.BoundExpr:
        raise MeasureError("CURRENT is only valid inside an AT SET modifier")


def _conjuncts_of(expr: b.BoundExpr) -> list[b.BoundExpr]:
    if isinstance(expr, b.BoundCall) and expr.op == "AND":
        result: list[b.BoundExpr] = []
        for arg in expr.args:
            result.extend(_conjuncts_of(arg))
        return result
    return [expr]


def _split_eq_conjunct(conjunct: b.BoundExpr):
    """``source_side = call_site_side`` -> (source_expr, value_expr)."""
    if not (
        isinstance(conjunct, b.BoundCall)
        and conjunct.op == "="
        and len(conjunct.args) == 2
    ):
        return None
    first, second = conjunct.args
    for source_side, value_side in ((first, second), (second, first)):
        if _is_source_only(source_side) and _is_callsite_only(value_side):
            return source_side, value_side
    return None


def _is_source_only(expr: b.BoundExpr) -> bool:
    saw_column = False
    for node in b.walk(expr):
        if isinstance(node, b.BoundColumn):
            saw_column = True
        elif isinstance(
            node,
            (b.BoundOuterColumn, b.BoundSubquery, b.BoundMeasureEval,
             b.BoundAggCall, b.BoundCurrentDim, b.BoundParameter),
        ):
            return False
    return saw_column


def _is_callsite_only(expr: b.BoundExpr) -> bool:
    for node in b.walk(expr):
        if isinstance(
            node,
            (b.BoundColumn, b.BoundSubquery, b.BoundMeasureEval,
             b.BoundAggCall, b.BoundCurrentDim),
        ):
            return False
    return True


def _grouping_misuse(*_args):
    raise BindError("GROUPING is only valid in a query with GROUP BY")


class _AtWhereBinder(ExprBinder):
    """Binds an ``AT (WHERE ...)`` predicate.

    Unqualified names resolve to the measure table's dimensions (expressions
    over the source row); every other reference resolves through the
    call-site scope with its depth shifted by one, because at runtime the
    predicate is evaluated with the source row as the current row and the
    call-site row as its parent environment.
    """

    def __init__(self, parent: ExprBinder, relation: Relation):
        super().__init__(
            parent.qb,
            parent.scope,
            allow_aggregates=False,
            allow_windows=False,
            allow_measures=False,
            clause="AT WHERE",
        )
        self.relation = relation

    def _bind_ColumnRef(self, expr: ast.ColumnRef) -> b.BoundExpr:
        if len(expr.parts) == 1:
            column = self.relation.find(expr.parts[0])
            if column is not None and not column.is_measure:
                dim = self.relation.dim_for_offset.get(column.offset)
                if dim is not None:
                    return dim
        resolution = self.scope.resolve(expr.parts)
        column = resolution.column
        if column.is_measure:
            raise MeasureError(
                "measures cannot be referenced inside an AT WHERE predicate"
            )
        return b.BoundOuterColumn(
            resolution.depth + 1, column.offset, column.dtype, column.name
        )
