"""Query binding: AST queries to logical plans.

The binder is where the paper's semantics live:

* a query over a table with measures keeps the measure columns *virtual* —
  the relation's plan produces only regular columns, and measure references
  become :class:`~repro.semantics.bound.BoundMeasureEval` expressions;
* ``AS MEASURE`` items define new :class:`~repro.core.definition.MeasureInstance`
  objects whose source plan is the defining query's FROM+WHERE (the WHERE is
  baked in, paper section 3.5) and whose dimensions are the defining query's
  non-measure output columns;
* at aggregate call sites the evaluation context is the conjunction of group
  keys mapped onto the measure's dimensions (paper section 3.3); keys that do
  not map (e.g. group keys from the other side of a join, Listing 9) are
  dropped; grouping sets suppress the terms of rolled-up dimensions
  (Listing 8);
* at row-grain call sites (WHERE clause, non-aggregate SELECT) every
  dimension is pinned to the current row.

Queries bind in two modes.  ``relation`` mode (FROM clauses, views, CTEs)
preserves measure columns so that tables with measures compose and stay
closed (paper section 5.4).  ``top`` mode materializes measure columns at row
grain for display.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.catalog.catalog import Catalog
from repro.catalog.objects import BaseTable, SystemTable, View
from repro.core.context import ContextSpec, GroupTermSpec, VisibleInfo
from repro.core.definition import Dimension, MeasureGroup, MeasureInstance
from repro.core.modifiers import BoundSet, BoundWhere
from repro.errors import BindError, MeasureError, UnsupportedError
from repro.plan import logical as plans
from repro.semantics import bound as b
from repro.semantics.correlate import (
    collect_outer_refs,
    remap_outer_expr,
    remap_plan_outer,
    transform_expr,
)
from repro.semantics.exprbinder import ExprBinder
from repro.semantics.scope import RelColumn, Relation, Scope
from repro.sql import ast
from copy import deepcopy as copy_ast
from repro.types import INTEGER, DataType, MeasureType, UNKNOWN, common_type

__all__ = [
    "Binder",
    "BoundRelation",
    "OutputColumn",
    "QueryBinder",
    "output_column_name",
]


@contextmanager
def _located(node: Optional[ast.Node]) -> Iterator[None]:
    """Attach ``node``'s source span to any :class:`BindError` escaping the
    block.  Covers clause-level raises (GROUP BY / ORDER BY / lifting) that
    happen on bound IR where :class:`ExprBinder`'s own wrapper cannot see the
    originating AST node.  The innermost position wins — an error that already
    carries a location keeps it."""
    try:
        yield
    except BindError as exc:
        span = ast.node_span(node)
        if span is not None:
            exc.attach_location(span.line, span.column)
        raise


def output_column_name(item: ast.SelectItem, index: int) -> str:
    """The result-column name a SELECT item gets when it has no alias.

    Shared with the matview rewriter, which stamps these names onto
    rewritten items so a summary hit returns the same column names as the
    normal path (``COUNT(*)`` must not surface as ``coalesce``).
    """
    if item.alias:
        return item.alias
    expr = item.expr
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FunctionCall):
        if expr.name.upper() in ("AGGREGATE", "EVAL") and expr.args and isinstance(
            expr.args[0], ast.ColumnRef
        ):
            return expr.args[0].name
        return expr.name.lower()
    return f"col{index + 1}"


@dataclass
class OutputColumn:
    """One output column of a bound query."""

    name: str
    dtype: DataType
    measure: Optional[MeasureInstance] = None

    @property
    def is_measure(self) -> bool:
        return self.measure is not None


@dataclass
class BoundRelation:
    """A query bound for use as a relation (FROM item, view, CTE).

    ``plan`` produces the non-measure columns in declaration order; measure
    columns are virtual.  ``dim_exprs`` runs parallel to the non-measure
    columns and gives each one's expression over the measure source row
    (None when the column is not a dimension of the exposed measure group).
    """

    plan: plans.LogicalPlan
    columns: list[OutputColumn]
    group: Optional[MeasureGroup] = None
    dim_exprs: list[Optional[b.BoundExpr]] = field(default_factory=list)

    @property
    def has_measures(self) -> bool:
        return any(column.is_measure for column in self.columns)


class Binder:
    """Top-level binder: resolves catalog objects and CTEs."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._cte_frames: list[dict[str, BoundRelation]] = []

    # -- public API ----------------------------------------------------------

    def bind_query_as_relation(
        self, query: ast.Query, outer_scope: Optional[Scope]
    ) -> BoundRelation:
        if isinstance(query, ast.WithQuery):
            return self._bind_with(query, outer_scope, top=False)
        if isinstance(query, ast.Select):
            return QueryBinder(self, query, outer_scope).bind()
        if isinstance(query, ast.SetOp):
            return self._bind_setop(query, outer_scope)
        if isinstance(query, ast.Values):
            return self._bind_values(query, outer_scope)
        if isinstance(query, ast.ShowStats):
            error = BindError(
                "SHOW STATS is a top-level statement; it cannot appear "
                "inside a view, subquery, or set operation (lint rule RP112)"
            )
            span = ast.node_span(query)
            if span is not None:
                error.attach_location(span.line, span.column)
            raise error
        raise UnsupportedError(f"cannot bind {type(query).__name__}")

    def bind_query_top(
        self, query: ast.Query, outer_scope: Optional[Scope] = None
    ) -> tuple[plans.LogicalPlan, list[OutputColumn]]:
        """Bind a query for direct execution, materializing measure columns
        at row grain."""
        relation = self.bind_query_as_relation(query, outer_scope)
        return materialize_measures(relation)

    def lookup_cte(self, name: str) -> Optional[BoundRelation]:
        lowered = name.lower()
        for frame in reversed(self._cte_frames):
            if lowered in frame:
                return frame[lowered]
        return None

    # -- query forms ---------------------------------------------------------

    def _bind_with(
        self, query: ast.WithQuery, outer_scope: Optional[Scope], *, top: bool
    ) -> BoundRelation:
        frame: dict[str, BoundRelation] = {}
        self._cte_frames.append(frame)
        try:
            for cte in query.ctes:
                bound = self.bind_query_as_relation(cte.query, outer_scope)
                if cte.columns:
                    if len(cte.columns) != len(bound.columns):
                        raise BindError(
                            f"CTE {cte.name!r} declares {len(cte.columns)} "
                            f"columns but its query returns {len(bound.columns)}"
                        )
                    bound = BoundRelation(
                        bound.plan,
                        [
                            OutputColumn(new_name, col.dtype, col.measure)
                            for new_name, col in zip(cte.columns, bound.columns)
                        ],
                        bound.group,
                        bound.dim_exprs,
                    )
                frame[cte.name.lower()] = bound
            return self.bind_query_as_relation(query.body, outer_scope)
        finally:
            self._cte_frames.pop()

    def _bind_setop(
        self, query: ast.SetOp, outer_scope: Optional[Scope]
    ) -> BoundRelation:
        left_plan, left_cols = self.bind_query_top(query.left, outer_scope)
        right_plan, right_cols = self.bind_query_top(query.right, outer_scope)
        if len(left_cols) != len(right_cols):
            raise BindError(
                f"{query.op} inputs return {len(left_cols)} and "
                f"{len(right_cols)} columns"
            )
        columns = [
            OutputColumn(lc.name, common_type(lc.dtype, rc.dtype))
            for lc, rc in zip(left_cols, right_cols)
        ]
        plan: plans.LogicalPlan = plans.SetOpPlan(
            query.op, query.all, left_plan, right_plan
        )
        if query.order_by or query.limit is not None or query.offset is not None:
            plan = self._setop_tail(plan, query, columns)
        return BoundRelation(plan, columns, None, [None] * len(columns))

    def _setop_tail(
        self,
        plan: plans.LogicalPlan,
        query: ast.SetOp,
        columns: list[OutputColumn],
    ) -> plans.LogicalPlan:
        keys: list[b.SortSpec] = []
        names = [c.name.lower() for c in columns]
        for item in query.order_by:
            if isinstance(item.expr, ast.Literal) and isinstance(item.expr.value, int):
                index = item.expr.value - 1
                if not 0 <= index < len(columns):
                    raise BindError(f"ORDER BY position {item.expr.value} out of range")
            elif isinstance(item.expr, ast.ColumnRef) and len(item.expr.parts) == 1:
                try:
                    index = names.index(item.expr.parts[0].lower())
                except ValueError:
                    raise BindError(
                        f"ORDER BY column {item.expr.parts[0]!r} is not in the "
                        "set operation's output"
                    ) from None
            else:
                raise BindError(
                    "ORDER BY on a set operation must use output names or ordinals"
                )
            keys.append(
                b.SortSpec(
                    b.BoundColumn(index, columns[index].dtype),
                    item.descending,
                    item.nulls_first,
                )
            )
        if keys:
            plan = plans.Sort(plan, keys)
        if query.limit is not None or query.offset is not None:
            binder = ExprBinder(_DummyQueryBinder(self), Scope(), clause="LIMIT")
            limit = binder.bind(query.limit) if query.limit is not None else None
            offset = binder.bind(query.offset) if query.offset is not None else None
            plan = plans.Limit(plan, limit, offset)
        return plan

    def _bind_values(
        self, query: ast.Values, outer_scope: Optional[Scope]
    ) -> BoundRelation:
        if not query.rows:
            raise BindError("VALUES requires at least one row")
        scope = Scope(outer_scope)
        binder = ExprBinder(_DummyQueryBinder(self), scope, clause="VALUES")
        width = len(query.rows[0])
        bound_rows: list[list[b.BoundExpr]] = []
        types: list[DataType] = [UNKNOWN] * width
        for row in query.rows:
            if len(row) != width:
                raise BindError("VALUES rows differ in arity")
            bound_row = [binder.bind(cell) for cell in row]
            for index, cell in enumerate(bound_row):
                types[index] = common_type(types[index], cell.dtype)
            bound_rows.append(bound_row)
        columns = [OutputColumn(f"col{i + 1}", types[i]) for i in range(width)]
        schema = [(c.name, c.dtype) for c in columns]
        plan = plans.ValuesPlan(bound_rows, schema)
        return BoundRelation(plan, columns, None, [None] * width)


class _DummyQueryBinder:
    """Minimal QueryBinder stand-in for scope-less expression binding."""

    def __init__(self, binder: Binder):
        self.binder = binder

    def resolve_sibling_measure(self, name: str):
        return None

    def new_measure_eval(self, measure, relation, inherited=False):
        raise MeasureError("measures are not allowed here")

    def relation_for_spec(self, spec):
        raise MeasureError("measures are not allowed here")

    def rewrite_to_source(self, expr, relation):
        return None

    def note_aggregate_operator(self, clause: str) -> None:
        pass

    def resolve_named_window(self, name: str):
        raise MeasureError("named windows are not allowed here")


def materialize_measures(
    relation: BoundRelation,
) -> tuple[plans.LogicalPlan, list[OutputColumn]]:
    """Evaluate a relation's measure columns at row grain, producing a plan
    whose output matches the declared column list exactly."""
    if not relation.has_measures:
        return relation.plan, relation.columns

    # Row-grain context: every dimension pinned to the current row's value.
    group_terms = []
    offset = 0
    nonmeasure_offsets: list[int] = []
    for column in relation.columns:
        if column.is_measure:
            nonmeasure_offsets.append(-1)
            continue
        dim = relation.dim_exprs[offset] if offset < len(relation.dim_exprs) else None
        if dim is not None:
            group_terms.append(
                GroupTermSpec(
                    b.fingerprint(dim), dim, b.BoundColumn(offset, column.dtype)
                )
            )
        nonmeasure_offsets.append(offset)
        offset += 1

    exprs: list[b.BoundExpr] = []
    out_columns: list[OutputColumn] = []
    for column, position in zip(relation.columns, nonmeasure_offsets):
        if column.is_measure:
            spec = ContextSpec(kind="row", group_terms=list(group_terms))
            measure = column.measure
            assert measure is not None
            exprs.append(b.BoundMeasureEval(measure, spec, measure.value_type))
            out_columns.append(OutputColumn(column.name, measure.value_type))
        else:
            exprs.append(b.BoundColumn(position, column.dtype, column.name))
            out_columns.append(OutputColumn(column.name, column.dtype))
    schema = [(c.name, c.dtype) for c in out_columns]
    return plans.Project(relation.plan, exprs, schema), out_columns


# ---------------------------------------------------------------------------
# Per-SELECT binder
# ---------------------------------------------------------------------------


class QueryBinder:
    """Binds one SELECT."""

    def __init__(
        self,
        binder: Binder,
        select: ast.Select,
        outer_scope: Optional[Scope],
    ):
        self.binder = binder
        self.select = select
        self.outer_scope = outer_scope
        self.scope = Scope(outer_scope)
        self.next_offset = 0
        self.join_preds: list[b.BoundExpr] = []
        self.bound_where: Optional[b.BoundExpr] = None
        #: ContextSpec id -> owning Relation, for AT modifier binding.
        self._spec_relations: dict[int, Relation] = {}
        #: Measure evals created while binding this query's clauses.
        self._measure_nodes: list[b.BoundMeasureEval] = []
        #: AS MEASURE items: name -> (ast item, bound formula or None).
        self._sibling_items: dict[str, ast.SelectItem] = {}
        self._sibling_formulas: dict[str, b.BoundExpr] = {}
        self._sibling_stack: list[str] = []
        self._derived_group: Optional[MeasureGroup] = None

    # -- services used by ExprBinder ----------------------------------------

    def new_measure_eval(
        self, measure: MeasureInstance, relation: Relation, inherited: bool = False
    ) -> b.BoundMeasureEval:
        if inherited:
            offsets = []
            dim_exprs = []
            for column in relation.columns:
                if column.offset is None:
                    continue
                dim = relation.dim_for_offset.get(column.offset)
                if dim is not None:
                    offsets.append(column.offset)
                    dim_exprs.append(dim)
            spec = ContextSpec(
                kind="inherited",
                inherit_offsets=offsets,
                inherit_dim_exprs=dim_exprs,
            )
        else:
            spec = ContextSpec(kind="row")
        node = b.BoundMeasureEval(measure, spec, measure.value_type)
        self._spec_relations[id(spec)] = relation
        self._measure_nodes.append(node)
        return node

    def relation_for_spec(self, spec: ContextSpec) -> Relation:
        relation = self._spec_relations.get(id(spec))
        if relation is None:
            raise MeasureError("AT applied to an expression that is not a measure")
        return relation

    def resolve_sibling_measure(self, name: str) -> Optional[b.BoundExpr]:
        lowered = name.lower()
        item = self._sibling_items.get(lowered)
        if item is None:
            return None
        if lowered in self._sibling_formulas:
            return self._sibling_formulas[lowered]
        if lowered in self._sibling_stack:
            cycle = " -> ".join(self._sibling_stack + [lowered])
            raise MeasureError(f"recursive measure definition: {cycle}")
        self._sibling_stack.append(lowered)
        try:
            formula = self._bind_formula(item.expr)
        finally:
            self._sibling_stack.pop()
        self._sibling_formulas[lowered] = formula
        return formula

    def note_aggregate_operator(self, clause: str) -> None:
        # AGGREGATE() turns the query into an aggregate query; detection is
        # done up front at the AST level, so nothing to do here.
        pass

    def resolve_named_window(self, name: str) -> ast.WindowSpec:
        lowered = name.lower()
        for window in self.select.windows:
            if window.name.lower() == lowered:
                return window.spec
        raise BindError(f"unknown window name {name!r}")

    def rewrite_to_source(
        self, expr: b.BoundExpr, relation: Relation
    ) -> Optional[b.BoundExpr]:
        """Rewrite a call-site expression onto the measure source row, or
        return None when it references columns outside the relation's
        dimensions."""
        failed = False

        def visit(node: b.BoundExpr) -> Optional[b.BoundExpr]:
            nonlocal failed
            if isinstance(node, b.BoundColumn):
                dim = relation.dim_for_offset.get(node.offset)
                if dim is None:
                    failed = True
                    return node
                return dim
            if isinstance(
                node,
                (b.BoundOuterColumn, b.BoundMeasureEval, b.BoundSubquery,
                 b.BoundAggCall, b.BoundWindowCall, b.BoundAggRef),
            ):
                failed = True
                return node
            return None

        rewritten = transform_expr(expr, visit)
        return None if failed else rewritten

    # -- main entry ---------------------------------------------------------

    def bind(self) -> BoundRelation:
        from_plan = self._bind_from_clause()
        items = self._expand_stars(self.select.items)

        has_measure_defs = any(item.is_measure for item in items)
        is_aggregate = self._detect_aggregate(items)
        if has_measure_defs and is_aggregate:
            raise UnsupportedError(
                "defining measures in a grouped or aggregated query is not "
                "supported; define measures in a plain SELECT and aggregate "
                "in an outer query"
            )

        if self.select.where is not None:
            where_binder = ExprBinder(self, self.scope, clause="WHERE")
            self.bound_where = where_binder.bind(self.select.where)
            self._fill_row_contexts(self.bound_where)

        if has_measure_defs:
            return self._bind_measure_defining(from_plan, items)
        if is_aggregate:
            return self._bind_aggregate(from_plan, items)
        return self._bind_plain(from_plan, items)

    # -- FROM ---------------------------------------------------------------

    def _bind_from_clause(self) -> plans.LogicalPlan:
        if self.select.from_clause is None:
            # SELECT without FROM: a single empty row.
            return plans.ValuesPlan([[]], [])
        return self._bind_table_ref(self.select.from_clause)

    def _bind_table_ref(self, ref: ast.TableRef) -> plans.LogicalPlan:
        if isinstance(ref, ast.PivotRef):
            return self._bind_table_ref(self._desugar_pivot(ref))
        if isinstance(ref, ast.UnpivotRef):
            return self._bind_table_ref(self._desugar_unpivot(ref))
        if isinstance(ref, ast.TableName):
            return self._bind_table_name(ref)
        if isinstance(ref, ast.SubqueryRef):
            bound = self.binder.bind_query_as_relation(ref.query, self.outer_scope)
            self._add_bound_relation(bound, ref.alias)
            return bound.plan
        if isinstance(ref, ast.Join):
            return self._bind_join(ref)
        raise UnsupportedError(f"cannot bind {type(ref).__name__} in FROM")

    def _desugar_pivot(self, ref: ast.PivotRef) -> ast.TableRef:
        """Rewrite PIVOT into a grouped CASE-aggregate derived table.

        ``t PIVOT(SUM(x) FOR k IN ('a', 'b' AS bee))`` becomes::

            (SELECT <other cols>,
                    SUM(CASE WHEN k = 'a' THEN x END) AS a,
                    SUM(CASE WHEN k = 'b' THEN x END) AS bee
             FROM t GROUP BY <other cols>) AS alias
        """
        if ref.agg.star_arg or not ref.agg.args:
            raise UnsupportedError("PIVOT requires a single-argument aggregate")
        columns = self._columns_of_table_ref(ref.input)
        consumed = {ref.key.name.lower()}
        for node in ref.agg.walk():
            if isinstance(node, ast.ColumnRef):
                consumed.add(node.name.lower())
        group_columns = [c for c in columns if c.lower() not in consumed]

        items = [
            ast.SelectItem(ast.ColumnRef((c,)), c) for c in group_columns
        ]
        for literal, alias in ref.values:
            name = alias or _pivot_column_name(literal.value)
            condition = ast.Binary("=", ast.ColumnRef(ref.key.parts), literal)
            guarded = ast.Case(
                None,
                [ast.CaseWhen(condition, ref.agg.args[0])],
                None,
            )
            items.append(
                ast.SelectItem(
                    ast.FunctionCall(
                        ref.agg.name, [guarded], distinct=ref.agg.distinct
                    ),
                    name,
                )
            )
        derived = ast.Select(
            items=items,
            from_clause=ref.input,
            group_by=[
                ast.SimpleGrouping(ast.ColumnRef((c,))) for c in group_columns
            ],
            force_aggregate=True,
        )
        return ast.SubqueryRef(derived, ref.alias or "pivot")

    def _desugar_unpivot(self, ref: ast.UnpivotRef) -> ast.TableRef:
        """Rewrite UNPIVOT into a UNION ALL, one branch per listed column,
        excluding NULL values (BigQuery semantics)."""
        columns = self._columns_of_table_ref(ref.input)
        listed = {c.lower() for c, _ in ref.columns}
        keep = [c for c in columns if c.lower() not in listed]
        branches: list[ast.Query] = []
        for column, label in ref.columns:
            items = [ast.SelectItem(ast.ColumnRef((c,)), c) for c in keep]
            items.append(
                ast.SelectItem(ast.Literal(label or column), ref.name_column)
            )
            items.append(
                ast.SelectItem(ast.ColumnRef((column,)), ref.value_column)
            )
            branches.append(
                ast.Select(
                    items=items,
                    from_clause=copy_ast(ref.input),
                    where=ast.IsNull(ast.ColumnRef((column,)), negated=True),
                )
            )
        union: ast.Query = branches[0]
        for branch in branches[1:]:
            union = ast.SetOp("UNION", True, union, branch)
        return ast.SubqueryRef(union, ref.alias or "unpivot")

    def _columns_of_table_ref(self, ref: ast.TableRef) -> list[str]:
        """Non-measure column names a FROM item exposes (for * and PIVOT)."""
        if isinstance(ref, ast.TableName):
            cte = self.binder.lookup_cte(ref.name)
            if cte is not None:
                return [c.name for c in cte.columns if not c.is_measure]
            obj = self.binder.catalog.resolve(ref.name)
            if isinstance(obj, (BaseTable, SystemTable)):
                return [c.name for c in obj.schema.columns]
            assert isinstance(obj, View)
            bound = self.binder.bind_query_as_relation(obj.query, None)
            names = obj.column_names or [c.name for c in bound.columns]
            return [
                name
                for name, col in zip(names, bound.columns)
                if not col.is_measure
            ]
        if isinstance(ref, ast.SubqueryRef):
            bound = self.binder.bind_query_as_relation(ref.query, self.outer_scope)
            return [c.name for c in bound.columns if not c.is_measure]
        if isinstance(ref, ast.Join):
            return self._columns_of_table_ref(ref.left) + self._columns_of_table_ref(
                ref.right
            )
        if isinstance(ref, ast.PivotRef):
            return self._columns_of_table_ref(self._desugar_pivot(ref))
        if isinstance(ref, ast.UnpivotRef):
            return self._columns_of_table_ref(self._desugar_unpivot(ref))
        raise UnsupportedError(f"cannot enumerate columns of {type(ref).__name__}")

    def _bind_table_name(self, ref: ast.TableName) -> plans.LogicalPlan:
        cte = self.binder.lookup_cte(ref.name)
        if cte is not None:
            self._add_bound_relation(cte, ref.alias or ref.name)
            return cte.plan
        obj = self.binder.catalog.resolve(ref.name)
        if isinstance(obj, (BaseTable, SystemTable)):
            # System tables bind exactly like stored tables — same scope
            # wiring, same column offsets — but plan to a SystemScan leaf
            # so the executor reads the provider's snapshot, not storage.
            schema = [(c.name, c.dtype) for c in obj.schema.columns]
            plan_cls = (
                plans.SystemScan if isinstance(obj, SystemTable) else plans.Scan
            )
            plan = plan_cls(obj.name, schema)
            start = self.next_offset
            columns = [
                RelColumn(c.name, c.dtype, start + i)
                for i, c in enumerate(obj.schema.columns)
            ]
            relation = Relation(
                ref.alias or ref.name, columns, start, len(columns)
            )
            self.scope.add_relation(relation)
            self.next_offset += len(columns)
            return plan
        assert isinstance(obj, View)
        bound = self.binder.bind_query_as_relation(obj.query, None)
        if obj.column_names:
            if len(obj.column_names) != len(bound.columns):
                raise BindError(
                    f"view {obj.name!r} declares {len(obj.column_names)} "
                    f"columns but its query returns {len(bound.columns)}"
                )
            bound = BoundRelation(
                bound.plan,
                [
                    OutputColumn(name, col.dtype, col.measure)
                    for name, col in zip(obj.column_names, bound.columns)
                ],
                bound.group,
                bound.dim_exprs,
            )
        self._add_bound_relation(bound, ref.alias or obj.name)
        return bound.plan

    def _add_bound_relation(self, bound: BoundRelation, alias: Optional[str]) -> None:
        start = self.next_offset
        columns: list[RelColumn] = []
        dim_for_offset: dict[int, b.BoundExpr] = {}
        position = 0
        for index, column in enumerate(bound.columns):
            if column.is_measure:
                columns.append(RelColumn(column.name, column.dtype, None, column.measure))
                continue
            offset = start + position
            columns.append(RelColumn(column.name, column.dtype, offset))
            dim = (
                bound.dim_exprs[position]
                if position < len(bound.dim_exprs)
                else None
            )
            if dim is not None:
                dim_for_offset[offset] = dim
            position += 1
        relation = Relation(
            alias, columns, start, position, bound.group, dim_for_offset
        )
        self.scope.add_relation(relation)
        self.next_offset += position

    def _bind_join(self, ref: ast.Join) -> plans.LogicalPlan:
        left_plan = self._bind_table_ref(ref.left)
        left_relations = list(self.scope.relations)
        right_plan = self._bind_table_ref(ref.right)
        right_relations = [
            r for r in self.scope.relations if r not in left_relations
        ]

        condition: Optional[b.BoundExpr] = None
        using = list(ref.using)
        if ref.natural:
            left_names = {
                c.name.lower()
                for rel in left_relations
                for c in rel.columns
                if not c.is_measure
            }
            using = [
                c.name
                for rel in right_relations
                for c in rel.columns
                if not c.is_measure and c.name.lower() in left_names
            ]
            if not using:
                raise BindError("NATURAL JOIN has no common columns")
        if using:
            condition = self._using_condition(left_relations, right_relations, using)
            for name in using:
                self.scope.merged_names.add(name.lower())
        elif ref.condition is not None:
            binder = ExprBinder(self, self.scope, clause="JOIN ON")
            condition = binder.bind(ref.condition)
            self._fill_row_contexts(condition)

        if ref.kind != "CROSS" and condition is not None:
            self.join_preds.extend(_conjuncts(condition))
        kind = ref.kind
        return plans.Join(kind, left_plan, right_plan, condition)

    def _using_condition(
        self,
        left_relations: list[Relation],
        right_relations: list[Relation],
        using: list[str],
    ) -> b.BoundExpr:
        from repro.types import sql_compare

        condition: Optional[b.BoundExpr] = None
        for name in using:
            left_col = self._find_in(left_relations, name)
            right_col = self._find_in(right_relations, name)
            from repro.types import BOOLEAN

            equals = b.BoundCall(
                "=",
                [
                    b.BoundColumn(left_col.offset, left_col.dtype, left_col.name),
                    b.BoundColumn(right_col.offset, right_col.dtype, right_col.name),
                ],
                BOOLEAN,
                lambda a, c: sql_compare("=", a, c),
            )
            condition = (
                equals
                if condition is None
                else b.BoundCall("AND", [condition, equals], BOOLEAN, None)  # type: ignore[arg-type]
            )
        assert condition is not None
        return _fix_and_fns(condition)

    def _find_in(self, relations: list[Relation], name: str) -> RelColumn:
        for relation in relations:
            column = relation.find(name)
            if column is not None:
                if column.is_measure:
                    raise BindError(f"USING column {name!r} is a measure")
                return column
        raise BindError(f"USING column {name!r} not found")

    # -- star expansion and aggregate detection ------------------------------

    def _expand_stars(self, items: list[ast.SelectItem]) -> list[ast.SelectItem]:
        has_measure_defs = any(item.is_measure for item in items)
        expanded: list[ast.SelectItem] = []
        for item in items:
            if not isinstance(item.expr, ast.Star):
                expanded.append(item)
                continue
            qualifier = item.expr.qualifier
            relations = self.scope.relations
            if qualifier is not None:
                relations = [
                    r
                    for r in relations
                    if r.alias and r.alias.lower() == qualifier.lower()
                ]
                if not relations:
                    raise BindError(f"unknown relation {qualifier!r} in {qualifier}.*")
            for relation in relations:
                for column in relation.columns:
                    if column.is_measure and has_measure_defs:
                        # Measures of the input cannot be dimensions of the
                        # measures being defined; skip them in the expansion.
                        continue
                    parts = (
                        (relation.alias, column.name)
                        if relation.alias
                        else (column.name,)
                    )
                    expanded.append(
                        ast.SelectItem(ast.ColumnRef(tuple(parts)), column.name)
                    )
        if not expanded:
            raise BindError("SELECT list is empty after * expansion")
        return expanded

    def _detect_aggregate(self, items: list[ast.SelectItem]) -> bool:
        if (
            self.select.group_by
            or self.select.having is not None
            or self.select.force_aggregate
        ):
            return True
        from repro.engine.aggregates import is_aggregate_function

        def scan(expr: ast.Node) -> bool:
            if isinstance(expr, ast.Query):
                return False
            if isinstance(expr, ast.FunctionCall):
                name = expr.name.upper()
                if name == "AGGREGATE":
                    return True
                if (
                    is_aggregate_function(name)
                    and expr.over is None
                    and expr.over_name is None
                ):
                    return True
            return any(scan(child) for child in expr.children())

        for item in items:
            if item.is_measure:
                continue
            if scan(item.expr):
                return True
        return False

    # -- shared helpers ------------------------------------------------------

    def _filtered(self, from_plan: plans.LogicalPlan) -> plans.LogicalPlan:
        if self.bound_where is None:
            return from_plan
        return plans.Filter(from_plan, self.bound_where)

    def _fill_row_contexts(self, expr: b.BoundExpr) -> None:
        """Give every not-yet-finalized measure eval in ``expr`` a row-grain
        context (used for WHERE/ON clauses and plain SELECTs)."""
        for node in b.walk(expr):
            if isinstance(node, b.BoundMeasureEval) and node.context.kind == "row":
                if node.context.group_terms:
                    continue  # already filled
                relation = self._spec_relations.get(id(node.context))
                if relation is None:
                    continue
                self._fill_row_context(node.context, relation)

    def _fill_row_context(self, spec: ContextSpec, relation: Relation) -> None:
        terms = []
        for column in relation.columns:
            if column.offset is None:
                continue
            dim = relation.dim_for_offset.get(column.offset)
            if dim is None:
                continue
            terms.append(
                GroupTermSpec(
                    b.fingerprint(dim),
                    dim,
                    b.BoundColumn(column.offset, column.dtype, column.name),
                )
            )
        spec.group_terms = terms
        spec.visible = self._make_visible_info(relation)

    def _make_visible_info(self, relation: Relation) -> Optional[VisibleInfo]:
        preds: list[b.BoundExpr] = []
        if self.bound_where is not None:
            preds.extend(_conjuncts(self.bound_where))
        preds.extend(self.join_preds)
        preds = [
            p
            for p in preds
            if not any(isinstance(n, b.BoundMeasureEval) for n in b.walk(p))
        ]
        if not preds:
            return None
        end = relation.start + relation.width
        return VisibleInfo(
            preds=preds,
            range_start=relation.start,
            range_end=end,
            offset_dim_exprs=[
                relation.dim_for_offset.get(offset)
                for offset in range(relation.start, end)
            ],
        )

    def _item_name(self, item: ast.SelectItem, index: int) -> str:
        return output_column_name(item, index)

    # -- measure-defining queries ---------------------------------------------

    def _bind_formula(self, expr: ast.Expression) -> b.BoundExpr:
        binder = ExprBinder(
            self,
            self.scope,
            allow_aggregates=True,
            formula_mode=True,
            clause="measure definition",
        )
        return binder.bind(expr)

    def _bind_measure_defining(
        self, from_plan: plans.LogicalPlan, items: list[ast.SelectItem]
    ) -> BoundRelation:
        for item in items:
            if item.is_measure:
                if not item.alias:
                    raise MeasureError("AS MEASURE requires a name")
                lowered = item.alias.lower()
                if lowered in self._sibling_items:
                    raise MeasureError(f"duplicate measure name {item.alias!r}")
                self._sibling_items[lowered] = item

        source_plan = self._filtered(from_plan)
        group = MeasureGroup(source_plan, {}, [])

        item_binder = ExprBinder(self, self.scope, clause="SELECT")
        columns: list[OutputColumn] = []
        dim_exprs: list[Optional[b.BoundExpr]] = []
        project_exprs: list[b.BoundExpr] = []
        measures: list[tuple[int, MeasureInstance]] = []

        for index, item in enumerate(items):
            name = self._item_name(item, index)
            if item.is_measure:
                formula = self.resolve_sibling_measure(item.alias)
                assert formula is not None
                value_type = formula.dtype.unwrap()
                instance = MeasureInstance(
                    item.alias, group, formula, value_type, formula_sql=item.expr
                )
                columns.append(
                    OutputColumn(name, MeasureType(value_type), instance)
                )
                measures.append((index, instance))
                continue
            bound = item_binder.bind(item.expr)
            if any(isinstance(n, b.BoundAggCall) for n in b.walk(bound)):
                raise BindError(
                    "aggregate functions in a measure-defining query are only "
                    "allowed inside AS MEASURE items"
                )
            if any(isinstance(n, b.BoundMeasureEval) for n in b.walk(bound)):
                raise MeasureError(
                    "a measure-defining query cannot project measures of its "
                    "input; compose them with AGGREGATE(...) AS MEASURE instead"
                )
            dim_name = name.lower()
            if dim_name in group.dims:
                raise BindError(f"duplicate column name {name!r}")
            group.dims[dim_name] = Dimension(name, bound, bound.dtype)
            group.dim_order.append(name)
            columns.append(OutputColumn(name, bound.dtype))
            dim_exprs.append(bound)
            project_exprs.append(bound)

        schema = [
            (c.name, c.dtype) for c in columns if not c.is_measure
        ]
        plan: plans.LogicalPlan = plans.Project(source_plan, project_exprs, schema)
        plan = self._apply_tail(plan, columns, project_exprs, allow_order=True)
        return BoundRelation(plan, columns, group, dim_exprs)

    # -- plain (non-aggregate) queries ---------------------------------------

    def _bind_plain(
        self, from_plan: plans.LogicalPlan, items: list[ast.SelectItem]
    ) -> BoundRelation:
        item_binder = ExprBinder(
            self, self.scope, allow_windows=True, clause="SELECT"
        )
        columns: list[OutputColumn] = []
        dim_exprs: list[Optional[b.BoundExpr]] = []
        bound_items: list[Optional[b.BoundExpr]] = []
        reexports: list[tuple[int, MeasureInstance, Relation]] = []

        for index, item in enumerate(items):
            name = self._item_name(item, index)
            if isinstance(item.expr, ast.ColumnRef):
                resolution = self._try_resolve(item.expr)
                if (
                    resolution is not None
                    and resolution.depth == 0
                    and resolution.column.is_measure
                ):
                    columns.append(
                        OutputColumn(
                            name,
                            MeasureType(resolution.column.measure.value_type),
                            resolution.column.measure,
                        )
                    )
                    bound_items.append(None)
                    reexports.append(
                        (index, resolution.column.measure, resolution.relation)
                    )
                    continue
            bound = item_binder.bind(item.expr)
            self._fill_row_contexts(bound)
            columns.append(OutputColumn(name, bound.dtype.unwrap()))
            bound_items.append(bound)

        group, dim_exprs, remapped = self._finish_reexports(
            reexports, columns, bound_items
        )

        bound_qualify: Optional[b.BoundExpr] = None
        if self.select.qualify is not None:
            qualify_binder = ExprBinder(
                self, self.scope, allow_windows=True, clause="QUALIFY"
            )
            bound_qualify = qualify_binder.bind(self.select.qualify)
            self._fill_row_contexts(bound_qualify)

        filtered = self._filtered(from_plan)
        exprs = [e for e in bound_items if e is not None]
        if bound_qualify is not None:
            exprs = exprs + [bound_qualify]
        plan, exprs = self._extract_windows(filtered, exprs)
        if bound_qualify is not None:
            bound_qualify = exprs[-1]
            exprs = exprs[:-1]
            plan = plans.Filter(plan, bound_qualify)
        # Rebuild bound_items with window-extracted expressions.
        rebuilt: list[Optional[b.BoundExpr]] = []
        iterator = iter(exprs)
        for original in bound_items:
            rebuilt.append(None if original is None else next(iterator))
        bound_items = rebuilt

        nonmeasure_exprs = [e for e in bound_items if e is not None]
        schema = [
            (c.name, c.dtype)
            for c in columns
            if not c.is_measure
        ]
        out_plan: plans.LogicalPlan = plans.Project(plan, nonmeasure_exprs, schema)
        out_plan = self._apply_tail(
            out_plan, columns, nonmeasure_exprs, allow_order=True
        )
        final_columns = [
            OutputColumn(
                c.name,
                c.dtype,
                remapped.get(i, c.measure),
            )
            for i, c in enumerate(columns)
        ]
        return BoundRelation(out_plan, final_columns, group, dim_exprs)

    def _try_resolve(self, ref: ast.ColumnRef):
        try:
            return self.scope.resolve(ref.parts)
        except BindError:
            return None

    def _finish_reexports(
        self,
        reexports: list[tuple[int, MeasureInstance, Relation]],
        columns: list[OutputColumn],
        bound_items: list[Optional[b.BoundExpr]],
    ) -> tuple[
        Optional[MeasureGroup],
        list[Optional[b.BoundExpr]],
        dict[int, MeasureInstance],
    ]:
        """Re-export measure columns through a plain query (paper section 5.4).

        The query's WHERE clause is baked into the re-exported measures by
        filtering a derived copy of the source plan; the projected non-measure
        items become the new dimensionality.
        """
        if not reexports:
            return None, [None] * sum(1 for c in columns if not c.is_measure), {}

        relations = {id(rel): rel for _, _, rel in reexports}
        if len(relations) > 1:
            raise UnsupportedError(
                "re-exporting measures from more than one source relation is "
                "not supported"
            )
        relation = next(iter(relations.values()))
        old_group = relation.group
        assert old_group is not None

        if self.bound_where is not None:
            translated = self.rewrite_to_source(self.bound_where, relation)
            if translated is None:
                raise UnsupportedError(
                    "cannot re-export measures through a WHERE clause that "
                    "references columns outside the measure table"
                )
            new_source = plans.Filter(old_group.source_plan, translated)
        else:
            new_source = old_group.source_plan

        # Translate projected non-measure items into source expressions: they
        # are the new measure group's dimensions.
        new_group = MeasureGroup(new_source, {}, [], old_group.source_sql)
        dim_exprs: list[Optional[b.BoundExpr]] = []
        nonmeasure_index = 0
        for column, bound in zip(columns, bound_items):
            if column.is_measure:
                continue
            dim = (
                self.rewrite_to_source(bound, relation)
                if bound is not None
                else None
            )
            dim_exprs.append(dim)
            if dim is not None:
                lowered = column.name.lower()
                if lowered not in new_group.dims:
                    new_group.dims[lowered] = Dimension(column.name, dim, column.dtype)
                    new_group.dim_order.append(column.name)
            nonmeasure_index += 1

        remapped: dict[int, MeasureInstance] = {}
        for index, measure, _ in reexports:
            remapped[index] = MeasureInstance(
                measure.name,
                new_group,
                measure.formula,
                measure.value_type,
                measure.formula_sql,
            )
        return new_group, dim_exprs, remapped

    # -- aggregate queries ------------------------------------------------------

    def _bind_aggregate(
        self, from_plan: plans.LogicalPlan, items: list[ast.SelectItem]
    ) -> BoundRelation:
        filtered = self._filtered(from_plan)

        group_exprs, grouping_sets, offset_mapping = self._bind_group_by(items)
        mapping = {b.fingerprint(e): i for i, e in enumerate(group_exprs)}

        select_binder = ExprBinder(
            self,
            self.scope,
            allow_aggregates=True,
            allow_windows=True,
            clause="SELECT",
        )
        bound_items = [select_binder.bind(item.expr) for item in items]
        bound_having = None
        if self.select.having is not None:
            having_binder = ExprBinder(
                self, self.scope, allow_aggregates=True, clause="HAVING"
            )
            bound_having = having_binder.bind(self.select.having)

        order_pre: list[tuple[str, object, ast.OrderItem]] = []
        names = [self._item_name(item, i) for i, item in enumerate(items)]
        for order_item in self.select.order_by:
            with _located(order_item):
                kind, payload = self._classify_order_item(order_item, names)
            if kind == "expr":
                binder = ExprBinder(
                    self, self.scope, allow_aggregates=True, clause="ORDER BY"
                )
                payload = binder.bind(payload)
            order_pre.append((kind, payload, order_item))

        # Collect aggregate calls from every clause, then lay out the
        # aggregate output row: keys ++ aggs ++ [grouping id] ++ [rows].
        agg_calls: list[b.BoundAggCall] = []
        agg_index: dict[str, int] = {}

        def collect(expr: Optional[b.BoundExpr]) -> None:
            if expr is None:
                return
            for node in b.walk(expr):
                if isinstance(node, b.BoundAggCall):
                    key = b.fingerprint(node)
                    if key not in agg_index:
                        agg_index[key] = len(agg_calls)
                        agg_calls.append(node)

        for expr in bound_items:
            collect(expr)
        collect(bound_having)
        for kind, payload, _ in order_pre:
            if kind == "expr":
                collect(payload)  # type: ignore[arg-type]

        has_measures = any(
            isinstance(node, b.BoundMeasureEval)
            for expr in [*bound_items, bound_having]
            if expr is not None
            for node in b.walk(expr)
        ) or any(
            kind == "expr"
            and any(
                isinstance(node, b.BoundMeasureEval)
                for node in b.walk(payload)  # type: ignore[arg-type]
            )
            for kind, payload, _ in order_pre
        )
        uses_grouping_fn = any(
            isinstance(node, b.BoundCall) and node.op == "$GROUPING"
            for expr in [*bound_items, bound_having]
            if expr is not None
            for node in b.walk(expr)
        )
        has_gid = len(grouping_sets) > 1 or uses_grouping_fn
        key_count = len(group_exprs)
        gid_offset = key_count + len(agg_calls) if has_gid else None
        captured_offset = (
            key_count + len(agg_calls) + (1 if has_gid else 0)
            if has_measures
            else None
        )

        lifter = _Lifter(
            self,
            group_exprs,
            mapping,
            offset_mapping,
            agg_index,
            key_count,
            gid_offset,
            captured_offset,
        )
        lifted_items = []
        for item, expr in zip(items, bound_items):
            with _located(item):
                lifted_items.append(lifter.lift(expr))
        lifted_having = None
        if bound_having is not None:
            with _located(self.select.having):
                lifted_having = lifter.lift(bound_having)

        agg_schema: list[tuple[str, DataType]] = []
        for i, expr in enumerate(group_exprs):
            agg_schema.append((f"$key{i}", expr.dtype))
        for i, call in enumerate(agg_calls):
            agg_schema.append((f"$agg{i}", call.dtype))
        if has_gid:
            agg_schema.append(("$grouping_id", INTEGER))
        if captured_offset is not None:
            agg_schema.append(("$group_rows", UNKNOWN))

        aggregate = plans.Aggregate(
            filtered,
            group_exprs,
            agg_calls,
            grouping_sets,
            agg_schema,
            emit_grouping_id=has_gid,
            capture_rows=captured_offset is not None,
        )
        plan: plans.LogicalPlan = aggregate
        if lifted_having is not None:
            plan = plans.Filter(plan, lifted_having)

        lifted_qualify: Optional[b.BoundExpr] = None
        if self.select.qualify is not None:
            qualify_binder = ExprBinder(
                self,
                self.scope,
                allow_aggregates=True,
                allow_windows=True,
                clause="QUALIFY",
            )
            with _located(self.select.qualify):
                lifted_qualify = lifter.lift(qualify_binder.bind(self.select.qualify))

        with_qualify = (
            lifted_items + [lifted_qualify]
            if lifted_qualify is not None
            else lifted_items
        )
        plan, with_qualify = self._extract_windows(plan, with_qualify)
        if lifted_qualify is not None:
            plan = plans.Filter(plan, with_qualify[-1])
            lifted_items = with_qualify[:-1]
        else:
            lifted_items = with_qualify

        columns = [
            OutputColumn(name, expr.dtype.unwrap())
            for name, expr in zip(names, lifted_items)
        ]
        schema = [(c.name, c.dtype) for c in columns]
        out_plan: plans.LogicalPlan = plans.Project(plan, lifted_items, schema)

        # Resolve ORDER BY onto the projected output.
        sort_specs: list[b.SortSpec] = []
        hidden: list[b.BoundExpr] = []
        item_fps = [b.fingerprint(e) for e in lifted_items]
        for kind, payload, order_item in order_pre:
            if kind == "ordinal":
                offset = payload  # type: ignore[assignment]
            elif kind == "alias":
                offset = payload  # type: ignore[assignment]
            else:
                with _located(order_item):
                    lifted = lifter.lift(payload)  # type: ignore[arg-type]
                fp = b.fingerprint(lifted)
                if fp in item_fps:
                    offset = item_fps.index(fp)
                else:
                    offset = len(lifted_items) + len(hidden)
                    hidden.append(lifted)
            dtype = (
                columns[offset].dtype
                if offset < len(columns)
                else hidden[offset - len(lifted_items)].dtype
            )
            sort_specs.append(
                b.SortSpec(
                    b.BoundColumn(offset, dtype),
                    order_item.descending,
                    order_item.nulls_first,
                )
            )
        out_plan = self._finalize_sort(
            out_plan, columns, lifted_items, hidden, sort_specs
        )
        return BoundRelation(
            out_plan, columns, None, [None] * len(columns)
        )

    def _classify_order_item(
        self, order_item: ast.OrderItem, names: list[str]
    ) -> tuple[str, object]:
        expr = order_item.expr
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            index = expr.value - 1
            if not 0 <= index < len(names):
                raise BindError(f"ORDER BY position {expr.value} out of range")
            return "ordinal", index
        if isinstance(expr, ast.ColumnRef) and len(expr.parts) == 1:
            # ORDER BY resolves output column names before input columns.
            lowered = expr.parts[0].lower()
            matches = [i for i, n in enumerate(names) if n.lower() == lowered]
            if len(matches) == 1:
                return "alias", matches[0]
            if len(matches) > 1 and self._try_resolve(expr) is None:
                raise BindError(f"ORDER BY column {expr.parts[0]!r} is ambiguous")
        return "expr", expr

    def _extract_windows(
        self, plan: plans.LogicalPlan, exprs: list[b.BoundExpr]
    ) -> tuple[plans.LogicalPlan, list[b.BoundExpr]]:
        calls: list[b.BoundWindowCall] = []
        base = len(plan.schema)

        def visit(node: b.BoundExpr) -> Optional[b.BoundExpr]:
            if isinstance(node, b.BoundWindowCall):
                calls.append(node)
                return b.BoundColumn(base + len(calls) - 1, node.dtype)
            return None

        new_exprs = [transform_expr(expr, visit) for expr in exprs]
        if not calls:
            return plan, exprs
        schema = list(plan.schema) + [
            (f"$win{i}", call.dtype) for i, call in enumerate(calls)
        ]
        return plans.Window(plan, calls, schema), new_exprs

    def _apply_tail(
        self,
        plan: plans.LogicalPlan,
        columns: list[OutputColumn],
        projected_exprs: list[b.BoundExpr],
        *,
        allow_order: bool,
    ) -> plans.LogicalPlan:
        """Apply DISTINCT / ORDER BY / LIMIT to a non-aggregate query plan."""
        select = self.select
        sort_specs: list[b.SortSpec] = []
        hidden: list[b.BoundExpr] = []
        if select.order_by and allow_order:
            names = [c.name for c in columns if not c.is_measure]
            item_fps = [b.fingerprint(e) for e in projected_exprs]
            for order_item in select.order_by:
                with _located(order_item):
                    kind, payload = self._classify_order_item(order_item, names)
                if kind in ("ordinal", "alias"):
                    offset = payload  # type: ignore[assignment]
                else:
                    binder = ExprBinder(
                        self, self.scope, allow_windows=True, clause="ORDER BY"
                    )
                    bound = binder.bind(payload)  # type: ignore[arg-type]
                    self._fill_row_contexts(bound)
                    fp = b.fingerprint(bound)
                    if fp in item_fps:
                        offset = item_fps.index(fp)
                    else:
                        offset = len(projected_exprs) + len(hidden)
                        hidden.append(bound)
                dtype = (
                    projected_exprs[offset].dtype
                    if offset < len(projected_exprs)
                    else hidden[offset - len(projected_exprs)].dtype
                )
                sort_specs.append(
                    b.SortSpec(
                        b.BoundColumn(offset, dtype),
                        order_item.descending,
                        order_item.nulls_first,
                    )
                )
        return self._finalize_sort(plan, columns, projected_exprs, hidden, sort_specs)

    def _finalize_sort(
        self,
        plan: plans.LogicalPlan,
        columns: list[OutputColumn],
        projected_exprs: list[b.BoundExpr],
        hidden: list[b.BoundExpr],
        sort_specs: list[b.SortSpec],
    ) -> plans.LogicalPlan:
        select = self.select
        if hidden:
            if select.distinct:
                raise BindError(
                    "ORDER BY expressions must appear in the SELECT list when "
                    "DISTINCT is used"
                )
            assert isinstance(plan, plans.Project)
            base = plan.input
            schema = list(plan.schema) + [
                (f"$sort{i}", e.dtype) for i, e in enumerate(hidden)
            ]
            plan = plans.Project(base, list(plan.exprs) + hidden, schema)
        if select.distinct:
            plan = plans.Distinct(plan)
        if sort_specs:
            plan = plans.Sort(plan, sort_specs)
        if hidden:
            width = len(projected_exprs)
            visible_schema = plan.schema[:width]
            plan = plans.Project(
                plan,
                [
                    b.BoundColumn(i, dtype)
                    for i, (_, dtype) in enumerate(visible_schema)
                ],
                list(visible_schema),
            )
        if select.limit is not None or select.offset is not None:
            binder = ExprBinder(self, Scope(), clause="LIMIT")
            limit = (
                binder.bind(select.limit) if select.limit is not None else None
            )
            offset = (
                binder.bind(select.offset) if select.offset is not None else None
            )
            plan = plans.Limit(plan, limit, offset)
        return plan

    # -- GROUP BY ----------------------------------------------------------

    def _bind_group_by(
        self, items: list[ast.SelectItem]
    ) -> tuple[list[b.BoundExpr], list[list[int]], dict[int, int]]:
        group_exprs: list[b.BoundExpr] = []
        registry: dict[str, int] = {}
        binder = ExprBinder(self, self.scope, clause="GROUP BY")

        def register(expr: ast.Expression) -> int:
            with _located(expr):
                bound = self._bind_group_expr(binder, expr, items)
            fp = b.fingerprint(bound)
            if fp not in registry:
                registry[fp] = len(group_exprs)
                group_exprs.append(bound)
            return registry[fp]

        element_sets: list[list[list[int]]] = []
        for element in self.select.group_by:
            if isinstance(element, ast.SimpleGrouping):
                element_sets.append([[register(element.expr)]])
            elif isinstance(element, ast.Rollup):
                indexes = [register(e) for e in element.exprs]
                sets = [indexes[:i] for i in range(len(indexes), -1, -1)]
                element_sets.append(sets)
            elif isinstance(element, ast.Cube):
                indexes = [register(e) for e in element.exprs]
                sets = []
                for mask in range(1 << len(indexes)):
                    sets.append(
                        [indexes[i] for i in range(len(indexes)) if mask & (1 << i)]
                    )
                sets.sort(key=len, reverse=True)
                element_sets.append(sets)
            elif isinstance(element, ast.GroupingSets):
                sets = []
                for group in element.sets:
                    sets.append([register(e) for e in group])
                element_sets.append(sets)
            else:  # pragma: no cover - parser guarantees
                raise UnsupportedError(type(element).__name__)

        if not element_sets:
            grouping_sets: list[list[int]] = [[]]
        else:
            grouping_sets = [[]]
            for sets in element_sets:
                grouping_sets = [
                    existing + candidate
                    for existing in grouping_sets
                    for candidate in sets
                ]
            grouping_sets = [sorted(set(s)) for s in grouping_sets]

        # Mapping from FROM-row offsets to key slots, for remapping
        # correlated references and AT WHERE predicates.
        offset_mapping: dict[int, int] = {}
        for index, expr in enumerate(group_exprs):
            if isinstance(expr, b.BoundColumn):
                offset_mapping[expr.offset] = index
        return group_exprs, grouping_sets, offset_mapping

    def _bind_group_expr(
        self,
        binder: ExprBinder,
        expr: ast.Expression,
        items: list[ast.SelectItem],
    ) -> b.BoundExpr:
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            index = expr.value - 1
            if not 0 <= index < len(items):
                raise BindError(f"GROUP BY position {expr.value} out of range")
            expr = items[index].expr
        elif isinstance(expr, ast.ColumnRef) and len(expr.parts) == 1:
            if self._try_resolve(expr) is None:
                lowered = expr.parts[0].lower()
                for item in items:
                    if item.alias and item.alias.lower() == lowered:
                        expr = item.expr
                        break
        bound = binder.bind(expr)
        if any(isinstance(n, b.BoundMeasureEval) for n in b.walk(bound)):
            raise MeasureError("cannot GROUP BY a measure")
        if any(isinstance(n, b.BoundAggCall) for n in b.walk(bound)):
            raise BindError("aggregate functions are not allowed in GROUP BY")
        return bound


def _pivot_column_name(value) -> str:
    text = str(value)
    if text.isidentifier():
        return text
    cleaned = "".join(ch if ch.isalnum() else "_" for ch in text)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _conjuncts(expr: b.BoundExpr) -> list[b.BoundExpr]:
    if isinstance(expr, b.BoundCall) and expr.op == "AND":
        result = []
        for arg in expr.args:
            result.extend(_conjuncts(arg))
        return result
    return [expr]


def _fix_and_fns(expr: b.BoundExpr) -> b.BoundExpr:
    """Fill in the AND combinator for conditions built programmatically."""
    from repro.types import sql_and

    if isinstance(expr, b.BoundCall) and expr.op == "AND" and expr.fn is None:
        return b.BoundCall(
            "AND", [_fix_and_fns(a) for a in expr.args], expr.dtype, sql_and
        )
    return expr


class _Lifter:
    """Rewrites clause expressions over the Aggregate operator's output."""

    def __init__(
        self,
        qb: QueryBinder,
        group_exprs: list[b.BoundExpr],
        mapping: dict[str, int],
        offset_mapping: dict[int, int],
        agg_index: dict[str, int],
        key_count: int,
        gid_offset: Optional[int],
        captured_offset: Optional[int],
    ):
        self.qb = qb
        self.group_exprs = group_exprs
        self.mapping = mapping
        self.offset_mapping = offset_mapping
        self.expr_mapping = {
            b.fingerprint(expr): (slot, expr.dtype)
            for slot, expr in enumerate(group_exprs)
        }
        self.agg_index = agg_index
        self.key_count = key_count
        self.gid_offset = gid_offset
        self.captured_offset = captured_offset

    def lift(self, expr: b.BoundExpr) -> b.BoundExpr:
        def visit(node: b.BoundExpr) -> Optional[b.BoundExpr]:
            if isinstance(node, (b.BoundLiteral, b.BoundCurrentDim)):
                return node
            if isinstance(node, b.BoundAggCall):
                index = self.agg_index[b.fingerprint(node)]
                return b.BoundAggRef(self.key_count + index, node.dtype)
            if not isinstance(node, (b.BoundOuterColumn, b.BoundMeasureEval,
                                     b.BoundSubquery)):
                fp = b.fingerprint(node)
                slot = self.mapping.get(fp)
                if slot is not None:
                    return b.BoundColumn(slot, node.dtype)
            if isinstance(node, b.BoundCall) and node.op == "$GROUPING":
                return self._lift_grouping(node)
            if isinstance(node, b.BoundColumn):
                name = f" {node.name!r}" if node.name else ""
                raise BindError(
                    f"column{name} must appear in GROUP BY or be used in an "
                    "aggregate function"
                )
            if isinstance(node, b.BoundMeasureEval):
                self._finalize_measure(node)
                return node
            if isinstance(node, b.BoundSubquery):
                remap_plan_outer(node.plan, self.offset_mapping, self.expr_mapping)
                node.outer_refs = collect_outer_refs(node.plan)
                return node
            if isinstance(node, b.BoundOuterColumn):
                return node
            return None

        return transform_expr(expr, visit)

    def _lift_grouping(self, node: b.BoundCall) -> b.BoundGroupingId:
        if self.gid_offset is None:
            raise BindError("GROUPING requires GROUP BY")
        key_indexes = []
        for arg in node.args:
            slot = self.mapping.get(b.fingerprint(arg))
            if slot is None:
                raise BindError(
                    "GROUPING arguments must be GROUP BY expressions"
                )
            key_indexes.append(slot)
        return b.BoundGroupingId(self.gid_offset, key_indexes, INTEGER)

    def _finalize_measure(self, node: b.BoundMeasureEval) -> None:
        spec = node.context
        if spec.kind != "row" or spec.group_terms:
            # Inherited contexts and already-finalized specs pass through.
            return
        relation = self.qb.relation_for_spec(spec)
        spec.kind = "group"
        spec.grouping_id_offset = self.gid_offset
        spec.captured_rows_offset = self.captured_offset
        spec.visible = self.qb._make_visible_info(relation)
        terms: list[GroupTermSpec] = []
        for index, group_expr in enumerate(self.group_exprs):
            rewritten = self.qb.rewrite_to_source(group_expr, relation)
            if rewritten is None:
                # Group keys outside the measure's dimensionality contribute
                # no term (paper section 3.6, Listing 9).
                continue
            terms.append(
                GroupTermSpec(
                    b.fingerprint(rewritten),
                    rewritten,
                    b.BoundColumn(index, group_expr.dtype),
                    grouping_bit=index,
                )
            )
        spec.group_terms = terms
        # Lift SET values and remap AT WHERE correlations.
        for modifier in spec.modifiers:
            if isinstance(modifier, BoundSet):
                modifier.value_expr = self.lift(modifier.value_expr)
            elif isinstance(modifier, BoundWhere):
                if modifier.pred is not None:
                    modifier.pred = self._remap_where(modifier.pred)
                modifier.eq_pairs = [
                    (source, self._remap_where(value))
                    for source, value in modifier.eq_pairs
                ]
                modifier.outer_refs = [
                    (d, self.offset_mapping[o])
                    if d == 1 and o in self.offset_mapping
                    else (d, o)
                    for d, o in modifier.outer_refs
                ]

    def _remap_where(self, pred: b.BoundExpr) -> b.BoundExpr:
        return remap_outer_expr(pred, self.offset_mapping, self.expr_mapping)
