"""repro: a reproduction of "Measures in SQL" (Hyde & Fremlin, SIGMOD 2024).

A from-scratch, in-memory SQL engine extended with the paper's measure
columns, context-sensitive expressions, the AT context-transformation
operator, and the static rewrite of measures to plain SQL.

Quickstart::

    from repro import Database

    db = Database()
    db.execute("CREATE TABLE Orders (prodName VARCHAR, revenue INTEGER)")
    db.execute("INSERT INTO Orders VALUES ('Happy', 6), ('Acme', 5)")
    db.execute('''CREATE VIEW eo AS
                  SELECT prodName, SUM(revenue) AS MEASURE sumRevenue
                  FROM Orders''')
    print(db.execute("SELECT prodName, AGGREGATE(sumRevenue) FROM eo GROUP BY prodName"))
"""

from repro.api import Database
from repro.errors import (
    BindError,
    CatalogError,
    ExecutionError,
    InternalError,
    LexerError,
    MeasureError,
    ParseError,
    SqlError,
    TypeCheckError,
    UnsupportedError,
)
from repro.result import Result, ResultColumn

__version__ = "1.0.0"

__all__ = [
    "BindError",
    "CatalogError",
    "Database",
    "ExecutionError",
    "InternalError",
    "LexerError",
    "MeasureError",
    "ParseError",
    "Result",
    "ResultColumn",
    "SqlError",
    "TypeCheckError",
    "UnsupportedError",
    "__version__",
]
