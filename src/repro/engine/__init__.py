"""Execution engine: evaluator, operators, functions, aggregates, windows."""

from repro.engine.evaluator import EvalEnv, ExecutionContext, evaluate
from repro.engine.executor import execute_plan

__all__ = ["EvalEnv", "ExecutionContext", "evaluate", "execute_plan"]
