"""Window function execution.

The :class:`~repro.plan.logical.Window` operator appends one column per
window call.  Rows are partitioned, ordered within each partition, and each
call is computed per row.  Supported calls:

* ranking: ROW_NUMBER, RANK, DENSE_RANK, PERCENT_RANK, CUME_DIST, NTILE
* navigation: LAG, LEAD, FIRST_VALUE, LAST_VALUE
* any aggregate from :mod:`repro.engine.aggregates`, with ROWS/RANGE frames
  (RANGE frames support UNBOUNDED/CURRENT ROW bounds)
"""

from __future__ import annotations

from typing import Any, Optional

from repro.engine.aggregates import is_aggregate_function, make_accumulator
from repro.engine.evaluator import EvalEnv, ExecutionContext, evaluate
from repro.errors import ExecutionError, UnsupportedError
from repro.semantics import bound as b
from repro.types import SortKey

__all__ = ["compute_window_column", "RANKING_FUNCTIONS", "is_window_only_function"]

RANKING_FUNCTIONS = frozenset(
    {
        "ROW_NUMBER",
        "RANK",
        "DENSE_RANK",
        "PERCENT_RANK",
        "CUME_DIST",
        "NTILE",
        "LAG",
        "LEAD",
    }
)


def is_window_only_function(name: str) -> bool:
    """Functions that are only valid with an OVER clause."""
    return name.upper() in RANKING_FUNCTIONS


def compute_window_column(
    call: b.BoundWindowCall,
    rows: list[tuple],
    outer_env: Optional[EvalEnv],
    ctx: ExecutionContext,
) -> list[Any]:
    """Compute one window call over ``rows``; returns one value per input row
    in the original row order."""
    results: list[Any] = [None] * len(rows)
    partitions: dict[tuple, list[int]] = {}
    for index, row in enumerate(rows):
        env = EvalEnv(row, outer_env)
        key = tuple(evaluate(expr, env, ctx) for expr in call.partition_by)
        partitions.setdefault(key, []).append(index)
    if ctx.profiler is not None:
        ctx.profiler.bump("window_calls")
        ctx.profiler.bump("window_partitions", len(partitions))

    for indexes in partitions.values():
        ordered = _order_partition(call, rows, indexes, outer_env, ctx)
        _compute_partition(call, rows, ordered, results, outer_env, ctx)
    return results


def _order_partition(
    call: b.BoundWindowCall,
    rows: list[tuple],
    indexes: list[int],
    outer_env: Optional[EvalEnv],
    ctx: ExecutionContext,
) -> list[int]:
    if not call.order_by:
        return indexes

    def decorate(index: int):
        env = EvalEnv(rows[index], outer_env)
        keys = []
        for spec in call.order_by:
            value = evaluate(spec.expr, env, ctx)
            nulls_first = spec.nulls_first
            if nulls_first is None:
                nulls_first = spec.descending
            if value is None:
                null_rank = 0 if nulls_first else 2
            else:
                null_rank = 1
            keys.append((null_rank, _Directed(SortKey(value), spec.descending)))
        return tuple(keys)

    return sorted(indexes, key=decorate)


class _Directed:
    __slots__ = ("key", "descending")

    def __init__(self, key: SortKey, descending: bool):
        self.key = key
        self.descending = descending

    def __lt__(self, other: "_Directed") -> bool:
        if self.descending:
            return other.key < self.key
        return self.key < other.key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _Directed):
            return NotImplemented
        return self.key == other.key


def _order_keys(
    call: b.BoundWindowCall,
    row: tuple,
    outer_env: Optional[EvalEnv],
    ctx: ExecutionContext,
) -> tuple:
    env = EvalEnv(row, outer_env)
    return tuple(evaluate(spec.expr, env, ctx) for spec in call.order_by)


def _compute_partition(
    call: b.BoundWindowCall,
    rows: list[tuple],
    ordered: list[int],
    results: list[Any],
    outer_env: Optional[EvalEnv],
    ctx: ExecutionContext,
) -> None:
    func = call.func.upper()
    size = len(ordered)

    if func in ("ROW_NUMBER", "RANK", "DENSE_RANK", "PERCENT_RANK", "CUME_DIST", "NTILE"):
        keys = [_order_keys(call, rows[i], outer_env, ctx) for i in ordered]
        _rank_functions(func, call, ordered, keys, results, rows, outer_env, ctx)
        return

    if func in ("LAG", "LEAD"):
        offset_expr = call.args[1] if len(call.args) > 1 else None
        default_expr = call.args[2] if len(call.args) > 2 else None
        for position, index in enumerate(ordered):
            env = EvalEnv(rows[index], outer_env)
            step = 1
            if offset_expr is not None:
                step_val = evaluate(offset_expr, env, ctx)
                step = int(step_val) if step_val is not None else 1
            target = position - step if func == "LAG" else position + step
            if 0 <= target < size:
                target_env = EvalEnv(rows[ordered[target]], outer_env)
                results[index] = evaluate(call.args[0], target_env, ctx)
            elif default_expr is not None:
                results[index] = evaluate(default_expr, env, ctx)
            else:
                results[index] = None
        return

    if func in ("FIRST_VALUE", "LAST_VALUE") and not call.frame:
        # Default frame semantics: FIRST_VALUE sees the first row; LAST_VALUE
        # with ORDER BY sees up to the current row's peer group.
        for position, index in enumerate(ordered):
            if func == "FIRST_VALUE":
                source = ordered[0]
            elif call.order_by:
                end = _peer_end(call, rows, ordered, position, outer_env, ctx)
                source = ordered[end]
            else:
                source = ordered[-1]
            env = EvalEnv(rows[source], outer_env)
            results[index] = evaluate(call.args[0], env, ctx)
        return

    if not is_aggregate_function(func) and func not in ("FIRST_VALUE", "LAST_VALUE"):
        raise ExecutionError(f"unknown window function {func}")

    if call.frame is None:
        _aggregate_default_frame(call, rows, ordered, results, outer_env, ctx)
        return

    for position, index in enumerate(ordered):
        start, end = _frame_bounds(call, rows, ordered, position, outer_env, ctx)
        accumulator = make_accumulator(func, call.star)
        seen: set = set()
        for frame_position in range(start, end + 1):
            if not (0 <= frame_position < size):
                continue
            frame_env = EvalEnv(rows[ordered[frame_position]], outer_env)
            if call.star:
                accumulator.add(True)
                continue
            value = evaluate(call.args[0], frame_env, ctx)
            if call.distinct:
                if value is None or value in seen:
                    continue
                seen.add(value)
            accumulator.add(value)
        results[index] = accumulator.result()


def _aggregate_default_frame(
    call: b.BoundWindowCall,
    rows: list[tuple],
    ordered: list[int],
    results: list[Any],
    outer_env: Optional[EvalEnv],
    ctx: ExecutionContext,
) -> None:
    """O(n) evaluation of aggregate windows with the default frame.

    Without ORDER BY the frame is the whole partition (one aggregation);
    with ORDER BY it is RANGE UNBOUNDED PRECEDING .. CURRENT ROW, which we
    compute incrementally, assigning each peer group the running result.
    """
    accumulator = make_accumulator(call.func, call.star)
    seen: set = set()

    def add(index: int) -> None:
        env = EvalEnv(rows[index], outer_env)
        if call.star:
            accumulator.add(True)
            return
        value = evaluate(call.args[0], env, ctx)
        if call.distinct:
            if value is None or value in seen:
                return
            seen.add(value)
        accumulator.add(value)

    if not call.order_by:
        for index in ordered:
            add(index)
        value = accumulator.result()
        for index in ordered:
            results[index] = value
        return

    keys = [_order_keys(call, rows[i], outer_env, ctx) for i in ordered]
    position = 0
    size = len(ordered)
    while position < size:
        end = position
        while end + 1 < size and keys[end + 1] == keys[position]:
            end += 1
        for cursor in range(position, end + 1):
            add(ordered[cursor])
        value = accumulator.result()
        for cursor in range(position, end + 1):
            results[ordered[cursor]] = value
        position = end + 1


def _rank_functions(
    func: str,
    call: b.BoundWindowCall,
    ordered: list[int],
    keys: list[tuple],
    results: list[Any],
    rows: list[tuple],
    outer_env: Optional[EvalEnv],
    ctx: ExecutionContext,
) -> None:
    size = len(ordered)
    if func == "NTILE":
        env = EvalEnv(rows[ordered[0]], outer_env) if ordered else None
        buckets = int(evaluate(call.args[0], env, ctx)) if call.args else 1
        if buckets <= 0:
            raise ExecutionError("NTILE bucket count must be positive")
        base, extra = divmod(size, buckets)
        position = 0
        for bucket in range(buckets):
            width = base + (1 if bucket < extra else 0)
            for _ in range(width):
                if position < size:
                    results[ordered[position]] = bucket + 1
                    position += 1
        return

    rank = 0
    dense = 0
    previous: Optional[tuple] = None
    ranks: list[int] = []
    denses: list[int] = []
    for position in range(size):
        if previous is None or keys[position] != previous:
            rank = position + 1
            dense += 1
            previous = keys[position]
        ranks.append(rank)
        denses.append(dense)

    for position, index in enumerate(ordered):
        if func == "ROW_NUMBER":
            results[index] = position + 1
        elif func == "RANK":
            results[index] = ranks[position]
        elif func == "DENSE_RANK":
            results[index] = denses[position]
        elif func == "PERCENT_RANK":
            results[index] = 0.0 if size == 1 else (ranks[position] - 1) / (size - 1)
        elif func == "CUME_DIST":
            # Number of rows with key <= current key.
            count = ranks[position] - 1
            while count < size and keys[count] == keys[position]:
                count += 1
            results[index] = count / size


def _peer_end(
    call: b.BoundWindowCall,
    rows: list[tuple],
    ordered: list[int],
    position: int,
    outer_env: Optional[EvalEnv],
    ctx: ExecutionContext,
) -> int:
    current = _order_keys(call, rows[ordered[position]], outer_env, ctx)
    end = position
    while end + 1 < len(ordered):
        if _order_keys(call, rows[ordered[end + 1]], outer_env, ctx) != current:
            break
        end += 1
    return end


def _frame_bounds(
    call: b.BoundWindowCall,
    rows: list[tuple],
    ordered: list[int],
    position: int,
    outer_env: Optional[EvalEnv],
    ctx: ExecutionContext,
) -> tuple[int, int]:
    size = len(ordered)
    if call.frame is None:
        if not call.order_by:
            return 0, size - 1
        return 0, _peer_end(call, rows, ordered, position, outer_env, ctx)

    unit, start_kind, start_off, end_kind, end_off = call.frame

    def resolve(kind: str, offset_expr, *, is_start: bool) -> int:
        if kind == "UNBOUNDED_PRECEDING":
            return 0
        if kind == "UNBOUNDED_FOLLOWING":
            return size - 1
        if kind == "CURRENT_ROW":
            if unit == "RANGE" and call.order_by:
                if is_start:
                    # First peer of the current row.
                    start = position
                    current = _order_keys(call, rows[ordered[position]], outer_env, ctx)
                    while start > 0 and _order_keys(
                        call, rows[ordered[start - 1]], outer_env, ctx
                    ) == current:
                        start -= 1
                    return start
                return _peer_end(call, rows, ordered, position, outer_env, ctx)
            return position
        if unit == "RANGE":
            raise UnsupportedError("RANGE frames with offsets are not supported")
        env = EvalEnv(rows[ordered[position]], outer_env)
        delta = int(evaluate(offset_expr, env, ctx))
        return position - delta if kind == "PRECEDING" else position + delta

    start = resolve(start_kind, start_off, is_start=True)
    end = resolve(end_kind, end_off, is_start=False)
    return max(start, 0), min(end, size - 1)
