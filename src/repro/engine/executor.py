"""Plan interpreter: materialized, operator-at-a-time execution.

:func:`execute_plan` walks a :class:`~repro.plan.logical.LogicalPlan` and
returns a list of tuples.  Correlated subqueries re-enter through
:func:`~repro.engine.evaluator.evaluate`, passing the enclosing
:class:`~repro.engine.evaluator.EvalEnv` so that
:class:`~repro.semantics.bound.BoundOuterColumn` references resolve.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.catalog.objects import BaseTable, SystemTable
from repro.engine.evaluator import EvalEnv, ExecutionContext, evaluate
from repro.engine.window import compute_window_column
from repro.errors import ExecutionError, QueryCancelled
from repro.plan import logical as plans
from repro.semantics import bound as b

__all__ = ["execute_plan"]


def execute_plan(
    plan: plans.LogicalPlan,
    ctx: ExecutionContext,
    outer_env: Optional[EvalEnv] = None,
) -> list[tuple]:
    """Execute ``plan`` and return its rows.

    With a profiler attached, every operator execution is bracketed by an
    operator span and accumulates per-node metrics (rows in/out, calls,
    wall time); without one, the only overhead is a single ``is None``
    check per operator execution.
    """
    method = _DISPATCH.get(type(plan))
    if method is None:
        raise ExecutionError(f"cannot execute {type(plan).__name__}")
    # Cancellation lands at operator boundaries: one flag check per
    # operator execution (correlated subqueries re-enter here, so a long
    # nested-loop join still observes the flag frequently).
    if ctx.cancel_event is not None and ctx.cancel_event.is_set():
        raise QueryCancelled("query cancelled")
    progress = ctx.progress
    if progress is not None:
        progress.enter_operator(plan)
    profiler = ctx.profiler
    if profiler is None:
        rows = method(plan, ctx, outer_env)
        if progress is not None:
            progress.exit_operator(plan, rows)
        return rows
    token = profiler.enter_operator(plan)
    try:
        rows = method(plan, ctx, outer_env)
        if progress is not None:
            # Inside the try: a memory budget breach here aborts the
            # operator span, stamping the failure onto the trace.
            progress.exit_operator(plan, rows)
    except BaseException:
        profiler.abort_operator(token)
        raise
    profiler.exit_operator(token, len(rows))
    return rows


def _execute_scan(plan: plans.Scan, ctx: ExecutionContext, outer_env) -> list[tuple]:
    obj = ctx.catalog.resolve(plan.table_name)
    if not isinstance(obj, BaseTable):
        raise ExecutionError(
            f"{plan.table_name!r} is not a base table at execution time"
        )
    # Snapshot-at-statement-start: the first scan of a table materializes
    # its rows for the whole execution, so a self-join (or any repeated
    # scan) sees one consistent table state.  Combined with the session
    # layer's reader/writer lock this gives statement-level snapshot
    # reads: a query observes either the complete pre-statement or the
    # complete post-statement state of every table, never a mix.
    key = plan.table_name.lower()
    rows = ctx.table_snapshots.get(key)
    if rows is None:
        rows = list(obj.table.rows)
        ctx.table_snapshots[key] = rows
    ctx.rows_scanned += len(rows)
    return list(rows)


def _execute_system_scan(
    plan: plans.SystemScan, ctx: ExecutionContext, outer_env
) -> list[tuple]:
    obj = ctx.catalog.resolve(plan.table_name)
    if not isinstance(obj, SystemTable):
        raise ExecutionError(
            f"{plan.table_name!r} is not a system table at execution time"
        )
    # Snapshot-at-scan-start: the provider runs once per query execution,
    # so self-joins over a system table see one consistent set of rows and
    # a query over repro_stat_statements never observes itself mid-flight.
    key = plan.table_name.lower()
    rows = ctx.system_snapshots.get(key)
    if rows is None:
        group = getattr(obj, "group", None)
        group_provider = (
            ctx.catalog.snapshot_group(group) if group is not None else None
        )
        if group_provider is not None:
            # Tables sharing a backing store materialize together from one
            # atomic store read, so a join across them (e.g. plan flips x
            # stat statements) can never observe a torn cross-table state.
            for name, member_rows in group_provider().items():
                ctx.system_snapshots.setdefault(name.lower(), member_rows)
            rows = ctx.system_snapshots[key]
        else:
            rows = obj.provider()
            ctx.system_snapshots[key] = rows
    ctx.rows_scanned += len(rows)
    return list(rows)


def _execute_values(plan: plans.ValuesPlan, ctx: ExecutionContext, outer_env) -> list[tuple]:
    env = EvalEnv((), outer_env)
    return [
        tuple(evaluate(cell, env, ctx) for cell in row) for row in plan.rows
    ]


def _execute_filter(plan: plans.Filter, ctx: ExecutionContext, outer_env) -> list[tuple]:
    rows = execute_plan(plan.input, ctx, outer_env)
    kept = []
    cancel = ctx.cancel_event
    progress = ctx.progress
    watched = cancel is not None or progress is not None
    for index, row in enumerate(rows):
        # Predicate loops dominate long queries, so cancellation and
        # progress ticks land here too (every 256 rows), not just at
        # operator boundaries.  ``watched`` is hoisted so the untracked
        # hot path pays one local truthiness test per row.
        if watched and not index & 0xFF:
            if cancel is not None and cancel.is_set():
                raise QueryCancelled("query cancelled")
            if progress is not None:
                progress.tick(plan, len(kept))
        env = EvalEnv(row, outer_env)
        if evaluate(plan.predicate, env, ctx) is True:
            kept.append(row)
    return kept


def _execute_project(plan: plans.Project, ctx: ExecutionContext, outer_env) -> list[tuple]:
    rows = execute_plan(plan.input, ctx, outer_env)
    output = []
    for row in rows:
        env = EvalEnv(row, outer_env)
        output.append(tuple(evaluate(expr, env, ctx) for expr in plan.exprs))
    return output


def _execute_join(plan: plans.Join, ctx: ExecutionContext, outer_env) -> list[tuple]:
    left_rows = execute_plan(plan.left, ctx, outer_env)
    right_rows = execute_plan(plan.right, ctx, outer_env)
    left_width = len(plan.left.schema)
    right_width = len(plan.right.schema)
    output: list[tuple] = []

    cancel = ctx.cancel_event
    progress = ctx.progress
    watched = cancel is not None or progress is not None
    if plan.kind == "CROSS":
        for index, left in enumerate(left_rows):
            if watched and not index & 0xFF:
                if cancel is not None and cancel.is_set():
                    raise QueryCancelled("query cancelled")
                if progress is not None:
                    progress.tick(plan, len(output))
            for right in right_rows:
                output.append(left + right)
        return output

    if plan.kind not in ("INNER", "LEFT", "RIGHT", "FULL"):
        raise ExecutionError(f"unknown join kind {plan.kind}")

    equi_keys, residual = _extract_equi_keys(plan.condition, left_width)
    if equi_keys:
        ctx.hash_joins += 1
        return _hash_join(
            plan, left_rows, right_rows, left_width, right_width,
            equi_keys, residual, ctx, outer_env,
        )

    ctx.nested_loop_joins += 1
    if ctx.profiler is not None:
        ctx.profiler.operator_count(
            plan, "comparisons", len(left_rows) * len(right_rows)
        )
    right_matched = [False] * len(right_rows)
    for left_index, left in enumerate(left_rows):
        if watched and not left_index & 0xFF:
            if cancel is not None and cancel.is_set():
                raise QueryCancelled("query cancelled")
            if progress is not None:
                progress.tick(plan, len(output))
        matched = False
        for right_index, right in enumerate(right_rows):
            combined = left + right
            env = EvalEnv(combined, outer_env)
            if plan.condition is None or evaluate(plan.condition, env, ctx) is True:
                output.append(combined)
                matched = True
                right_matched[right_index] = True
        if not matched and plan.kind in ("LEFT", "FULL"):
            output.append(left + (None,) * right_width)
    if plan.kind in ("RIGHT", "FULL"):
        for right_index, right in enumerate(right_rows):
            if not right_matched[right_index]:
                output.append((None,) * left_width + right)
    return output


def _extract_equi_keys(
    condition, left_width: int
) -> tuple[list[tuple[int, int]], list]:
    """Split a join condition into hashable equi-key column pairs and a
    residual predicate list.

    Returns ``([(left_offset, right_offset_in_right_row)...], residual)``;
    empty keys means fall back to the nested loop.  Only top-level AND
    conjuncts of the form ``left_col = right_col`` qualify (SQL ``=``: NULL
    keys never join, which hashing honours by skipping None keys).
    """
    if condition is None:
        return [], []
    keys: list[tuple[int, int]] = []
    residual: list = []
    for conjunct in _conjuncts_of(condition):
        if (
            isinstance(conjunct, b.BoundCall)
            and conjunct.op == "="
            and len(conjunct.args) == 2
            and all(isinstance(a, b.BoundColumn) for a in conjunct.args)
            and _hash_compatible(conjunct.args[0].dtype, conjunct.args[1].dtype)
        ):
            first, second = conjunct.args
            offsets = sorted((first.offset, second.offset))
            if offsets[0] < left_width <= offsets[1]:
                keys.append((offsets[0], offsets[1] - left_width))
                continue
        residual.append(conjunct)
    return keys, residual


def _hash_compatible(left_type, right_type) -> bool:
    """Python hashes True == 1, but SQL '=' rejects BOOLEAN vs numeric;
    route such (mis)typed conditions through the nested loop so they raise
    the same error either way."""
    from repro.types import BOOLEAN, UNKNOWN

    left_type, right_type = left_type.unwrap(), right_type.unwrap()
    if UNKNOWN in (left_type, right_type):
        return False
    return (left_type is BOOLEAN) == (right_type is BOOLEAN)


def _conjuncts_of(expr) -> list:
    if isinstance(expr, b.BoundCall) and expr.op == "AND":
        result = []
        for arg in expr.args:
            result.extend(_conjuncts_of(arg))
        return result
    return [expr]


def _hash_join(
    plan: plans.Join,
    left_rows: list[tuple],
    right_rows: list[tuple],
    left_width: int,
    right_width: int,
    equi_keys: list[tuple[int, int]],
    residual: list,
    ctx: ExecutionContext,
    outer_env,
) -> list[tuple]:
    """Equi-hash join with residual predicate and outer-join padding."""
    if ctx.profiler is not None:
        ctx.profiler.operator_count(plan, "hash_build_rows", len(right_rows))
        ctx.profiler.operator_count(plan, "hash_probes", len(left_rows))
    cancel = ctx.cancel_event
    progress = ctx.progress
    watched = cancel is not None or progress is not None
    table: dict[tuple, list[int]] = {}
    for index, right in enumerate(right_rows):
        if watched and not index & 0xFF:
            if cancel is not None and cancel.is_set():
                raise QueryCancelled("query cancelled")
            if progress is not None:
                progress.tick(plan, index)
        key = tuple(right[r] for _, r in equi_keys)
        if any(k is None for k in key):
            continue  # NULL keys never match under SQL '='
        try:
            table.setdefault(key, []).append(index)
        except TypeError:
            # Unhashable key value: bail out to the nested loop path.
            return _nested_loop_fallback(
                plan, left_rows, right_rows, left_width, right_width, ctx, outer_env
            )
    if progress is not None and right_rows:
        # The build table holds one key tuple + list slot per non-NULL
        # build row; 64 bytes/entry approximates that bucket state.
        progress.account_bytes(plan, 64 * len(right_rows))

    output: list[tuple] = []
    right_matched = [False] * len(right_rows)
    for probe_index, left in enumerate(left_rows):
        if watched and not probe_index & 0xFF:
            if cancel is not None and cancel.is_set():
                raise QueryCancelled("query cancelled")
            if progress is not None:
                progress.tick(plan, len(output))
        key = tuple(left[l] for l, _ in equi_keys)
        matched = False
        if not any(k is None for k in key):
            for right_index in table.get(key, ()):
                combined = left + right_rows[right_index]
                if residual:
                    env = EvalEnv(combined, outer_env)
                    if not all(
                        evaluate(p, env, ctx) is True for p in residual
                    ):
                        continue
                output.append(combined)
                matched = True
                right_matched[right_index] = True
        if not matched and plan.kind in ("LEFT", "FULL"):
            output.append(left + (None,) * right_width)
    if plan.kind in ("RIGHT", "FULL"):
        for right_index, right in enumerate(right_rows):
            if not right_matched[right_index]:
                output.append((None,) * left_width + right)
    return output


def _nested_loop_fallback(
    plan, left_rows, right_rows, left_width, right_width, ctx, outer_env
) -> list[tuple]:
    output: list[tuple] = []
    right_matched = [False] * len(right_rows)
    for left in left_rows:
        matched = False
        for right_index, right in enumerate(right_rows):
            combined = left + right
            env = EvalEnv(combined, outer_env)
            if plan.condition is None or evaluate(plan.condition, env, ctx) is True:
                output.append(combined)
                matched = True
                right_matched[right_index] = True
        if not matched and plan.kind in ("LEFT", "FULL"):
            output.append(left + (None,) * right_width)
    if plan.kind in ("RIGHT", "FULL"):
        for right_index, right in enumerate(right_rows):
            if not right_matched[right_index]:
                output.append((None,) * left_width + right)
    return output


def _execute_aggregate(plan: plans.Aggregate, ctx: ExecutionContext, outer_env) -> list[tuple]:
    from repro.engine.aggregates import make_accumulator

    input_rows = execute_plan(plan.input, ctx, outer_env)
    key_count = len(plan.group_exprs)
    output: list[tuple] = []

    # Pre-compute every group expression once per input row.
    cancel = ctx.cancel_event
    progress = ctx.progress
    watched = cancel is not None or progress is not None
    keyed_rows: list[tuple[tuple, tuple]] = []
    for row_index, row in enumerate(input_rows):
        if watched and not row_index & 0xFF:
            if cancel is not None and cancel.is_set():
                raise QueryCancelled("query cancelled")
            if progress is not None:
                progress.tick(plan, len(keyed_rows))
        env = EvalEnv(row, outer_env)
        keys = tuple(evaluate(expr, env, ctx) for expr in plan.group_exprs)
        keyed_rows.append((keys, row))

    for active in plan.grouping_sets:
        active_set = frozenset(active)
        bitmap = 0
        for position in range(key_count):
            if position not in active_set:
                bitmap |= 1 << position
        groups: dict[tuple, list[tuple]] = {}
        order: list[tuple] = []
        for keys, row in keyed_rows:
            group_key = tuple(keys[i] for i in active)
            if group_key not in groups:
                groups[group_key] = []
                order.append(group_key)
            groups[group_key].append(row)
        if not groups and not active:
            # A global grouping set emits one row even over empty input.
            groups[()] = []
            order.append(())

        for group_key in order:
            group_rows = groups[group_key]
            key_by_position = dict(zip(active, group_key))
            out_keys = tuple(
                key_by_position.get(i) for i in range(key_count)
            )
            agg_values = tuple(
                _accumulate(call, group_rows, outer_env, ctx)
                for call in plan.agg_calls
            )
            row_out: tuple = out_keys + agg_values
            if plan.has_grouping_id:
                row_out += (bitmap,)
            if plan.capture_rows:
                row_out += (tuple(group_rows),)
            output.append(row_out)
    if ctx.profiler is not None:
        ctx.profiler.operator_count(plan, "groups", len(output))
    return output


def _accumulate(
    call: b.BoundAggCall,
    rows: list[tuple],
    outer_env: Optional[EvalEnv],
    ctx: ExecutionContext,
) -> Any:
    from repro.engine.evaluator import _run_aggregate

    return _run_aggregate(call, rows, outer_env, ctx)


def _execute_window(plan: plans.Window, ctx: ExecutionContext, outer_env) -> list[tuple]:
    rows = execute_plan(plan.input, ctx, outer_env)
    columns = [
        compute_window_column(call, rows, outer_env, ctx) for call in plan.calls
    ]
    return [
        row + tuple(column[index] for column in columns)
        for index, row in enumerate(rows)
    ]


def _execute_sort(plan: plans.Sort, ctx: ExecutionContext, outer_env) -> list[tuple]:
    from repro.types import sort_rows

    rows = execute_plan(plan.input, ctx, outer_env)
    if not plan.keys:
        return rows
    decorated = []
    for row in rows:
        env = EvalEnv(row, outer_env)
        keys = tuple(evaluate(spec.expr, env, ctx) for spec in plan.keys)
        decorated.append(keys + (row,))
    specs = []
    for index, spec in enumerate(plan.keys):
        nulls_first = spec.nulls_first
        if nulls_first is None:
            # Default: NULLs last ascending, first descending (PostgreSQL).
            nulls_first = spec.descending
        specs.append((index, spec.descending, nulls_first))
    ordered = sort_rows(decorated, specs)
    return [entry[-1] for entry in ordered]


def _execute_limit(plan: plans.Limit, ctx: ExecutionContext, outer_env) -> list[tuple]:
    rows = execute_plan(plan.input, ctx, outer_env)
    env = EvalEnv((), outer_env)
    offset = 0
    if plan.offset is not None:
        value = evaluate(plan.offset, env, ctx)
        offset = max(int(value), 0) if value is not None else 0
    if plan.limit is not None:
        value = evaluate(plan.limit, env, ctx)
        if value is None:
            return rows[offset:]
        limit = max(int(value), 0)
        return rows[offset : offset + limit]
    return rows[offset:]


def _execute_distinct(plan: plans.Distinct, ctx: ExecutionContext, outer_env) -> list[tuple]:
    rows = execute_plan(plan.input, ctx, outer_env)
    seen: set = set()
    output = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            output.append(row)
    return output


def _execute_setop(plan: plans.SetOpPlan, ctx: ExecutionContext, outer_env) -> list[tuple]:
    left = execute_plan(plan.left, ctx, outer_env)
    right = execute_plan(plan.right, ctx, outer_env)
    if len(plan.left.schema) != len(plan.right.schema):
        raise ExecutionError("set operation inputs differ in arity")

    if plan.op == "UNION":
        combined = left + right
        if plan.all:
            return combined
        return _dedupe(combined)
    if plan.op == "INTERSECT":
        counts = _count_rows(right)
        output = []
        if plan.all:
            for row in left:
                if counts.get(row, 0) > 0:
                    counts[row] -= 1
                    output.append(row)
            return output
        emitted: set = set()
        for row in left:
            if row in counts and row not in emitted:
                emitted.add(row)
                output.append(row)
        return output
    if plan.op == "EXCEPT":
        counts = _count_rows(right)
        output = []
        if plan.all:
            for row in left:
                if counts.get(row, 0) > 0:
                    counts[row] -= 1
                else:
                    output.append(row)
            return output
        right_set = set(right)
        emitted = set()
        for row in left:
            if row not in right_set and row not in emitted:
                emitted.add(row)
                output.append(row)
        return output
    raise ExecutionError(f"unknown set operation {plan.op}")


def _dedupe(rows: list[tuple]) -> list[tuple]:
    seen: set = set()
    output = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            output.append(row)
    return output


def _count_rows(rows: list[tuple]) -> dict[tuple, int]:
    counts: dict[tuple, int] = {}
    for row in rows:
        counts[row] = counts.get(row, 0) + 1
    return counts


_DISPATCH = {
    plans.Scan: _execute_scan,
    plans.SystemScan: _execute_system_scan,
    plans.ValuesPlan: _execute_values,
    plans.Filter: _execute_filter,
    plans.Project: _execute_project,
    plans.Join: _execute_join,
    plans.Aggregate: _execute_aggregate,
    plans.Window: _execute_window,
    plans.Sort: _execute_sort,
    plans.Limit: _execute_limit,
    plans.Distinct: _execute_distinct,
    plans.SetOpPlan: _execute_setop,
}
