"""Scalar expression evaluation.

:class:`EvalEnv` is the runtime environment: the current input row, a link to
the enclosing query's environment (for correlated references), and — inside
aggregate queries — the current group's input rows, which measure VISIBLE
semantics needs.

:class:`ExecutionContext` carries per-execution state: the catalog, the
correlated-subquery memo cache and the measure memo cache (the paper's
"localized self-join" strategy, section 5.1), plus counters that the
benchmarks read.
"""

from __future__ import annotations

import datetime
from typing import Any, Optional

from repro.errors import ExecutionError
from repro.semantics import bound as b
from repro.types import (
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    VARCHAR,
)

__all__ = ["EvalEnv", "ExecutionContext", "evaluate", "evaluate_formula", "cast_value"]


class EvalEnv:
    """Runtime environment for expression evaluation."""

    __slots__ = ("row", "parent", "group_rows")

    def __init__(
        self,
        row: tuple,
        parent: Optional["EvalEnv"] = None,
        group_rows: Optional[tuple] = None,
    ):
        self.row = row
        self.parent = parent
        self.group_rows = group_rows

    def at_depth(self, depth: int) -> "EvalEnv":
        """The environment ``depth`` levels up (0 = this one)."""
        env = self
        for _ in range(depth):
            if env.parent is None:
                raise ExecutionError("correlated reference escapes all scopes")
            env = env.parent
        return env


class ExecutionContext:
    """Shared state for one query execution."""

    def __init__(
        self,
        catalog,
        *,
        enable_cache: bool = True,
        params=(),
        profiler=None,
        cancel_event=None,
        progress=None,
    ):
        self.catalog = catalog
        self.enable_cache = enable_cache
        self.params = tuple(params)
        #: Optional :class:`repro.profile.Profiler`.  None (the default)
        #: means every instrumentation site is a single attribute check;
        #: no timers run and no spans are allocated.
        self.profiler = profiler
        #: Optional :class:`threading.Event`; when set, execution raises
        #: :class:`~repro.errors.QueryCancelled` at the next operator
        #: boundary (the server's ``cancel`` op, see :mod:`repro.server`).
        self.cancel_event = cancel_event
        #: Optional :class:`repro.engine.progress.ProgressState`: live
        #: rows-processed / current-operator / memory accounting, updated
        #: at operator boundaries and the 256-row checkpoints.  Same
        #: zero-cost-when-off discipline as the profiler: None means one
        #: attribute check per operator and per 256-row checkpoint.
        self.progress = progress
        self.subquery_cache: dict = {}
        self.measure_cache: dict = {}
        self.source_rows_cache: dict = {}
        #: (source plan id, dimension key) -> {value: [row positions]}.
        self.dim_indexes: dict = {}
        #: System-table name -> rows materialized at first scan, so every
        #: scan in one execution sees the same snapshot (repro.introspect).
        self.system_snapshots: dict = {}
        #: Base-table name -> rows materialized at first scan: every scan
        #: of one statement execution reads the same snapshot, so a
        #: self-join sees one table state (snapshot-at-statement-start,
        #: the user-table generalization of system_snapshots).
        self.table_snapshots: dict = {}
        #: Keeps row tuples referenced by id()-based cache keys alive for the
        #: duration of the execution (an id may otherwise be reused by a new
        #: object after garbage collection, aliasing unrelated cache entries).
        self.pinned: list = []
        # Counters exposed to benchmarks and tests.
        self.subquery_executions = 0
        self.subquery_cache_hits = 0
        self.measure_evaluations = 0
        self.measure_cache_hits = 0
        self.rows_scanned = 0
        self.hash_joins = 0
        self.nested_loop_joins = 0


def _attach_span(exc: ExecutionError, expr: b.BoundExpr) -> ExecutionError:
    """Stamp ``expr``'s source position onto ``exc`` if it has none yet
    (the innermost located expression wins)."""
    span = getattr(expr, "span", None)
    if span is not None:
        exc.attach_location(span.line, span.column)
    return exc


def _call_function(expr: b.BoundCall, args: list) -> Any:
    """Apply a call's runtime function, converting stray Python errors into
    located :class:`ExecutionError`\\ s.

    A function raising bare ``TypeError``/``ValueError`` (e.g. a string
    builtin applied to a non-string, or an int conversion of a malformed
    string) would otherwise escape the SqlError hierarchy entirely and
    surface as an unhandled Python exception with no SQL position.
    """
    try:
        return expr.fn(*args)
    except ExecutionError as exc:
        raise _attach_span(exc, expr)
    except (TypeError, ValueError) as exc:
        raise _attach_span(
            ExecutionError(f"invalid argument to {expr.op}: {exc}"), expr
        ) from None


def evaluate(expr: b.BoundExpr, env: EvalEnv, ctx: ExecutionContext) -> Any:
    """Evaluate a bound scalar expression."""
    if isinstance(expr, b.BoundLiteral):
        return expr.value
    if isinstance(expr, b.BoundParameter):
        try:
            return ctx.params[expr.index]
        except IndexError:
            raise ExecutionError(
                f"query expects at least {expr.index + 1} parameter(s), "
                f"got {len(ctx.params)}"
            ) from None
    if isinstance(expr, b.BoundColumn):
        return env.row[expr.offset]
    if isinstance(expr, b.BoundOuterColumn):
        return env.at_depth(expr.depth).row[expr.offset]
    if isinstance(expr, b.BoundCall):
        # AND/OR short-circuit so that guarded expressions (x <> 0 AND y/x)
        # never evaluate the protected operand.
        if expr.op == "AND":
            left = evaluate(expr.args[0], env, ctx)
            if left is False:
                return False
            from repro.types import sql_and

            return sql_and(left, evaluate(expr.args[1], env, ctx))
        if expr.op == "OR":
            left = evaluate(expr.args[0], env, ctx)
            if left is True:
                return True
            from repro.types import sql_or

            return sql_or(left, evaluate(expr.args[1], env, ctx))
        args = [evaluate(arg, env, ctx) for arg in expr.args]
        return _call_function(expr, args)
    if isinstance(expr, b.BoundCase):
        for condition, result in expr.whens:
            if evaluate(condition, env, ctx) is True:
                return evaluate(result, env, ctx)
        if expr.else_result is not None:
            return evaluate(expr.else_result, env, ctx)
        return None
    if isinstance(expr, b.BoundCast):
        try:
            return cast_value(evaluate(expr.operand, env, ctx), expr.dtype)
        except ExecutionError as exc:
            raise _attach_span(exc, expr)
    if isinstance(expr, b.BoundInList):
        return _evaluate_in_list(expr, env, ctx)
    if isinstance(expr, b.BoundAggRef):
        return env.row[expr.index]
    if isinstance(expr, b.BoundGroupingId):
        return _evaluate_grouping(expr, env)
    if isinstance(expr, b.BoundSubquery):
        return _evaluate_subquery(expr, env, ctx)
    if isinstance(expr, b.BoundMeasureEval):
        from repro.core.evaluator import evaluate_measure

        return evaluate_measure(expr, env, ctx)
    if isinstance(expr, b.BoundAggCall):
        raise ExecutionError(
            f"aggregate {expr.func} used outside an aggregate context"
        )
    if isinstance(expr, b.BoundCurrentDim):
        raise ExecutionError("CURRENT is only valid inside an AT SET modifier")
    raise ExecutionError(f"cannot evaluate {type(expr).__name__}")


def _evaluate_in_list(expr: b.BoundInList, env: EvalEnv, ctx: ExecutionContext) -> Any:
    from repro.types import sql_eq, sql_not

    operand = evaluate(expr.operand, env, ctx)
    if operand is None:
        return None
    saw_null = False
    for item in expr.items:
        verdict = sql_eq(operand, evaluate(item, env, ctx))
        if verdict is True:
            return sql_not(True) if expr.negated else True
        if verdict is None:
            saw_null = True
    if saw_null:
        return None
    return True if expr.negated else False


def _evaluate_grouping(expr: b.BoundGroupingId, env: EvalEnv) -> int:
    bitmap = env.row[expr.grouping_column]
    if bitmap is None:
        bitmap = 0
    result = 0
    width = len(expr.key_indexes)
    for position, key_index in enumerate(expr.key_indexes):
        bit = (bitmap >> key_index) & 1
        result |= bit << (width - 1 - position)
    return result


def _evaluate_subquery(expr: b.BoundSubquery, env: EvalEnv, ctx: ExecutionContext) -> Any:
    from repro.engine.executor import execute_plan
    from repro.types import sql_eq

    cache_key = None
    if ctx.enable_cache:
        try:
            values = tuple(
                env.at_depth(depth - 1).row[offset]
                for depth, offset in expr.outer_refs
            )
            cache_key = (id(expr.plan), expr.kind, values)
            # An unhashable correlated value would raise from the dict
            # lookup below; probe here so only that narrow case falls back
            # to uncached execution (anything else must propagate).
            hash(cache_key)
        except ExecutionError:
            # A correlation that escapes all scopes cannot be keyed; the
            # subquery still executes (and raises properly if truly broken).
            cache_key = None
        except TypeError:
            cache_key = None
        if cache_key is not None and cache_key in ctx.subquery_cache:
            ctx.subquery_cache_hits += 1
            rows = ctx.subquery_cache[cache_key]
        else:
            rows = execute_plan(expr.plan, ctx, env)
            ctx.subquery_executions += 1
            if cache_key is not None:
                ctx.subquery_cache[cache_key] = rows
    else:
        rows = execute_plan(expr.plan, ctx, env)
        ctx.subquery_executions += 1

    if expr.kind == "EXISTS":
        found = bool(rows)
        return (not found) if expr.negated else found
    if expr.kind == "SCALAR":
        if not rows:
            return None
        if len(rows) > 1:
            raise ExecutionError("scalar subquery returned more than one row")
        return rows[0][0]
    if expr.kind == "IN":
        operand = evaluate(expr.operand, env, ctx)
        if operand is None:
            return None
        saw_null = False
        for row in rows:
            verdict = sql_eq(operand, row[0])
            if verdict is True:
                return False if expr.negated else True
            if verdict is None:
                saw_null = True
        if saw_null:
            return None
        return True if expr.negated else False
    raise ExecutionError(f"unknown subquery kind {expr.kind}")


def evaluate_formula(
    formula: b.BoundExpr,
    rows: list[tuple],
    env: Optional[EvalEnv],
    ctx: ExecutionContext,
) -> Any:
    """Evaluate a measure formula over a set of source rows.

    Aggregate calls inside the formula aggregate over ``rows``; everything
    above the aggregates is scalar arithmetic.  ``env`` is the call-site
    environment, used when the formula itself contains context-sensitive
    parts (nested measures).
    """
    if isinstance(formula, b.BoundAggCall):
        return _run_aggregate(formula, rows, env, ctx)
    if isinstance(formula, b.BoundCall):
        args = [evaluate_formula(arg, rows, env, ctx) for arg in formula.args]
        return _call_function(formula, args)
    if isinstance(formula, b.BoundLiteral):
        return formula.value
    if isinstance(formula, b.BoundCase):
        for condition, result in formula.whens:
            if evaluate_formula(condition, rows, env, ctx) is True:
                return evaluate_formula(result, rows, env, ctx)
        if formula.else_result is not None:
            return evaluate_formula(formula.else_result, rows, env, ctx)
        return None
    if isinstance(formula, b.BoundCast):
        try:
            return cast_value(
                evaluate_formula(formula.operand, rows, env, ctx),
                formula.dtype,
            )
        except ExecutionError as exc:
            raise _attach_span(exc, formula)
    if isinstance(formula, b.BoundMeasureEval):
        from repro.core.evaluator import evaluate_measure

        return evaluate_measure(formula, env, ctx, formula_rows=rows)
    if isinstance(formula, b.BoundSubquery):
        # A scalar subquery in a formula is row-independent: evaluate it once
        # against an empty row (correlations resolve through ``env``).
        return _evaluate_subquery(formula, EvalEnv((), env), ctx)
    if isinstance(formula, b.BoundInList):
        operand = evaluate_formula(formula.operand, rows, env, ctx)
        rewritten = b.BoundInList(
            b.BoundLiteral(operand, formula.dtype),
            formula.items,
            formula.negated,
            formula.dtype,
        )
        return _evaluate_in_list(rewritten, EvalEnv((), env), ctx)
    if isinstance(formula, b.BoundColumn):
        raise ExecutionError(
            "measure formula references a column outside an aggregate; "
            "measures must be aggregatable (wrap the column in an aggregate)"
        )
    raise ExecutionError(
        f"unsupported construct in measure formula: {type(formula).__name__}"
    )


def _run_aggregate(
    call: b.BoundAggCall,
    rows: list[tuple],
    env: Optional[EvalEnv],
    ctx: ExecutionContext,
) -> Any:
    from repro.engine.aggregates import make_accumulator

    if ctx.profiler is not None:
        ctx.profiler.bump("aggregate_invocations")
        ctx.profiler.bump("aggregate_input_rows", len(rows))
    if call.within_distinct:
        rows = _within_distinct_representatives(call, rows, env, ctx)
    accumulator = make_accumulator(call.func, call.star)
    seen: set = set()
    ordered_rows = rows
    if call.order_by:
        from repro.types import sort_rows

        # Sort a copy of the rows by the ORDER BY keys evaluated per row.
        keyed = []
        for row in rows:
            row_env = EvalEnv(row, env)
            keys = tuple(evaluate(spec.expr, row_env, ctx) for spec in call.order_by)
            keyed.append((keys, row))
        specs = [
            (i, spec.descending, bool(spec.nulls_first))
            for i, spec in enumerate(call.order_by)
        ]
        keyed = sort_rows(
            [(k + (r,)) for k, r in keyed],
            [(i, d, n) for i, d, n in specs],
        )
        ordered_rows = [entry[-1] for entry in keyed]
    for row in ordered_rows:
        row_env = EvalEnv(row, env)
        if call.filter_where is not None:
            if evaluate(call.filter_where, row_env, ctx) is not True:
                continue
        if call.star:
            accumulator.add(True)
            continue
        value = evaluate(call.args[0], row_env, ctx) if call.args else None
        if call.distinct:
            if value is None:
                continue
            if value in seen:
                continue
            seen.add(value)
        accumulator.add(value)
    return accumulator.result()


def _within_distinct_representatives(
    call: b.BoundAggCall,
    rows: list[tuple],
    env: Optional[EvalEnv],
    ctx: ExecutionContext,
) -> list[tuple]:
    """WITHIN DISTINCT (keys): keep one representative row per distinct key
    combination (paper section 6.3 / CALCITE-4483).

    The aggregate's argument must be constant within each key group — the
    clause manages grain, it does not pick arbitrary winners — so a
    disagreement raises instead of silently double- or under-counting.
    """
    representatives: dict[tuple, tuple] = {}
    witness: dict[tuple, Any] = {}
    for row in rows:
        row_env = EvalEnv(row, env)
        if call.filter_where is not None:
            if evaluate(call.filter_where, row_env, ctx) is not True:
                continue
        key = tuple(evaluate(k, row_env, ctx) for k in call.within_distinct)
        value = (
            True if call.star else
            (evaluate(call.args[0], row_env, ctx) if call.args else None)
        )
        if key not in representatives:
            representatives[key] = row
            witness[key] = value
        else:
            from repro.types import is_not_distinct

            if not is_not_distinct(witness[key], value):
                raise ExecutionError(
                    f"{call.func} WITHIN DISTINCT: argument is not constant "
                    f"within key {key!r} ({witness[key]!r} vs {value!r})"
                )
    return list(representatives.values())


def cast_value(value: Any, dtype) -> Any:
    """Runtime CAST implementation."""
    if value is None:
        return None
    target = dtype.unwrap()
    try:
        if target is INTEGER:
            if isinstance(value, str):
                return int(value.strip())
            if isinstance(value, (int, float)):
                return int(value)
            if isinstance(value, bool):
                return int(value)
        elif target is DOUBLE:
            if isinstance(value, (int, float, str)):
                return float(value)
        elif target is VARCHAR:
            if isinstance(value, bool):
                return "true" if value else "false"
            if isinstance(value, datetime.date):
                return value.isoformat()
            return str(value)
        elif target is BOOLEAN:
            if isinstance(value, bool):
                return value
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "1"):
                    return True
                if lowered in ("false", "f", "0"):
                    return False
        elif target is DATE:
            if isinstance(value, datetime.date):
                return value
            if isinstance(value, str):
                return datetime.date.fromisoformat(value.strip().replace("/", "-"))
        else:
            return value
    except (ValueError, TypeError):
        pass
    raise ExecutionError(f"cannot cast {value!r} to {target}")
