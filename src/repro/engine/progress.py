"""Live query progress: per-query state readable while the query runs.

A :class:`ProgressState` is written by exactly one thread — the one
executing the query — and read, without any lock, by any number of
observers (the ``repro_running_queries`` / ``repro_query_progress``
system tables, the HTTP sidecar's ``/queries``, the shell's ``\\top``).
All mutations are plain attribute stores of immutable values (ints,
strings), so under the GIL a reader always sees a value that *was* true
at some point; no torn reads are possible.  The executor feeds it by
piggybacking on the existing 256-row cancellation checkpoints, so with
tracking off the hot loops pay one extra ``is None`` check per 256 rows
and nothing else.

The same object carries the per-query memory budget: materialization
sites (operator output buffers, hash-join build tables, aggregate key
buffers) account estimated bytes as they grow, and crossing
``memory_limit_bytes`` raises :class:`~repro.errors.ResourceExhausted`
mid-loop — a graceful, catchable error instead of an interpreter OOM.

:class:`QueryRegistry` is the Database-wide directory of in-flight
queries.  Registration takes a lock (queries start and finish rarely);
reading a registered state never does.  ``current_query_id`` is how a
query scanning the registry avoids observing itself: the Database sets
it for the duration of a tracked execution, and the registry's snapshot
excludes that id.
"""

from __future__ import annotations

import contextvars
import itertools
import sys
import threading
import time
from datetime import datetime, timezone
from typing import Any, List, Optional

from repro.errors import ResourceExhausted

__all__ = [
    "OperatorProgress",
    "ProgressState",
    "QueryRegistry",
    "current_query_id",
]

#: The query id of the tracked statement executing in this context, or ""
#: outside one.  A ContextVar (not a thread-local) so it survives the
#: server's ``asyncio.to_thread`` hop, like the telemetry session label.
current_query_id: contextvars.ContextVar[str] = contextvars.ContextVar(
    "repro_current_query", default=""
)

#: Byte estimate used for a row before the first real row is sampled.
_DEFAULT_ROW_BYTES = 80

#: Rows between two progress ticks; mirrors the executor's cancellation
#: checkpoint mask (``not index & 0xFF``).
TICK_ROWS = 256


def _estimate_row_bytes(row: tuple) -> int:
    """Cheap shallow byte estimate of one materialized row."""
    try:
        return sys.getsizeof(row) + sum(
            sys.getsizeof(value) for value in row
        )
    except TypeError:  # pragma: no cover - exotic cell types
        return _DEFAULT_ROW_BYTES


class OperatorProgress:
    """Live per-operator counters: estimated vs actual rows.

    ``est_rows_min`` / ``est_rows_max`` come from the dataflow analyzer's
    cardinality bounds (``plan.facts``); ``rows_out`` / ``calls`` are what
    actually happened so far.  ``state`` walks pending -> running -> done.
    """

    __slots__ = (
        "op_id",
        "label",
        "est_rows_min",
        "est_rows_max",
        "rows_out",
        "calls",
        "state",
    )

    def __init__(
        self,
        op_id: int,
        label: str,
        est_rows_min: Optional[int] = None,
        est_rows_max: Optional[int] = None,
    ):
        self.op_id = op_id
        self.label = label
        self.est_rows_min = est_rows_min
        self.est_rows_max = est_rows_max
        self.rows_out = 0
        self.calls = 0
        self.state = "pending"

    def as_row(self, query_id: str) -> tuple:
        return (
            query_id,
            self.op_id,
            self.label,
            self.est_rows_min,
            self.est_rows_max,
            self.rows_out,
            self.calls,
            self.state,
        )


class ProgressState:
    """One running query's live counters; single writer, lock-free readers."""

    __slots__ = (
        "query_id",
        "session_id",
        "sql",
        "traceparent",
        "started",
        "started_ns",
        "rows_processed",
        "current_operator",
        "memory_bytes",
        "memory_limit_bytes",
        "finished",
        "_operators",
        "_row_bytes",
        "_next_op",
    )

    def __init__(
        self,
        query_id: str,
        *,
        sql: str = "",
        session_id: str = "",
        traceparent: str = "",
        memory_limit_bytes: Optional[int] = None,
    ):
        self.query_id = query_id
        self.session_id = session_id
        self.sql = sql
        self.traceparent = traceparent
        self.started = datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        )
        self.started_ns = time.perf_counter_ns()
        self.rows_processed = 0
        self.current_operator = ""
        self.memory_bytes = 0
        self.memory_limit_bytes = memory_limit_bytes
        self.finished = False
        #: id(plan node) -> OperatorProgress, insertion-ordered; readers
        #: materialize ``list(values())`` which is atomic under the GIL.
        self._operators: dict = {}
        #: id(plan node) -> sampled bytes per output row.
        self._row_bytes: dict = {}
        self._next_op = itertools.count(1)

    # -- writer side (the executing thread) ------------------------------

    def attach_plan(self, plan: Any) -> None:
        """Pre-register every operator of ``plan`` with its estimated
        cardinality bounds, so estimated-vs-actual rows are visible from
        the first tick (and for operators that never run at all)."""
        for node in plan.walk():
            self._entry(node)

    def _entry(self, plan: Any) -> OperatorProgress:
        key = id(plan)
        entry = self._operators.get(key)
        if entry is None:
            facts = getattr(plan, "facts", None)
            entry = OperatorProgress(
                next(self._next_op),
                plan.label(),
                None if facts is None else facts.row_min,
                None if facts is None else facts.row_max,
            )
            self._operators[key] = entry
        return entry

    def enter_operator(self, plan: Any) -> None:
        entry = self._entry(plan)
        entry.state = "running"
        self.current_operator = entry.label

    def exit_operator(self, plan: Any, rows: list) -> None:
        """Operator finished: record actual rows and account its
        materialized output buffer against the memory budget."""
        entry = self._operators[id(plan)]
        entry.calls += 1
        entry.rows_out += len(rows)
        entry.state = "done"
        self.rows_processed += len(rows)
        if rows:
            per_row = self._row_bytes.get(id(plan))
            if per_row is None:
                per_row = _estimate_row_bytes(rows[0])
                self._row_bytes[id(plan)] = per_row
            self.memory_bytes += len(rows) * per_row
            self._check_budget(entry.label)

    def tick(self, plan: Any, buffered_rows: int = 0) -> None:
        """A 256-row checkpoint inside an operator loop.

        Advances the rows-processed counter, pins the current operator,
        and — when a budget is set — projects the loop's growing buffer
        against it, so a runaway join dies mid-flight instead of after
        materializing its output.
        """
        entry = self._operators.get(id(plan))
        if entry is None:
            entry = self._entry(plan)
        self.current_operator = entry.label
        self.rows_processed += TICK_ROWS
        if self.memory_limit_bytes is not None and buffered_rows:
            per_row = self._row_bytes.get(id(plan), _DEFAULT_ROW_BYTES)
            projected = self.memory_bytes + buffered_rows * per_row
            if projected > self.memory_limit_bytes:
                self._exhausted(entry.label, projected)

    def account_bytes(self, plan: Any, nbytes: int) -> None:
        """Explicitly account auxiliary state (hash tables, sort keys)."""
        self.memory_bytes += nbytes
        self._check_budget(self._entry(plan).label)

    def _check_budget(self, label: str) -> None:
        if (
            self.memory_limit_bytes is not None
            and self.memory_bytes > self.memory_limit_bytes
        ):
            self._exhausted(label, self.memory_bytes)

    def _exhausted(self, label: str, observed: int) -> None:
        raise ResourceExhausted(
            f"query memory budget exhausted in {label}: "
            f"~{observed} bytes buffered, limit "
            f"{self.memory_limit_bytes} (query {self.query_id})"
        )

    # -- reader side (any thread) -----------------------------------------

    @property
    def elapsed_ms(self) -> float:
        return (time.perf_counter_ns() - self.started_ns) / 1e6

    def as_row(self) -> tuple:
        """The ``repro_running_queries`` row for this query."""
        return (
            self.query_id,
            self.session_id or None,
            self.sql or None,
            self.traceparent or None,
            self.started,
            round(self.elapsed_ms, 3),
            self.rows_processed,
            self.current_operator or None,
            self.memory_bytes,
            self.memory_limit_bytes,
        )

    def operator_rows(self) -> List[tuple]:
        """The ``repro_query_progress`` rows, plan-registration order."""
        return [
            entry.as_row(self.query_id)
            for entry in list(self._operators.values())
        ]

    def as_dict(self) -> dict:
        """JSON shape served by the HTTP sidecar's ``/queries``."""
        return {
            "query_id": self.query_id,
            "session_id": self.session_id or None,
            "sql": self.sql or None,
            "traceparent": self.traceparent or None,
            "started": self.started,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "rows_processed": self.rows_processed,
            "current_operator": self.current_operator or None,
            "memory_bytes": self.memory_bytes,
            "memory_limit_bytes": self.memory_limit_bytes,
        }


class QueryRegistry:
    """Directory of in-flight tracked queries on one Database.

    Registration and removal take a plain lock (statement granularity);
    everything read *through* the registry is lock-free ProgressState.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._queries: dict = {}
        self._seq = itertools.count(1)
        #: Lifetime count of tracked queries, exposed on /healthz.
        self.started_total = 0

    def start(
        self,
        *,
        sql: str = "",
        session_id: str = "",
        traceparent: str = "",
        memory_limit_bytes: Optional[int] = None,
    ) -> ProgressState:
        with self._lock:
            state = ProgressState(
                f"q{next(self._seq)}",
                sql=sql,
                session_id=session_id,
                traceparent=traceparent,
                memory_limit_bytes=memory_limit_bytes,
            )
            self._queries[state.query_id] = state
            self.started_total += 1
        return state

    def finish(self, state: ProgressState) -> None:
        state.finished = True
        with self._lock:
            self._queries.pop(state.query_id, None)

    def snapshot(self, exclude: str = "") -> List[ProgressState]:
        """The currently running queries, oldest first.

        ``exclude`` drops one query id — the caller's own, so a query
        over ``repro_running_queries`` never observes itself.
        """
        with self._lock:
            states = list(self._queries.values())
        return [s for s in states if s.query_id != exclude]

    def __len__(self) -> int:
        with self._lock:
            return len(self._queries)
