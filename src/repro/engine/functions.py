"""Scalar function registry.

Each function is registered with a runtime callable and a result-type rule.
All functions are NULL-propagating unless registered with ``null_safe=True``
(e.g. COALESCE needs to see NULL arguments).
"""

from __future__ import annotations

import datetime
import math
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.errors import BindError, ExecutionError
from repro.types import (
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    UNKNOWN,
    VARCHAR,
    DataType,
    common_type,
)

__all__ = ["ScalarFunction", "lookup_function", "FUNCTIONS"]


@dataclass(frozen=True)
class ScalarFunction:
    name: str
    fn: Callable[..., Any]
    result_type: Callable[[Sequence[DataType]], DataType]
    min_args: int
    max_args: Optional[int]
    null_safe: bool = False

    def check_arity(self, count: int) -> None:
        if count < self.min_args or (self.max_args is not None and count > self.max_args):
            if self.min_args == self.max_args:
                expected = str(self.min_args)
            elif self.max_args is None:
                expected = f"at least {self.min_args}"
            else:
                expected = f"{self.min_args}..{self.max_args}"
            raise BindError(
                f"{self.name} expects {expected} argument(s), got {count}"
            )


FUNCTIONS: dict[str, ScalarFunction] = {}


def _register(
    name: str,
    fn: Callable[..., Any],
    result_type,
    min_args: int,
    max_args: Optional[int] = None,
    null_safe: bool = False,
) -> None:
    if max_args is None:
        max_args = min_args
    if not callable(result_type):
        fixed = result_type
        result_type = lambda args: fixed  # noqa: E731 - tiny closure
    FUNCTIONS[name] = ScalarFunction(name, fn, result_type, min_args, max_args, null_safe)


def lookup_function(name: str) -> Optional[ScalarFunction]:
    return FUNCTIONS.get(name.upper())


# -- date/time -------------------------------------------------------------


def _need_date(value: Any, func: str) -> datetime.date:
    if not isinstance(value, datetime.date):
        raise ExecutionError(f"{func} expects a DATE, got {type(value).__name__}")
    return value


_register("YEAR", lambda d: _need_date(d, "YEAR").year, INTEGER, 1)
_register("MONTH", lambda d: _need_date(d, "MONTH").month, INTEGER, 1)
_register("DAY", lambda d: _need_date(d, "DAY").day, INTEGER, 1)
_register("QUARTER", lambda d: (_need_date(d, "QUARTER").month - 1) // 3 + 1, INTEGER, 1)
# ISO: Monday=1 .. Sunday=7
_register("DAYOFWEEK", lambda d: _need_date(d, "DAYOFWEEK").isoweekday(), INTEGER, 1)
_register("DAYOFYEAR", lambda d: _need_date(d, "DAYOFYEAR").timetuple().tm_yday, INTEGER, 1)
_register(
    "DATE_TRUNC_MONTH",
    lambda d: _need_date(d, "DATE_TRUNC_MONTH").replace(day=1),
    DATE,
    1,
)
_register(
    "DATE_TRUNC_YEAR",
    lambda d: _need_date(d, "DATE_TRUNC_YEAR").replace(month=1, day=1),
    DATE,
    1,
)
_register(
    "DATE_FROM_PARTS",
    lambda y, m, d: datetime.date(int(y), int(m), int(d)),
    DATE,
    3,
)
_register(
    "DATE_ADD",
    lambda d, days: _need_date(d, "DATE_ADD") + datetime.timedelta(days=int(days)),
    DATE,
    2,
)
_register(
    "DATE_DIFF",
    lambda a, b: (_need_date(a, "DATE_DIFF") - _need_date(b, "DATE_DIFF")).days,
    INTEGER,
    2,
)


# -- numeric -----------------------------------------------------------------


def _numeric_arg_type(args: Sequence[DataType]) -> DataType:
    result = INTEGER
    for arg in args:
        base = arg.unwrap()
        if base is DOUBLE:
            result = DOUBLE
        elif base not in (INTEGER, UNKNOWN):
            raise BindError(f"numeric function applied to {base}")
    return result


_register("ABS", abs, _numeric_arg_type, 1)
_register("FLOOR", lambda x: int(math.floor(x)), INTEGER, 1)
_register("CEIL", lambda x: int(math.ceil(x)), INTEGER, 1)
_register("CEILING", lambda x: int(math.ceil(x)), INTEGER, 1)
_register("SQRT", math.sqrt, DOUBLE, 1)
_register("EXP", math.exp, DOUBLE, 1)
_register("LN", math.log, DOUBLE, 1)
_register("LOG10", math.log10, DOUBLE, 1)
_register("POWER", lambda x, y: float(x) ** float(y), DOUBLE, 2)
_register("POW", lambda x, y: float(x) ** float(y), DOUBLE, 2)
_register("SIGN", lambda x: (x > 0) - (x < 0), INTEGER, 1)
_register(
    "MOD",
    lambda x, y: x % y if y != 0 else _raise_div_zero(),
    _numeric_arg_type,
    2,
)
_register(
    "ROUND",
    lambda x, digits=0: round(float(x), int(digits)),
    DOUBLE,
    1,
    2,
)
_register(
    "TRUNC",
    lambda x: int(x) if x >= 0 else -int(-x),
    INTEGER,
    1,
)
_register(
    "SAFE_DIVIDE",
    lambda x, y: None if y == 0 else x / y,
    DOUBLE,
    2,
)


def _raise_div_zero():
    raise ExecutionError("division by zero")


# -- strings -----------------------------------------------------------------


def _need_str(value: Any, func: str) -> str:
    if not isinstance(value, str):
        raise ExecutionError(f"{func} expects a string, got {type(value).__name__}")
    return value


_register("UPPER", lambda s: _need_str(s, "UPPER").upper(), VARCHAR, 1)
_register("LOWER", lambda s: _need_str(s, "LOWER").lower(), VARCHAR, 1)
_register("LENGTH", lambda s: len(_need_str(s, "LENGTH")), INTEGER, 1)
_register("CHAR_LENGTH", lambda s: len(_need_str(s, "CHAR_LENGTH")), INTEGER, 1)
_register("TRIM", lambda s: _need_str(s, "TRIM").strip(), VARCHAR, 1)
_register("LTRIM", lambda s: _need_str(s, "LTRIM").lstrip(), VARCHAR, 1)
_register("RTRIM", lambda s: _need_str(s, "RTRIM").rstrip(), VARCHAR, 1)
_register("REVERSE", lambda s: _need_str(s, "REVERSE")[::-1], VARCHAR, 1)
_register(
    "SUBSTRING",
    lambda s, start, length=None: _substring(s, start, length),
    VARCHAR,
    2,
    3,
)
_register(
    "SUBSTR",
    lambda s, start, length=None: _substring(s, start, length),
    VARCHAR,
    2,
    3,
)
_register(
    "REPLACE",
    lambda s, old, new: _need_str(s, "REPLACE").replace(old, new),
    VARCHAR,
    3,
)
_register(
    "CONCAT",
    lambda *parts: "".join(str(p) for p in parts),
    VARCHAR,
    1,
    99,
)
_register(
    "STRPOS",
    lambda s, sub: _need_str(s, "STRPOS").find(sub) + 1,
    INTEGER,
    2,
)
_register(
    "LEFT",
    lambda s, n: _need_str(s, "LEFT")[: max(int(n), 0)],
    VARCHAR,
    2,
)
_register(
    "RIGHT",
    lambda s, n: _need_str(s, "RIGHT")[-int(n):] if int(n) > 0 else "",
    VARCHAR,
    2,
)
_register(
    "STARTS_WITH",
    lambda s, prefix: _need_str(s, "STARTS_WITH").startswith(prefix),
    BOOLEAN,
    2,
)
_register(
    "ENDS_WITH",
    lambda s, suffix: _need_str(s, "ENDS_WITH").endswith(suffix),
    BOOLEAN,
    2,
)


def _substring(s: Any, start: Any, length: Any) -> str:
    text = _need_str(s, "SUBSTRING")
    begin = max(int(start) - 1, 0)
    if length is None:
        return text[begin:]
    if length < 0:
        raise ExecutionError("SUBSTRING length must be non-negative")
    return text[begin : begin + int(length)]


# -- conditional (null-safe) ---------------------------------------------------


def _coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _common_of_args(args: Sequence[DataType]) -> DataType:
    result: DataType = UNKNOWN
    for arg in args:
        result = common_type(result, arg)
    return result


_register("COALESCE", _coalesce, _common_of_args, 1, 99, null_safe=True)
_register(
    "IFNULL",
    lambda x, default: default if x is None else x,
    _common_of_args,
    2,
    null_safe=True,
)
_register(
    "NULLIF",
    lambda x, y: None if x is not None and y is not None and x == y else x,
    lambda args: args[0],
    2,
    null_safe=True,
)
_register(
    "IF",
    lambda cond, then, otherwise: then if cond is True else otherwise,
    lambda args: common_type(args[1], args[2]),
    3,
    null_safe=True,
)
_register(
    "GREATEST",
    lambda *args: None if any(a is None for a in args) else max(args),
    _common_of_args,
    1,
    99,
    null_safe=True,
)
_register(
    "LEAST",
    lambda *args: None if any(a is None for a in args) else min(args),
    _common_of_args,
    1,
    99,
    null_safe=True,
)
