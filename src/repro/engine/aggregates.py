"""Aggregate function implementations.

Aggregates are accumulator classes driven by the executor: ``add(value)`` per
input row (after FILTER and DISTINCT handling), ``result()`` at group end.
``COUNT`` of an empty group is 0; every other aggregate returns NULL, per the
SQL standard.  These same accumulators evaluate measure formulas over
context-filtered source rows (:mod:`repro.core.evaluator`).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional, Sequence

from repro.errors import BindError, ExecutionError
from repro.types import (
    DOUBLE,
    INTEGER,
    UNKNOWN,
    VARCHAR,
    DataType,
    SortKey,
    common_type,
)

__all__ = [
    "Accumulator",
    "make_accumulator",
    "aggregate_result_type",
    "is_aggregate_function",
    "AGGREGATE_NAMES",
]


class Accumulator:
    """Base accumulator; subclasses override :meth:`add` and :meth:`result`."""

    def add(self, value: Any) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def result(self) -> Any:  # pragma: no cover - interface
        raise NotImplementedError


class _Count(Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self.count += 1

    def result(self) -> int:
        return self.count


class _CountStar(Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        self.count += 1

    def result(self) -> int:
        return self.count


class _Sum(Accumulator):
    def __init__(self) -> None:
        self.total: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExecutionError(f"SUM over non-numeric value {value!r}")
        self.total = value if self.total is None else self.total + value

    def result(self) -> Any:
        return self.total


class _Avg(Accumulator):
    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExecutionError(f"AVG over non-numeric value {value!r}")
        self.total += value
        self.count += 1

    def result(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count


class _MinMax(Accumulator):
    def __init__(self, is_min: bool) -> None:
        self.is_min = is_min
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None:
            self.best = value
            return
        if self.is_min:
            if SortKey(value) < SortKey(self.best):
                self.best = value
        elif SortKey(self.best) < SortKey(value):
            self.best = value

    def result(self) -> Any:
        return self.best


class _Welford(Accumulator):
    """Single-pass mean/variance (Welford's algorithm)."""

    def __init__(self, kind: str) -> None:
        self.kind = kind  # VAR_SAMP, VAR_POP, STDDEV_SAMP, STDDEV_POP
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, value: Any) -> None:
        if value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExecutionError(f"{self.kind} over non-numeric value {value!r}")
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def result(self) -> Optional[float]:
        if self.kind in ("VAR_SAMP", "STDDEV_SAMP"):
            if self.count < 2:
                return None
            variance = self.m2 / (self.count - 1)
        else:
            if self.count == 0:
                return None
            variance = self.m2 / self.count
        if self.kind.startswith("STDDEV"):
            return math.sqrt(variance)
        return variance


class _BoolCombine(Accumulator):
    def __init__(self, op: str) -> None:
        self.op = op  # AND / OR
        self.value: Any = None
        self.seen = False

    def add(self, value: Any) -> None:
        if value is None:
            return
        if not self.seen:
            self.value = bool(value)
            self.seen = True
        elif self.op == "AND":
            self.value = self.value and bool(value)
        else:
            self.value = self.value or bool(value)

    def result(self) -> Any:
        return self.value if self.seen else None


class _AnyValue(Accumulator):
    def __init__(self) -> None:
        self.value: Any = None
        self.seen = False

    def add(self, value: Any) -> None:
        if not self.seen and value is not None:
            self.value = value
            self.seen = True

    def result(self) -> Any:
        return self.value


class _Collect(Accumulator):
    """Shared machinery for aggregates that buffer their input."""

    def __init__(self) -> None:
        self.values: list[Any] = []

    def add(self, value: Any) -> None:
        if value is not None:
            self.values.append(value)


class _ArrayAgg(_Collect):
    def result(self) -> Optional[list]:
        return self.values or None


class _StringAgg(Accumulator):
    def __init__(self, separator: str = ",") -> None:
        self.separator = separator
        self.parts: list[str] = []

    def add(self, value: Any) -> None:
        if value is not None:
            self.parts.append(str(value))

    def result(self) -> Optional[str]:
        if not self.parts:
            return None
        return self.separator.join(self.parts)


class _FirstLast(Accumulator):
    """FIRST_VALUE / LAST_VALUE as aggregates (used for semi-additive
    measures, e.g. inventory-on-hand rolled up with LAST_VALUE over time)."""

    def __init__(self, is_last: bool) -> None:
        self.is_last = is_last
        self.value: Any = None
        self.seen = False

    def add(self, value: Any) -> None:
        if self.is_last:
            self.value = value
            self.seen = True
        elif not self.seen:
            self.value = value
            self.seen = True

    def result(self) -> Any:
        return self.value


class _Median(_Collect):
    def result(self) -> Optional[float]:
        if not self.values:
            return None
        ordered = sorted(self.values)
        mid = len(ordered) // 2
        if len(ordered) % 2 == 1:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2


class _CountIf(Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        if value is True:
            self.count += 1

    def result(self) -> int:
        return self.count


_FACTORIES: dict[str, Callable[[], Accumulator]] = {
    "COUNT": _Count,
    "SUM": _Sum,
    "AVG": _Avg,
    "MIN": lambda: _MinMax(True),
    "MAX": lambda: _MinMax(False),
    "STDDEV": lambda: _Welford("STDDEV_SAMP"),
    "STDDEV_SAMP": lambda: _Welford("STDDEV_SAMP"),
    "STDDEV_POP": lambda: _Welford("STDDEV_POP"),
    "VARIANCE": lambda: _Welford("VAR_SAMP"),
    "VAR_SAMP": lambda: _Welford("VAR_SAMP"),
    "VAR_POP": lambda: _Welford("VAR_POP"),
    "BOOL_AND": lambda: _BoolCombine("AND"),
    "BOOL_OR": lambda: _BoolCombine("OR"),
    "ANY_VALUE": _AnyValue,
    "ARRAY_AGG": _ArrayAgg,
    "STRING_AGG": _StringAgg,
    "FIRST_VALUE": lambda: _FirstLast(False),
    "LAST_VALUE": lambda: _FirstLast(True),
    "MEDIAN": _Median,
    "COUNTIF": _CountIf,
}

AGGREGATE_NAMES = frozenset(_FACTORIES)


def is_aggregate_function(name: str) -> bool:
    return name.upper() in _FACTORIES


def make_accumulator(func: str, star: bool = False) -> Accumulator:
    """Create a fresh accumulator for one group."""
    name = func.upper()
    if name == "COUNT" and star:
        return _CountStar()
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise ExecutionError(f"unknown aggregate function {name}") from None


def aggregate_result_type(func: str, arg_types: Sequence[DataType]) -> DataType:
    """Static result type of an aggregate call."""
    name = func.upper()
    if name in ("COUNT", "COUNTIF"):
        return INTEGER
    if name in (
        "AVG",
        "STDDEV",
        "STDDEV_SAMP",
        "STDDEV_POP",
        "VARIANCE",
        "VAR_SAMP",
        "VAR_POP",
        "MEDIAN",
    ):
        return DOUBLE
    if name == "STRING_AGG":
        return VARCHAR
    if name == "SUM":
        if not arg_types:
            return UNKNOWN
        base = arg_types[0].unwrap()
        return base if base in (INTEGER, DOUBLE) else UNKNOWN
    if name in ("MIN", "MAX", "ANY_VALUE", "FIRST_VALUE", "LAST_VALUE"):
        return arg_types[0].unwrap() if arg_types else UNKNOWN
    if name in ("BOOL_AND", "BOOL_OR"):
        from repro.types import BOOLEAN

        return BOOLEAN
    if name == "ARRAY_AGG":
        return UNKNOWN
    raise BindError(f"unknown aggregate function {name}")
