"""A lightweight nesting span tracer.

A :class:`Span` records one timed region — a query phase, one plan-operator
execution, or one measure-context evaluation.  Spans form a tree: the
:class:`Tracer` keeps an explicit stack, so ``begin``/``end`` pairs nest
without any thread-local or context-variable machinery.  The explicit pair
(rather than a context manager) keeps the instrumented hot path free of
generator overhead; callers that prefer ``with`` can use :meth:`Tracer.span`.

Spans are bounded: once ``max_spans`` children have been allocated the
tracer stops recording new ones (counters and operator metrics keep
accumulating elsewhere), so a correlated subquery re-executed once per outer
row cannot make a trace arbitrarily large.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional

__all__ = ["Span", "Tracer"]


class Span:
    """One timed region of a query's lifetime.

    ``kind`` classifies the span: ``"query"`` (the root), ``"phase"``
    (parse/bind/optimize/execute), ``"operator"`` (one plan-operator
    execution), ``"measure"`` (one measure-context evaluation), or
    ``"expand"`` (one rewrite-strategy attempt).  ``meta`` holds small
    JSON-safe annotations (row counts, cache verdicts, strategy names).
    """

    __slots__ = ("name", "kind", "start_ns", "end_ns", "children", "meta")

    def __init__(self, name: str, kind: str = "phase"):
        self.name = name
        self.kind = kind
        self.start_ns: int = 0
        self.end_ns: int = 0
        self.children: list["Span"] = []
        self.meta: dict[str, Any] = {}

    @property
    def duration_ms(self) -> float:
        """Wall time in milliseconds (0.0 while the span is still open)."""
        if self.end_ns <= self.start_ns:
            return 0.0
        return (self.end_ns - self.start_ns) / 1e6

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in pre-order, or None."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> dict:
        """Stable serialization: keys are fixed, children are in start
        order, durations are milliseconds rounded to 3 decimals."""
        entry: dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "duration_ms": round(self.duration_ms, 3),
        }
        if self.meta:
            entry["meta"] = {k: self.meta[k] for k in sorted(self.meta)}
        if self.children:
            entry["children"] = [c.to_dict() for c in self.children]
        return entry

    def tree_lines(self, indent: int = 0, *, timing: bool = True) -> list[str]:
        """Render the span tree, one line per span."""
        label = f"{'  ' * indent}{self.name}"
        if timing:
            label += f" [{self.duration_ms:.3f} ms]"
        if self.meta:
            pairs = " ".join(f"{k}={self.meta[k]}" for k in sorted(self.meta))
            label += f" ({pairs})"
        lines = [label]
        for child in self.children:
            lines.extend(child.tree_lines(indent + 1, timing=timing))
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, {self.kind}, {self.duration_ms:.3f}ms)"


class Tracer:
    """Collects a tree of spans for one query execution."""

    __slots__ = ("root", "_stack", "_clock", "_spans", "max_spans", "dropped")

    def __init__(self, *, max_spans: int = 20_000, clock=time.perf_counter_ns):
        self._clock = clock
        self.max_spans = max_spans
        self._spans = 0
        #: Spans that could not be recorded because the budget ran out.
        self.dropped = 0
        self.root = Span("query", "query")
        self.root.start_ns = clock()
        self._stack: list[Span] = [self.root]

    @property
    def current(self) -> Span:
        return self._stack[-1]

    def begin(self, name: str, kind: str = "phase") -> Optional[Span]:
        """Open a child span of the current span.

        Returns None when the span budget is exhausted; :meth:`end` accepts
        None so call sites stay unconditional.
        """
        if self._spans >= self.max_spans:
            self.dropped += 1
            return None
        self._spans += 1
        span = Span(name, kind)
        span.start_ns = self._clock()
        self._stack[-1].children.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Optional[Span]) -> None:
        """Close ``span``; no-op for None (a dropped begin)."""
        if span is None:
            return
        span.end_ns = self._clock()
        # Pop back to the span's parent even if callers leaked inner spans
        # (an exception unwound past their end() calls).
        while self._stack and self._stack[-1] is not span:
            dangling = self._stack.pop()
            if dangling.end_ns == 0:
                dangling.end_ns = span.end_ns
        if self._stack:
            self._stack.pop()
        if not self._stack:  # never pop the root's slot entirely
            self._stack.append(self.root)

    @contextmanager
    def span(self, name: str, kind: str = "phase"):
        """``with tracer.span("bind"):`` convenience wrapper."""
        span = self.begin(name, kind)
        try:
            yield span
        finally:
            self.end(span)

    def finish(self) -> Span:
        """Close every open span (including the root) and return the root."""
        now = self._clock()
        while len(self._stack) > 1:
            open_span = self._stack.pop()
            if open_span.end_ns == 0:
                open_span.end_ns = now
        if self.root.end_ns == 0:
            self.root.end_ns = now
        return self.root
