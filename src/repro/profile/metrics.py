"""Per-operator runtime metrics.

One :class:`OperatorMetrics` accumulates over every execution of one logical
plan node within a single query (a node re-entered per outer row — a
correlated subquery plan — accumulates across calls; ``calls`` says how
often).  The profiler keys metrics by plan-node identity and freezes them
into the operator tree of a :class:`~repro.profile.profiler.QueryProfile`.

``rows_in`` is *measured*, not derived: when a child operator finishes, the
profiler adds the child's observed output cardinality to the enclosing
operator's ``rows_in`` — but only if the child is a direct plan input of
that operator, so subqueries executed from inside an expression do not
pollute their host operator's input count.  The cardinality-consistency
property tests (reported ``rows_out`` of the root == observed result rows;
child ``rows_out`` == parent ``rows_in``) lean on this being an observation
rather than a definition.
"""

from __future__ import annotations

from typing import Any

__all__ = ["OperatorMetrics"]


class OperatorMetrics:
    """Accumulated counters for one plan operator."""

    __slots__ = ("label", "calls", "rows_in", "rows_out", "batches", "time_ns", "counters")

    def __init__(self, label: str):
        self.label = label
        #: Number of times the operator was executed (re-entrant plans >1).
        self.calls = 0
        #: Rows received from direct plan inputs, summed over calls.
        self.rows_in = 0
        #: Rows produced, summed over calls.
        self.rows_out = 0
        #: Materialized row batches produced (one per call in this
        #: operator-at-a-time engine; kept explicit so a future vectorized
        #: executor reports real batch counts through the same field).
        self.batches = 0
        #: Wall time spent inside the operator, children included.
        self.time_ns = 0
        #: Operator-specific counters (hash_probes, comparisons, groups...).
        self.counters: dict[str, int] = {}

    @property
    def time_ms(self) -> float:
        return self.time_ns / 1e6

    def count(self, key: str, amount: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount

    def to_dict(self) -> dict[str, Any]:
        entry: dict[str, Any] = {
            "label": self.label,
            "calls": self.calls,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "batches": self.batches,
            "time_ms": round(self.time_ms, 3),
        }
        if self.counters:
            entry["counters"] = {k: self.counters[k] for k in sorted(self.counters)}
        return entry

    def describe(self, *, timing: bool = True) -> str:
        """The ``(rows=... )`` annotation EXPLAIN ANALYZE appends."""
        parts = [f"rows={self.rows_out}", f"calls={self.calls}"]
        if self.rows_in:
            parts.append(f"rows_in={self.rows_in}")
        if timing:
            parts.append(f"time={self.time_ms:.3f}ms")
        for key in sorted(self.counters):
            parts.append(f"{key}={self.counters[key]}")
        return "(" + " ".join(parts) + ")"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"OperatorMetrics({self.label!r}, {self.describe()})"
