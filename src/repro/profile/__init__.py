"""Runtime observability: tracing spans, operator metrics, query profiles.

The subsystem has three layers:

* :mod:`repro.profile.tracer` — a lightweight span tracer.  A
  :class:`~repro.profile.tracer.Span` covers one phase (parse, bind,
  optimize, execute), one plan-operator execution, or one measure-context
  evaluation; spans nest, so a finished trace is a tree.
* :mod:`repro.profile.metrics` — per-operator accumulators
  (:class:`~repro.profile.metrics.OperatorMetrics`): rows in/out, call
  counts, wall time, and operator-specific counters such as hash probes.
* :mod:`repro.profile.profiler` — :class:`~repro.profile.profiler.Profiler`
  collects both while a query runs and freezes into a
  :class:`~repro.profile.profiler.QueryProfile`, the stable, serializable
  artifact behind ``EXPLAIN ANALYZE``, ``Database(profile=True)`` /
  ``Database.last_profile()``, the shell's ``\\profile`` command, and the
  ``BENCH_*.json`` snapshots.

Instrumentation is zero-cost when off: the engine consults a single
``ctx.profiler is None`` guard per operator execution and takes no
timestamps, allocates no spans, and touches no dictionaries unless a
profiler is attached.
"""

from repro.profile.metrics import OperatorMetrics
from repro.profile.profiler import Profiler, QueryProfile
from repro.profile.tracer import Span, Tracer

__all__ = ["Span", "Tracer", "OperatorMetrics", "Profiler", "QueryProfile"]
