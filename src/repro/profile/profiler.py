"""The live collector (:class:`Profiler`) and its frozen result
(:class:`QueryProfile`).

A :class:`Profiler` rides on the
:class:`~repro.engine.evaluator.ExecutionContext` of one query execution.
The executor calls :meth:`Profiler.enter_operator` / ``exit_operator``
around every plan-operator execution; operator bodies add specific counters
through :meth:`Profiler.operator_count`; the measure evaluator brackets each
measure-context evaluation with :meth:`enter_measure` / ``exit_measure``;
phase timing (parse, rewrite, bind, optimize, execute) goes through the
embedded :class:`~repro.profile.tracer.Tracer`.

When the query finishes, :meth:`Profiler.finish` freezes everything into a
:class:`QueryProfile` — plain data, safe to keep after the plan and the
execution context are gone, with a stable ``to_dict()``/``to_json()``
serialization (the schema ``BENCH_*.json`` snapshots embed).
"""

from __future__ import annotations

import json
import time
from typing import Any, Optional

from repro.profile.metrics import OperatorMetrics
from repro.profile.tracer import Span, Tracer

__all__ = ["Profiler", "QueryProfile"]

#: ExecutionContext counters copied into every profile, in report order.
_CTX_COUNTERS = (
    "rows_scanned",
    "subquery_executions",
    "subquery_cache_hits",
    "measure_evaluations",
    "measure_cache_hits",
    "hash_joins",
    "nested_loop_joins",
)


class Profiler:
    """Collects spans, operator metrics, and counters for one query."""

    __slots__ = (
        "tracer",
        "operators",
        "measures",
        "counters",
        "_plans",
        "_op_stack",
        "_clock",
    )

    def __init__(self, *, max_spans: int = 20_000, clock=time.perf_counter_ns):
        self.tracer = Tracer(max_spans=max_spans, clock=clock)
        #: id(plan node) -> OperatorMetrics.
        self.operators: dict[int, OperatorMetrics] = {}
        #: measure name -> {"evaluations", "cache_hits", "time_ns"}.
        self.measures: dict[str, dict[str, int]] = {}
        #: Engine-wide counters outside any one operator (window partitions,
        #: aggregate invocations, context terms by kind, ...).
        self.counters: dict[str, int] = {}
        #: Pins plan nodes keyed by id() for the profiler's lifetime, so a
        #: recycled id can never alias two operators' metrics.
        self._plans: dict[int, Any] = {}
        self._op_stack: list[tuple[Any, OperatorMetrics]] = []
        self._clock = clock

    # -- phases --------------------------------------------------------------

    def phase(self, name: str):
        """``with profiler.phase("bind"):`` — one top-level phase span."""
        return self.tracer.span(name, "phase")

    # -- operators -----------------------------------------------------------

    def enter_operator(self, plan) -> tuple:
        """Called by the executor before running ``plan``; returns a token
        for the matching :meth:`exit_operator` / :meth:`abort_operator`."""
        key = id(plan)
        metrics = self.operators.get(key)
        if metrics is None:
            metrics = OperatorMetrics(plan.label())
            self.operators[key] = metrics
            self._plans[key] = plan
        span = self.tracer.begin(plan.label(), "operator")
        self._op_stack.append((plan, metrics))
        return (plan, metrics, span, self._clock())

    def exit_operator(self, token: tuple, rows_out: int) -> None:
        plan, metrics, span, start_ns = token
        metrics.calls += 1
        metrics.rows_out += rows_out
        metrics.batches += 1
        metrics.time_ns += self._clock() - start_ns
        self._op_stack.pop()
        if self._op_stack:
            parent_plan, parent_metrics = self._op_stack[-1]
            # Only direct plan inputs feed a parent's rows_in; a subquery
            # plan executed from inside an expression does not.
            if any(child is plan for child in parent_plan.inputs()):
                parent_metrics.rows_in += rows_out
        if span is not None:
            span.meta["rows"] = rows_out
            self.tracer.end(span)

    def abort_operator(self, token: tuple) -> None:
        """Unwind bookkeeping when an operator raises."""
        plan, metrics, span, start_ns = token
        metrics.calls += 1
        metrics.time_ns += self._clock() - start_ns
        metrics.count("errors")
        self._op_stack.pop()
        if span is not None:
            span.meta["error"] = True
            self.tracer.end(span)

    def operator_count(self, plan, key: str, amount: int = 1) -> None:
        """Add an operator-specific counter (hash_probes, groups, ...)."""
        metrics = self.operators.get(id(plan))
        if metrics is None:
            metrics = OperatorMetrics(plan.label())
            self.operators[id(plan)] = metrics
            self._plans[id(plan)] = plan
        metrics.count(key, amount)

    # -- measures ------------------------------------------------------------

    def enter_measure(self, name: str) -> tuple:
        span = self.tracer.begin(f"measure:{name}", "measure")
        return (name, span, self._clock())

    def exit_measure(self, token: tuple, *, cache_hit: bool) -> None:
        name, span, start_ns = token
        entry = self.measures.get(name)
        if entry is None:
            entry = {"evaluations": 0, "cache_hits": 0, "time_ns": 0}
            self.measures[name] = entry
        entry["evaluations"] += 1
        if cache_hit:
            entry["cache_hits"] += 1
        entry["time_ns"] += self._clock() - start_ns
        if span is not None:
            span.meta["cache"] = "hit" if cache_hit else "miss"
            self.tracer.end(span)

    # -- global counters -----------------------------------------------------

    def bump(self, key: str, amount: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount

    # -- freezing ------------------------------------------------------------

    def finish(
        self,
        plan=None,
        ctx=None,
        result_rows: Optional[int] = None,
        sql: Optional[str] = None,
    ) -> "QueryProfile":
        """Close all spans and freeze into a :class:`QueryProfile`."""
        root = self.tracer.finish()
        operator_tree = self._freeze_tree(plan) if plan is not None else None
        counters = dict(self.counters)
        if ctx is not None:
            for name in _CTX_COUNTERS:
                counters[name] = getattr(ctx, name)
        spans_dropped = self.tracer.dropped
        if spans_dropped:
            counters["spans_dropped"] = spans_dropped
        measures = {
            name: {
                "evaluations": entry["evaluations"],
                "cache_hits": entry["cache_hits"],
                "time_ms": round(entry["time_ns"] / 1e6, 3),
            }
            for name, entry in sorted(self.measures.items())
        }
        return QueryProfile(
            sql=sql,
            root_span=root,
            operator_tree=operator_tree,
            counters=counters,
            measures=measures,
            result_rows=result_rows,
            spans_dropped=spans_dropped,
        )

    def _freeze_tree(self, plan) -> dict:
        metrics = self.operators.get(id(plan))
        if metrics is None:  # operator never executed (planned but skipped)
            metrics = OperatorMetrics(plan.label())
        node = metrics.to_dict()
        facts = getattr(plan, "facts", None)
        if facts is not None:
            # Static dataflow annotations (repro.analysis.dataflow), frozen
            # next to the observed metrics so a profile carries both the
            # predicted bounds and what actually happened.
            from repro.analysis.dataflow import facts_summary

            node["facts"] = facts_summary(facts)
        children = [self._freeze_tree(child) for child in plan.inputs()]
        if children:
            node["children"] = children
        return node


class QueryProfile:
    """Frozen, serializable profile of one query execution."""

    __slots__ = (
        "sql",
        "root_span",
        "operator_tree",
        "counters",
        "measures",
        "result_rows",
        "spans_dropped",
    )

    #: Bumped whenever the serialized layout changes incompatibly.
    SCHEMA_VERSION = 1

    def __init__(
        self,
        *,
        sql: Optional[str],
        root_span: Span,
        operator_tree: Optional[dict],
        counters: dict[str, int],
        measures: dict[str, dict],
        result_rows: Optional[int],
        spans_dropped: int = 0,
    ):
        self.sql = sql
        self.root_span = root_span
        self.operator_tree = operator_tree
        self.counters = counters
        self.measures = measures
        self.result_rows = result_rows
        self.spans_dropped = spans_dropped

    @property
    def total_ms(self) -> float:
        return self.root_span.duration_ms

    def phase_ms(self, name: str) -> Optional[float]:
        """Duration of a named phase span (parse, bind, ...) or None."""
        span = self.root_span.find(name)
        return None if span is None else span.duration_ms

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """Stable dict layout; what :meth:`to_json` and the bench
        snapshots persist."""
        return {
            "schema_version": self.SCHEMA_VERSION,
            "sql": self.sql,
            "total_ms": round(self.total_ms, 3),
            "result_rows": self.result_rows,
            "spans_dropped": self.spans_dropped,
            "phases": self.root_span.to_dict(),
            "plan": self.operator_tree,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "measures": self.measures,
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    # -- rendering -----------------------------------------------------------

    def plan_lines(self, *, timing: bool = True) -> list[str]:
        """The annotated operator tree, one line per operator."""
        if self.operator_tree is None:
            return []
        return self._render_node(self.operator_tree, 0, timing)

    def _render_node(self, node: dict, indent: int, timing: bool) -> list[str]:
        parts = [f"rows={node['rows_out']}", f"calls={node['calls']}"]
        if node["rows_in"]:
            parts.append(f"rows_in={node['rows_in']}")
        if timing:
            parts.append(f"time={node['time_ms']:.3f}ms")
        for key, value in sorted(node.get("counters", {}).items()):
            parts.append(f"{key}={value}")
        line = f"{'  ' * indent}{node['label']} ({' '.join(parts)})"
        lines = [line]
        for child in node.get("children", ()):
            lines.extend(self._render_node(child, indent + 1, timing))
        return lines

    def summary_lines(self, *, timing: bool = True) -> list[str]:
        """Phase and counter footer lines (EXPLAIN ANALYZE's tail)."""
        lines = []
        phases = [
            child for child in self.root_span.children if child.kind == "phase"
        ]
        if phases and timing:
            rendered = " ".join(
                f"{span.name}={span.duration_ms:.3f}ms" for span in phases
            )
            lines.append(f"phases: {rendered} total={self.total_ms:.3f}ms")
        elif phases:
            lines.append("phases: " + " ".join(span.name for span in phases))
        if self.counters:
            rendered = " ".join(
                f"{key}={self.counters[key]}" for key in sorted(self.counters)
            )
            lines.append(f"counters: {rendered}")
        for name, entry in self.measures.items():
            lines.append(
                f"measure {name}: evaluations={entry['evaluations']} "
                f"cache_hits={entry['cache_hits']}"
                + (f" time={entry['time_ms']:.3f}ms" if timing else "")
            )
        if self.spans_dropped:
            lines.append(
                f"warning: trace truncated, {self.spans_dropped} spans "
                "dropped (span budget exhausted)"
            )
        return lines

    def span_lines(self, *, timing: bool = True) -> list[str]:
        """The raw span tree (the tracer view; ``\\profile`` shows it)."""
        return self.root_span.tree_lines(timing=timing)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QueryProfile(rows={self.result_rows}, total={self.total_ms:.3f}ms,"
            f" operators={len(self.plan_lines())})"
        )
