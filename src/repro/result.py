"""Query results: rows, column metadata, and pretty-printing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.types import DataType, format_value

__all__ = ["ResultColumn", "Result"]


@dataclass(frozen=True)
class ResultColumn:
    name: str
    dtype: DataType


@dataclass
class Result:
    """The outcome of one statement.

    For queries, ``rows`` holds tuples in ``columns`` order.  For DDL/DML,
    ``rows`` is empty and ``rowcount``/``message`` describe the effect.
    """

    columns: list[ResultColumn] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    rowcount: int = 0
    message: str = ""

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list[Any]:
        """All values of the named column."""
        lowered = name.lower()
        for index, col in enumerate(self.columns):
            if col.name.lower() == lowered:
                return [row[index] for row in self.rows]
        raise KeyError(name)

    def to_dicts(self) -> list[dict[str, Any]]:
        names = self.column_names
        return [dict(zip(names, row)) for row in self.rows]

    def pretty(self, max_rows: Optional[int] = None) -> str:
        """Format as an aligned text table (the paper's listing style)."""
        if not self.columns:
            return self.message or f"OK ({self.rowcount} rows affected)"
        rows = self.rows if max_rows is None else self.rows[:max_rows]
        headers = self.column_names
        cells = [[format_value(v) for v in row] for row in rows]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
            "  ".join("=" * w for w in widths),
        ]
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.pretty()
