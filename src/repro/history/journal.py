"""The workload journal: a versioned, append-only JSON-lines record.

Line 1 is a header — ``{"schema": "repro-journal-v1", "created": ...,
"bootstrap": ...}`` — and every following line is one executed statement.
``bootstrap`` names the deterministic preload replay must apply before
re-executing (``"paper"`` = the paper's Customers/Orders tables,
``"listings"`` = those tables plus the SETUP views, ``null`` = an empty
database); everything else a replay needs travels *in* the journal as
recorded DDL/DML.

Entries are canonical bytes (:func:`repro.server.protocol.dumps_line`:
sorted keys, compact separators), so recording the same workload twice
produces identical journals.  Result rows are not stored — only a
SHA-256 digest of the canonically encoded result — which keeps journals
small while still letting ``--diff`` compare replays byte-for-byte.

Bind parameters *are* stored, with a typed encoding (dates, timestamps,
and decimals are tagged objects) so replay reconstructs the exact Python
values the original execution saw.

The writer is thread-safe: the query server's sessions append from
concurrent worker threads, and each entry is one atomic
``write()``+``flush()`` under the writer lock.
"""

from __future__ import annotations

import datetime
import decimal
import hashlib
import json
import threading
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.errors import QueryCancelled
from repro.server.protocol import dumps_line, encode_result, error_payload

__all__ = [
    "JOURNAL_SCHEMA",
    "JournalEntry",
    "JournalWriter",
    "encode_params",
    "decode_params",
    "read_journal",
    "result_digest",
]

JOURNAL_SCHEMA = "repro-journal-v1"


def _utc_now() -> str:
    return datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="microseconds"
    )


def result_digest(result: Any) -> str:
    """SHA-256 over the canonical wire encoding of a Result.

    The exact bytes the server would send for this result — columns,
    rows, rowcount, message — so two executions digest equal iff a
    client could not tell them apart.
    """
    return hashlib.sha256(dumps_line(encode_result(result))).hexdigest()


def encode_params(params: Sequence[Any]) -> List[Any]:
    """JSON-safe, type-tagged encoding of bind parameters."""
    encoded: List[Any] = []
    for value in params:
        if isinstance(value, datetime.datetime):
            encoded.append({"$t": "timestamp", "v": value.isoformat(sep=" ")})
        elif isinstance(value, datetime.date):
            encoded.append({"$t": "date", "v": value.isoformat()})
        elif isinstance(value, decimal.Decimal):
            encoded.append({"$t": "decimal", "v": str(value)})
        else:
            encoded.append(value)
    return encoded


def decode_params(params: Iterable[Any]) -> Tuple[Any, ...]:
    """Invert :func:`encode_params` back to Python values."""
    decoded: List[Any] = []
    for value in params:
        if isinstance(value, dict) and "$t" in value:
            tag, raw = value["$t"], value["v"]
            if tag == "timestamp":
                decoded.append(
                    datetime.datetime.fromisoformat(raw.replace(" ", "T"))
                )
            elif tag == "date":
                decoded.append(datetime.date.fromisoformat(raw))
            elif tag == "decimal":
                decoded.append(decimal.Decimal(raw))
            else:
                raise ValueError(f"unknown parameter tag {tag!r}")
        else:
            decoded.append(value)
    return tuple(decoded)


@dataclass(frozen=True)
class JournalEntry:
    """One recorded statement execution."""

    seq: int
    ts: str
    session: Optional[str]
    traceparent: Optional[str]
    sql: Optional[str]
    params: Tuple[Any, ...]
    fingerprint: Optional[str]
    strategy: Optional[str]
    kind: Optional[str]
    outcome: str  # "ok" | "error" | "cancelled"
    error: Optional[dict]
    wall_ms: float
    rows: Optional[int]
    digest: Optional[str]

    @classmethod
    def from_json(cls, obj: dict) -> "JournalEntry":
        return cls(
            seq=obj["seq"],
            ts=obj["ts"],
            session=obj.get("session"),
            traceparent=obj.get("traceparent"),
            sql=obj.get("sql"),
            params=decode_params(obj.get("params", [])),
            fingerprint=obj.get("fingerprint"),
            strategy=obj.get("strategy"),
            kind=obj.get("kind"),
            outcome=obj["outcome"],
            error=obj.get("error"),
            wall_ms=obj.get("wall_ms", 0.0),
            rows=obj.get("rows"),
            digest=obj.get("digest"),
        )


class JournalWriter:
    """Appends executed statements to a journal file.

    Created fresh per recording run (the file is truncated and the
    header rewritten): a journal describes one workload against one
    starting state, which is what makes its replay deterministic.
    """

    def __init__(self, path: str, *, bootstrap: Optional[str] = None):
        self.path = str(path)
        self.bootstrap = bootstrap
        self._lock = threading.Lock()
        self._seq = 0
        self._fh = open(self.path, "w", encoding="utf-8")
        self._write(
            {
                "schema": JOURNAL_SCHEMA,
                "created": _utc_now(),
                "bootstrap": bootstrap,
            }
        )

    def _write(self, obj: dict) -> None:
        self._fh.write(dumps_line(obj).decode("utf-8"))
        self._fh.flush()

    def record(
        self,
        *,
        sql: Optional[str],
        params: Sequence[Any] = (),
        fingerprint: Optional[str] = None,
        strategy: Optional[str] = None,
        kind: Optional[str] = None,
        wall_ms: float = 0.0,
        result: Any = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Append one executed statement (or its failure) to the journal."""
        from repro.telemetry import current_session, current_traceparent

        if error is None:
            outcome = "ok"
            error_obj = None
        elif isinstance(error, QueryCancelled):
            outcome = "cancelled"
            error_obj = error_payload(error)
        else:
            outcome = "error"
            error_obj = error_payload(error)
        entry = {
            "ts": _utc_now(),
            "session": current_session.get(),
            "traceparent": current_traceparent.get(),
            "sql": sql,
            "params": encode_params(params),
            "fingerprint": fingerprint,
            "strategy": strategy,
            "kind": kind,
            "outcome": outcome,
            "error": error_obj,
            "wall_ms": round(wall_ms, 3),
            "rows": None if result is None else result.rowcount,
            "digest": None if result is None else result_digest(result),
        }
        with self._lock:
            self._seq += 1
            entry["seq"] = self._seq
            self._write(entry)

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_journal(path: str) -> Tuple[dict, List[JournalEntry]]:
    """Parse a journal file; returns ``(header, entries)``.

    Raises ``ValueError`` on a missing/foreign schema marker so replay
    fails loudly on files that are not journals (or journals from an
    incompatible future version).
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty journal")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("schema") != JOURNAL_SCHEMA:
        raise ValueError(
            f"{path}: not a {JOURNAL_SCHEMA} journal "
            f"(schema={header.get('schema') if isinstance(header, dict) else None!r})"
        )
    entries = [JournalEntry.from_json(json.loads(line)) for line in lines[1:]]
    return header, entries
