"""Historical observability: the workload flight recorder and replay.

Live observability (PR 9) dies with the process.  This package makes
workload history durable and *replayable*:

* :class:`JournalWriter` — attached via ``Database(record_to=...)`` or
  ``python -m repro.server --record`` — appends every executed statement
  (canonical SQL, bind params, session, traceparent, fingerprint,
  strategy, outcome, wall time, rows, and a digest of the result bytes)
  to a versioned JSON-lines journal.
* :func:`replay_journal` / ``python -m repro.history replay`` re-execute
  a journal deterministically against a fresh database; ``--diff``
  compares per-statement results and errors byte-for-byte against what
  was recorded and exits non-zero on any divergence — a record→replay→
  diff regression harness for every future change.

The journal is append-only, one JSON object per line, schema-versioned
(:data:`JOURNAL_SCHEMA`), and canonical (sorted keys, compact
separators) so identical workloads produce identical bytes.
"""

from repro.history.journal import (
    JOURNAL_SCHEMA,
    JournalEntry,
    JournalWriter,
    read_journal,
    result_digest,
)
from repro.history.replay import (
    Divergence,
    ReplayReport,
    build_bootstrap_database,
    replay_journal,
)

__all__ = [
    "JOURNAL_SCHEMA",
    "JournalEntry",
    "JournalWriter",
    "read_journal",
    "result_digest",
    "Divergence",
    "ReplayReport",
    "build_bootstrap_database",
    "replay_journal",
]
