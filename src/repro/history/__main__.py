"""Command line for the workload journal.

``python -m repro.history replay <journal>`` re-executes a recorded
workload against a fresh database; add ``--diff`` to require every
statement's result (or error) to match the recording byte-for-byte.
``show`` pretty-prints a journal without executing anything.

Exit status: 0 on success, 1 when ``--diff`` found divergences, 2 on an
unreadable or foreign file.
"""

from __future__ import annotations

import argparse
import sys

from repro.history.replay import replay_journal


def _cmd_replay(args: argparse.Namespace) -> int:
    try:
        report = replay_journal(args.journal, diff=args.diff)
    except (OSError, ValueError) as exc:
        print(f"replay: {exc}", file=sys.stderr)
        return 2
    for divergence in report.divergences:
        print(divergence.render())
    print(report.summary())
    return 1 if report.divergences else 0


def _cmd_show(args: argparse.Namespace) -> int:
    from repro.history.journal import read_journal

    try:
        header, entries = read_journal(args.journal)
    except (OSError, ValueError) as exc:
        print(f"show: {exc}", file=sys.stderr)
        return 2
    print(
        f"journal {args.journal}: schema={header.get('schema')} "
        f"bootstrap={header.get('bootstrap')} entries={len(entries)}"
    )
    for entry in entries:
        strategy = f" [{entry.strategy}]" if entry.strategy else ""
        print(
            f"  #{entry.seq} {entry.outcome}{strategy} "
            f"{entry.wall_ms}ms rows={entry.rows} {entry.sql}"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.history",
        description="Replay or inspect a workload journal.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    replay = commands.add_parser(
        "replay", help="re-execute a journal against a fresh database"
    )
    replay.add_argument("journal", help="path to a repro-journal-v1 file")
    replay.add_argument(
        "--diff",
        action="store_true",
        help="compare every result/error byte-for-byte; non-zero exit "
        "on divergence",
    )
    replay.set_defaults(func=_cmd_replay)
    show = commands.add_parser("show", help="print a journal's entries")
    show.add_argument("journal", help="path to a repro-journal-v1 file")
    show.set_defaults(func=_cmd_show)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
