"""Deterministic journal replay with byte-for-byte diffing.

:func:`replay_journal` rebuilds the journal's starting state (its
``bootstrap`` preload), then re-executes every recorded statement in
sequence order against the fresh database:

* entries recorded under an expansion strategy are replayed through
  :meth:`Database.execute_with_strategy`, so inline/window/subquery/
  winmagic runs are re-expanded the same way;
* cancelled entries are skipped — a cancellation is an artifact of the
  original run's timing, not of the workload;
* entries that *errored* are replayed expecting the same error: the
  failure class and message are part of the workload's observable
  behaviour.

With ``diff=True`` every replayed statement is compared against the
recording — result digests byte-for-byte for successes, error class and
message for failures — and each mismatch becomes a :class:`Divergence`.
A clean diff is the strongest cheap regression signal this engine has:
same workload, same bytes, end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import SqlError
from repro.history.journal import JournalEntry, read_journal, result_digest
from repro.server.protocol import error_payload

__all__ = [
    "EXPANSION_STRATEGIES",
    "Divergence",
    "ReplayReport",
    "build_bootstrap_database",
    "replay_journal",
]

#: Strategy labels that replay through ``execute_with_strategy`` (the
#: journal also contains "interpreter"/"summary"/None entries, which
#: replay through the plain execute path).
EXPANSION_STRATEGIES = ("subquery", "inline", "window", "winmagic", "auto")


def build_bootstrap_database(bootstrap: Optional[str], **db_kwargs):
    """A fresh Database with the journal's preload applied.

    ``"paper"`` loads the paper's Customers/Orders tables, ``"listings"``
    additionally creates the SETUP views the listings run over, None
    starts empty.  Anything else is a journal from a configuration this
    build does not know how to reconstruct — an error, not a guess.
    """
    from repro.api import Database

    if bootstrap not in (None, "paper", "listings"):
        raise ValueError(f"unknown journal bootstrap {bootstrap!r}")
    db = Database(**db_kwargs)
    if bootstrap in ("paper", "listings"):
        from repro.workloads.paper_data import load_paper_tables

        load_paper_tables(db)
    if bootstrap == "listings":
        from repro.workloads.listings import SETUP

        for ddl in SETUP.values():
            db.execute(ddl)
    return db


@dataclass(frozen=True)
class Divergence:
    """One statement whose replay did not reproduce the recording."""

    seq: int
    sql: Optional[str]
    reason: str
    recorded: Optional[str]
    replayed: Optional[str]

    def render(self) -> str:
        return (
            f"seq {self.seq}: {self.reason}\n"
            f"  sql:      {self.sql}\n"
            f"  recorded: {self.recorded}\n"
            f"  replayed: {self.replayed}"
        )


@dataclass
class ReplayReport:
    """The outcome of one journal replay."""

    total: int = 0
    replayed: int = 0
    skipped_cancelled: int = 0
    skipped_unprintable: int = 0
    errors_reproduced: int = 0
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        status = (
            "byte-identical"
            if self.clean
            else f"{len(self.divergences)} divergence(s)"
        )
        return (
            f"replayed {self.replayed}/{self.total} statements "
            f"({self.skipped_cancelled} cancelled skipped, "
            f"{self.errors_reproduced} errors reproduced): {status}"
        )


def _error_text(error: Optional[dict]) -> Optional[str]:
    if error is None:
        return None
    return f"{error.get('class')}: {error.get('message')}"


def _replay_entry(db, entry: JournalEntry, report: ReplayReport, diff: bool):
    try:
        if entry.strategy in EXPANSION_STRATEGIES:
            result = db.execute_with_strategy(
                entry.sql, entry.params, strategy=entry.strategy
            )
        else:
            result = db.execute(entry.sql, entry.params)
        outcome, digest, error = "ok", result_digest(result), None
    except SqlError as exc:
        outcome, digest, error = "error", None, error_payload(exc)
    report.replayed += 1
    if outcome == "error" and entry.outcome == "error":
        report.errors_reproduced += 1
    if not diff:
        return
    if outcome != entry.outcome:
        report.divergences.append(
            Divergence(
                seq=entry.seq,
                sql=entry.sql,
                reason="outcome changed",
                recorded=f"{entry.outcome} ({_error_text(entry.error)})",
                replayed=f"{outcome} ({_error_text(error)})",
            )
        )
    elif (
        outcome == "ok"
        and entry.digest is not None
        and digest != entry.digest
    ):
        # A None recorded digest means the original run captured no
        # result bytes (a bare writer.record without a Result); there is
        # nothing to hold the replay to beyond the outcome.
        report.divergences.append(
            Divergence(
                seq=entry.seq,
                sql=entry.sql,
                reason="result bytes changed",
                recorded=entry.digest,
                replayed=digest,
            )
        )
    elif outcome == "error" and error != entry.error:
        report.divergences.append(
            Divergence(
                seq=entry.seq,
                sql=entry.sql,
                reason="error changed",
                recorded=_error_text(entry.error),
                replayed=_error_text(error),
            )
        )


def replay_journal(
    path: str, *, diff: bool = False, db=None
) -> ReplayReport:
    """Re-execute a journal; with ``diff``, verify it byte-for-byte.

    ``db`` overrides the bootstrap database (tests inject a prepared
    one); by default a fresh database is built from the journal header.
    """
    header, entries = read_journal(path)
    if db is None:
        db = build_bootstrap_database(header.get("bootstrap"))
    report = ReplayReport(total=len(entries))
    for entry in entries:
        if entry.outcome == "cancelled":
            report.skipped_cancelled += 1
            continue
        if entry.sql is None:
            # Unprintable statement (no canonical SQL was recorded):
            # nothing to re-execute.
            report.skipped_unprintable += 1
            continue
        _replay_entry(db, entry, report, diff)
    return report
