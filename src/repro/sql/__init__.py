"""SQL front-end: lexer, AST, parser, printer, and traversal utilities."""

from repro.sql.lexer import tokenize
from repro.sql.parser import (
    parse_expression,
    parse_query,
    parse_statement,
    parse_statements,
)
from repro.sql.printer import to_sql

__all__ = [
    "parse_expression",
    "parse_query",
    "parse_statement",
    "parse_statements",
    "to_sql",
    "tokenize",
]
