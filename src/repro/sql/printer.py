"""Render AST nodes back to SQL text.

The printer produces canonical, re-parseable SQL.  It is used for:

* round-trip testing of the parser,
* rendering the output of measure expansion (the paper's Listing 5 / 11),
* error messages and EXPLAIN EXPAND output.
"""

from __future__ import annotations

import datetime
from typing import Any

from repro.errors import UnsupportedError
from repro.sql import ast

__all__ = ["to_sql", "format_literal"]


def format_literal(value: Any) -> str:
    """Render a Python value as a SQL literal."""
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, datetime.date):
        return f"DATE '{value.isoformat()}'"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _ident(name: str) -> str:
    if name.isidentifier():
        return name
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def to_sql(node: ast.Node) -> str:
    """Render any AST node (statement, query, or expression) to SQL."""
    return _Printer().render(node)


class _Printer:
    def render(self, node: ast.Node) -> str:
        method = getattr(self, f"_render_{type(node).__name__}", None)
        if method is None:
            raise UnsupportedError(f"cannot print {type(node).__name__}")
        return method(node)

    # -- expressions -------------------------------------------------------

    def _render_Literal(self, node: ast.Literal) -> str:
        return format_literal(node.value)

    def _render_ColumnRef(self, node: ast.ColumnRef) -> str:
        return ".".join(_ident(part) for part in node.parts)

    def _render_Parameter(self, node: ast.Parameter) -> str:
        return "?"

    def _render_Star(self, node: ast.Star) -> str:
        return f"{_ident(node.qualifier)}.*" if node.qualifier else "*"

    def _render_Unary(self, node: ast.Unary) -> str:
        if node.op == "NOT":
            return f"NOT ({self.render(node.operand)})"
        return f"{node.op}({self.render(node.operand)})"

    def _render_Binary(self, node: ast.Binary) -> str:
        left = self.render(node.left)
        right = self.render(node.right)
        if node.op in ("AND", "OR"):
            return f"({left} {node.op} {right})"
        return f"({left} {node.op} {right})"

    def _render_IsNull(self, node: ast.IsNull) -> str:
        op = "IS NOT NULL" if node.negated else "IS NULL"
        return f"({self.render(node.operand)} {op})"

    def _render_IsDistinctFrom(self, node: ast.IsDistinctFrom) -> str:
        op = "IS NOT DISTINCT FROM" if node.negated else "IS DISTINCT FROM"
        return f"({self.render(node.left)} {op} {self.render(node.right)})"

    def _render_Between(self, node: ast.Between) -> str:
        word = "NOT BETWEEN" if node.negated else "BETWEEN"
        return (
            f"({self.render(node.operand)} {word} "
            f"{self.render(node.low)} AND {self.render(node.high)})"
        )

    def _render_InList(self, node: ast.InList) -> str:
        word = "NOT IN" if node.negated else "IN"
        items = ", ".join(self.render(item) for item in node.items)
        return f"({self.render(node.operand)} {word} ({items}))"

    def _render_InSubquery(self, node: ast.InSubquery) -> str:
        word = "NOT IN" if node.negated else "IN"
        return f"({self.render(node.operand)} {word} ({self.render(node.query)}))"

    def _render_Like(self, node: ast.Like) -> str:
        word = "NOT LIKE" if node.negated else "LIKE"
        text = f"({self.render(node.operand)} {word} {self.render(node.pattern)}"
        if node.escape is not None:
            text += f" ESCAPE {self.render(node.escape)}"
        return text + ")"

    def _render_Case(self, node: ast.Case) -> str:
        parts = ["CASE"]
        if node.operand is not None:
            parts.append(self.render(node.operand))
        for when in node.whens:
            parts.append(
                f"WHEN {self.render(when.condition)} THEN {self.render(when.result)}"
            )
        if node.else_result is not None:
            parts.append(f"ELSE {self.render(node.else_result)}")
        parts.append("END")
        return " ".join(parts)

    def _render_Cast(self, node: ast.Cast) -> str:
        suffix = " MEASURE" if node.is_measure_type else ""
        return f"CAST({self.render(node.operand)} AS {node.type_name}{suffix})"

    def _render_FunctionCall(self, node: ast.FunctionCall) -> str:
        if node.star_arg:
            inner = "*"
        else:
            prefix = "DISTINCT " if node.distinct else ""
            inner = prefix + ", ".join(self.render(arg) for arg in node.args)
        if node.order_by:
            inner += " ORDER BY " + ", ".join(
                self._order_item(i) for i in node.order_by
            )
        text = f"{node.name}({inner})"
        if node.within_distinct:
            keys = ", ".join(self.render(k) for k in node.within_distinct)
            text += f" WITHIN DISTINCT ({keys})"
        if node.filter_where is not None:
            text += f" FILTER (WHERE {self.render(node.filter_where)})"
        if node.over is not None:
            text += f" OVER {self._render_WindowSpec(node.over)}"
        elif node.over_name is not None:
            text += f" OVER {_ident(node.over_name)}"
        return text

    def _render_WindowSpec(self, node: ast.WindowSpec) -> str:
        parts = []
        if node.partition_by:
            exprs = ", ".join(self.render(e) for e in node.partition_by)
            parts.append(f"PARTITION BY {exprs}")
        if node.order_by:
            items = ", ".join(self._order_item(i) for i in node.order_by)
            parts.append(f"ORDER BY {items}")
        if node.frame is not None:
            parts.append(
                f"{node.frame.unit} BETWEEN {self._bound(node.frame.start)}"
                f" AND {self._bound(node.frame.end)}"
            )
        return "(" + " ".join(parts) + ")"

    def _bound(self, bound: ast.FrameBound) -> str:
        if bound.kind == "UNBOUNDED_PRECEDING":
            return "UNBOUNDED PRECEDING"
        if bound.kind == "UNBOUNDED_FOLLOWING":
            return "UNBOUNDED FOLLOWING"
        if bound.kind == "CURRENT_ROW":
            return "CURRENT ROW"
        keyword = "PRECEDING" if bound.kind == "PRECEDING" else "FOLLOWING"
        return f"{self.render(bound.offset)} {keyword}"

    def _render_ScalarSubquery(self, node: ast.ScalarSubquery) -> str:
        return f"({self.render(node.query)})"

    def _render_Exists(self, node: ast.Exists) -> str:
        prefix = "NOT " if node.negated else ""
        return f"{prefix}EXISTS ({self.render(node.query)})"

    def _render_At(self, node: ast.At) -> str:
        modifiers = " ".join(self.render(m) for m in node.modifiers)
        return f"{self.render(node.operand)} AT ({modifiers})"

    def _render_AllModifier(self, node: ast.AllModifier) -> str:
        if not node.dims:
            return "ALL"
        return "ALL " + ", ".join(self.render(d) for d in node.dims)

    def _render_SetModifier(self, node: ast.SetModifier) -> str:
        return f"SET {self.render(node.dim)} = {self.render(node.value)}"

    def _render_VisibleModifier(self, node: ast.VisibleModifier) -> str:
        return "VISIBLE"

    def _render_WhereModifier(self, node: ast.WhereModifier) -> str:
        return f"WHERE {self.render(node.predicate)}"

    def _render_CurrentDim(self, node: ast.CurrentDim) -> str:
        return f"CURRENT {self._render_ColumnRef(node.dim)}"

    # -- query structure -----------------------------------------------------

    def _order_item(self, item: ast.OrderItem) -> str:
        text = self.render(item.expr)
        if item.descending:
            text += " DESC"
        if item.nulls_first is True:
            text += " NULLS FIRST"
        elif item.nulls_first is False:
            text += " NULLS LAST"
        return text

    def _render_Select(self, node: ast.Select) -> str:
        parts = ["SELECT"]
        if node.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(self._select_item(i) for i in node.items))
        if node.from_clause is not None:
            parts.append(f"FROM {self.render(node.from_clause)}")
        if node.where is not None:
            parts.append(f"WHERE {self.render(node.where)}")
        if node.group_by:
            parts.append(
                "GROUP BY " + ", ".join(self.render(g) for g in node.group_by)
            )
        if node.having is not None:
            parts.append(f"HAVING {self.render(node.having)}")
        if node.qualify is not None:
            parts.append(f"QUALIFY {self.render(node.qualify)}")
        if node.windows:
            windows = ", ".join(
                f"{_ident(w.name)} AS {self._render_WindowSpec(w.spec)}"
                for w in node.windows
            )
            parts.append(f"WINDOW {windows}")
        if node.order_by:
            parts.append(
                "ORDER BY " + ", ".join(self._order_item(i) for i in node.order_by)
            )
        if node.limit is not None:
            parts.append(f"LIMIT {self.render(node.limit)}")
        if node.offset is not None:
            parts.append(f"OFFSET {self.render(node.offset)}")
        return " ".join(parts)

    def _select_item(self, item: ast.SelectItem) -> str:
        text = self.render(item.expr)
        if item.alias:
            keyword = "AS MEASURE" if item.is_measure else "AS"
            text += f" {keyword} {_ident(item.alias)}"
        return text

    def _render_SimpleGrouping(self, node: ast.SimpleGrouping) -> str:
        return self.render(node.expr)

    def _render_Rollup(self, node: ast.Rollup) -> str:
        return "ROLLUP(" + ", ".join(self.render(e) for e in node.exprs) + ")"

    def _render_Cube(self, node: ast.Cube) -> str:
        return "CUBE(" + ", ".join(self.render(e) for e in node.exprs) + ")"

    def _render_GroupingSets(self, node: ast.GroupingSets) -> str:
        sets = ", ".join(
            "(" + ", ".join(self.render(e) for e in group) + ")"
            for group in node.sets
        )
        return f"GROUPING SETS ({sets})"

    def _render_TableName(self, node: ast.TableName) -> str:
        text = _ident(node.name)
        if node.alias:
            text += f" AS {_ident(node.alias)}"
        return text

    def _render_SubqueryRef(self, node: ast.SubqueryRef) -> str:
        text = f"({self.render(node.query)})"
        if node.alias:
            text += f" AS {_ident(node.alias)}"
        return text

    def _render_PivotRef(self, node: ast.PivotRef) -> str:
        values = ", ".join(
            self.render(literal) + (f" AS {_ident(alias)}" if alias else "")
            for literal, alias in node.values
        )
        text = (
            f"{self.render(node.input)} PIVOT({self.render(node.agg)} "
            f"FOR {self.render(node.key)} IN ({values}))"
        )
        if node.alias:
            text += f" AS {_ident(node.alias)}"
        return text

    def _render_UnpivotRef(self, node: ast.UnpivotRef) -> str:
        columns = ", ".join(
            _ident(column) + (f" AS '{label}'" if label else "")
            for column, label in node.columns
        )
        text = (
            f"{self.render(node.input)} UNPIVOT({_ident(node.value_column)} "
            f"FOR {_ident(node.name_column)} IN ({columns}))"
        )
        if node.alias:
            text += f" AS {_ident(node.alias)}"
        return text

    def _render_Join(self, node: ast.Join) -> str:
        left = self.render(node.left)
        right = self.render(node.right)
        prefix = "NATURAL " if node.natural else ""
        if node.kind == "CROSS":
            return f"{left} CROSS JOIN {right}"
        kind = "JOIN" if node.kind == "INNER" else f"{node.kind} JOIN"
        text = f"{left} {prefix}{kind} {right}"
        if node.condition is not None:
            text += f" ON {self.render(node.condition)}"
        elif node.using:
            text += " USING (" + ", ".join(_ident(c) for c in node.using) + ")"
        return text

    def _render_SetOp(self, node: ast.SetOp) -> str:
        keyword = node.op + (" ALL" if node.all else "")
        text = f"{self.render(node.left)} {keyword} {self.render(node.right)}"
        if node.order_by:
            text += " ORDER BY " + ", ".join(
                self._order_item(i) for i in node.order_by
            )
        if node.limit is not None:
            text += f" LIMIT {self.render(node.limit)}"
        if node.offset is not None:
            text += f" OFFSET {self.render(node.offset)}"
        return text

    def _render_Values(self, node: ast.Values) -> str:
        rows = ", ".join(
            "(" + ", ".join(self.render(e) for e in row) + ")" for row in node.rows
        )
        return f"VALUES {rows}"

    def _render_ShowStats(self, node: ast.ShowStats) -> str:
        return "SHOW STATS"

    def _render_WithQuery(self, node: ast.WithQuery) -> str:
        ctes = ", ".join(
            _ident(cte.name)
            + (
                " (" + ", ".join(_ident(c) for c in cte.columns) + ")"
                if cte.columns
                else ""
            )
            + f" AS ({self.render(cte.query)})"
            for cte in node.ctes
        )
        return f"WITH {ctes} {self.render(node.body)}"

    # -- statements ----------------------------------------------------------

    def _render_QueryStatement(self, node: ast.QueryStatement) -> str:
        return self.render(node.query)

    def _render_CreateTable(self, node: ast.CreateTable) -> str:
        columns = ", ".join(
            f"{_ident(c.name)} {c.type_name}" for c in node.columns
        )
        replace = "OR REPLACE " if node.or_replace else ""
        exists = "IF NOT EXISTS " if node.if_not_exists else ""
        return f"CREATE {replace}TABLE {exists}{_ident(node.name)} ({columns})"

    def _render_CreateView(self, node: ast.CreateView) -> str:
        replace = "OR REPLACE " if node.or_replace else ""
        columns = (
            " (" + ", ".join(_ident(c) for c in node.column_names) + ")"
            if node.column_names
            else ""
        )
        return (
            f"CREATE {replace}VIEW {_ident(node.name)}{columns} AS "
            f"{self.render(node.query)}"
        )

    def _render_CreateMaterializedView(self, node: ast.CreateMaterializedView) -> str:
        replace = "OR REPLACE " if node.or_replace else ""
        return (
            f"CREATE {replace}MATERIALIZED VIEW {_ident(node.name)} AS "
            f"{self.render(node.query)}"
        )

    def _render_RefreshMaterializedView(self, node: ast.RefreshMaterializedView) -> str:
        return f"REFRESH MATERIALIZED VIEW {_ident(node.name)}"

    def _render_DropObject(self, node: ast.DropObject) -> str:
        exists = "IF EXISTS " if node.if_exists else ""
        return f"DROP {node.kind} {exists}{_ident(node.name)}"

    def _render_Insert(self, node: ast.Insert) -> str:
        columns = (
            " (" + ", ".join(_ident(c) for c in node.columns) + ")"
            if node.columns
            else ""
        )
        return f"INSERT INTO {_ident(node.table)}{columns} {self.render(node.source)}"

    def _render_ExplainExpand(self, node: ast.ExplainExpand) -> str:
        return f"EXPLAIN EXPAND {self.render(node.query)}"

    def _render_CreateTableAs(self, node: ast.CreateTableAs) -> str:
        replace = "OR REPLACE " if node.or_replace else ""
        return f"CREATE {replace}TABLE {_ident(node.name)} AS {self.render(node.query)}"

    def _render_Truncate(self, node: ast.Truncate) -> str:
        return f"TRUNCATE TABLE {_ident(node.table)}"

    def _render_Analyze(self, node: ast.Analyze) -> str:
        if node.table is None:
            return "ANALYZE"
        return f"ANALYZE {_ident(node.table)}"

    def _render_ExplainPlan(self, node: ast.ExplainPlan) -> str:
        # Canonical option form: bare ANALYZE when it is the only option,
        # parenthesized list otherwise (LINT/TYPES always print in parens).
        options = [
            name
            for name, enabled in (
                ("LINT", node.lint),
                ("ANALYZE", node.analyze),
                ("TYPES", node.types),
            )
            if enabled
        ]
        if options == ["ANALYZE"]:
            option = "ANALYZE "
        elif options:
            option = "(" + ", ".join(options) + ") "
        else:
            option = ""
        inner = node.query if node.query is not None else node.target
        return f"EXPLAIN {option}{self.render(inner)}"

    def _render_Update(self, node: ast.Update) -> str:
        sets = ", ".join(
            f"{_ident(a.column)} = {self.render(a.value)}" for a in node.assignments
        )
        text = f"UPDATE {_ident(node.table)} SET {sets}"
        if node.where is not None:
            text += f" WHERE {self.render(node.where)}"
        return text

    def _render_Delete(self, node: ast.Delete) -> str:
        text = f"DELETE FROM {_ident(node.table)}"
        if node.where is not None:
            text += f" WHERE {self.render(node.where)}"
        return text
