"""Token definitions for the SQL lexer.

Keywords are kept in a single frozen set; the lexer classifies identifiers
against it case-insensitively, and the parser matches on the upper-cased
keyword text.  Non-reserved words (function names, most keywords) may still be
used as identifiers; the parser decides that contextually, so the lexer only
distinguishes KEYWORD from IDENT for words in :data:`KEYWORDS`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class TokenType(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (1-based)."""

    type: TokenType
    text: str
    value: Any
    line: int
    column: int

    def is_keyword(self, *words: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text in words

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.type.name}, {self.text!r}, {self.line}:{self.column})"


#: Reserved and semi-reserved words recognized by the lexer.  The measure
#: extensions add AGGREGATE, AT, CURRENT, MEASURE and VISIBLE to the standard
#: vocabulary.
KEYWORDS = frozenset(
    """
    ALL AND ANY AS ASC AT BETWEEN BOOLEAN BY CASE CAST CREATE CROSS CUBE
    CURRENT DATE DELETE DESC DISTINCT DROP ELSE END ESCAPE EXCEPT EXISTS
    EXTRACT FALSE FILTER FIRST FOLLOWING FROM FULL GROUP GROUPING HAVING IF
    IN INNER INSERT INTERSECT INTO IS JOIN LAST LEFT LIKE LIMIT MATERIALIZED
    MEASURE NATURAL
    NOT NULL NULLS OFFSET ON OR ORDER OUTER OVER PARTITION PRECEDING RANGE
    REFRESH REPLACE RIGHT ROLLUP ROW ROWS SELECT SET SETS TABLE THEN TRUE
    UNBOUNDED
    UNION UNKNOWN UPDATE USING VALUES VIEW VISIBLE WHEN WHERE WINDOW WITH
    WITHIN AGGREGATE EVAL INTERVAL QUALIFY PIVOT UNPIVOT FOR
    """.split()
)

#: Multi-character operators, longest first so the lexer can greedily match.
OPERATORS = (
    "<>",
    "!=",
    "<=",
    ">=",
    "||",
    "->",
    "(",
    ")",
    ",",
    ".",
    ";",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "?",
)
