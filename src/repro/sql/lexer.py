"""Hand-written SQL tokenizer.

Supports:

* line comments (``--``) and block comments (``/* ... */``),
* single-quoted string literals with ``''`` escaping,
* double-quoted and backquoted identifiers,
* integer and decimal numeric literals (with exponents),
* the operator set in :data:`repro.sql.tokens.OPERATORS`.
"""

from __future__ import annotations

from repro.errors import LexerError
from repro.sql.tokens import KEYWORDS, OPERATORS, Token, TokenType

__all__ = ["tokenize"]

_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789$")
_DIGITS = frozenset("0123456789")


class _Lexer:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def error(self, message: str) -> LexerError:
        return LexerError(message, self.line, self.column)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos >= len(self.text):
                return
            if self.text[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def skip_trivia(self) -> None:
        while self.pos < len(self.text):
            ch = self.peek()
            if ch in " \t\r\n":
                self.advance()
            elif ch == "-" and self.peek(1) == "-":
                while self.pos < len(self.text) and self.peek() != "\n":
                    self.advance()
            elif ch == "/" and self.peek(1) == "*":
                start_line, start_col = self.line, self.column
                self.advance(2)
                while self.pos < len(self.text) and not (
                    self.peek() == "*" and self.peek(1) == "/"
                ):
                    self.advance()
                if self.pos >= len(self.text):
                    raise LexerError(
                        "unterminated block comment", start_line, start_col
                    )
                self.advance(2)
            else:
                return

    def lex_string(self) -> Token:
        line, column = self.line, self.column
        self.advance()  # opening quote
        parts: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise LexerError("unterminated string literal", line, column)
            ch = self.peek()
            if ch == "'":
                if self.peek(1) == "'":
                    parts.append("'")
                    self.advance(2)
                    continue
                self.advance()
                break
            parts.append(ch)
            self.advance()
        value = "".join(parts)
        return Token(TokenType.STRING, value, value, line, column)

    def lex_quoted_ident(self, quote: str) -> Token:
        line, column = self.line, self.column
        self.advance()
        parts: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise LexerError("unterminated quoted identifier", line, column)
            ch = self.peek()
            if ch == quote:
                self.advance()
                break
            parts.append(ch)
            self.advance()
        name = "".join(parts)
        return Token(TokenType.IDENT, name, name, line, column)

    def lex_number(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        is_float = False
        while self.peek() in _DIGITS:
            self.advance()
        if self.peek() == "." and self.peek(1) in _DIGITS:
            is_float = True
            self.advance()
            while self.peek() in _DIGITS:
                self.advance()
        if self.peek() in ("e", "E") and (
            self.peek(1) in _DIGITS
            or (self.peek(1) in "+-" and self.peek(2) in _DIGITS)
        ):
            is_float = True
            self.advance()
            if self.peek() in "+-":
                self.advance()
            while self.peek() in _DIGITS:
                self.advance()
        text = self.text[start : self.pos]
        value = float(text) if is_float else int(text)
        return Token(TokenType.NUMBER, text, value, line, column)

    def lex_word(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        while self.peek() in _IDENT_CONT:
            self.advance()
        text = self.text[start : self.pos]
        upper = text.upper()
        if upper in KEYWORDS:
            return Token(TokenType.KEYWORD, upper, text, line, column)
        return Token(TokenType.IDENT, text, text, line, column)

    def next_token(self) -> Token:
        self.skip_trivia()
        if self.pos >= len(self.text):
            return Token(TokenType.EOF, "", None, self.line, self.column)
        ch = self.peek()
        if ch == "'":
            return self.lex_string()
        if ch == '"':
            return self.lex_quoted_ident('"')
        if ch == "`":
            return self.lex_quoted_ident("`")
        if ch in _DIGITS:
            return self.lex_number()
        if ch in _IDENT_START:
            return self.lex_word()
        for op in OPERATORS:
            if self.text.startswith(op, self.pos):
                line, column = self.line, self.column
                self.advance(len(op))
                return Token(TokenType.OPERATOR, op, op, line, column)
        raise self.error(f"unexpected character {ch!r}")


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list ending with a single EOF token."""
    lexer = _Lexer(text)
    tokens: list[Token] = []
    while True:
        token = lexer.next_token()
        tokens.append(token)
        if token.type is TokenType.EOF:
            return tokens
