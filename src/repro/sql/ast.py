"""Abstract syntax tree for the supported SQL dialect.

All nodes are frozen-ish dataclasses (mutable for convenience during rewrites)
deriving from :class:`Node`, which provides generic child discovery so that
visitors and transformers (see :mod:`repro.sql.visitor`) need no per-node code.

Measure extensions over standard SQL:

* :class:`SelectItem` carries ``is_measure`` for ``expr AS MEASURE name``;
* :class:`At` represents ``cse AT (modifier ...)``;
* :class:`CurrentDim` represents ``CURRENT dim`` inside a ``SET`` modifier;
* ``AGGREGATE(m)`` and ``EVAL(m)`` parse as ordinary :class:`FunctionCall`
  nodes and are given meaning by the binder.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Sequence, Union

__all__ = [
    "Span",
    "node_span",
    "Node",
    "Expression",
    "Literal",
    "ColumnRef",
    "Parameter",
    "Star",
    "Unary",
    "Binary",
    "IsNull",
    "IsDistinctFrom",
    "Between",
    "InList",
    "InSubquery",
    "Like",
    "CaseWhen",
    "Case",
    "Cast",
    "FunctionCall",
    "WindowSpec",
    "FrameBound",
    "WindowFrame",
    "ScalarSubquery",
    "Exists",
    "At",
    "AtModifier",
    "AllModifier",
    "SetModifier",
    "VisibleModifier",
    "WhereModifier",
    "CurrentDim",
    "OrderItem",
    "SelectItem",
    "GroupingElement",
    "SimpleGrouping",
    "Rollup",
    "Cube",
    "GroupingSets",
    "TableRef",
    "TableName",
    "SubqueryRef",
    "PivotRef",
    "UnpivotRef",
    "Join",
    "Query",
    "Select",
    "SetOp",
    "Values",
    "Cte",
    "WithQuery",
    "Statement",
    "CreateTable",
    "CreateTableAs",
    "Truncate",
    "NamedWindow",
    "ColumnDef",
    "CreateView",
    "CreateMaterializedView",
    "RefreshMaterializedView",
    "DropObject",
    "Insert",
    "Update",
    "Delete",
    "Assignment",
    "ExplainExpand",
    "ExplainPlan",
]


@dataclass(frozen=True)
class Span:
    """A 1-based source position attached to an AST node by the parser.

    ``line``/``column`` point at the first token of the construct;
    ``end_line``/``end_column`` (when known) point just past its first token.
    Spans are informational only: they are deliberately *not* dataclass
    fields of the nodes, so node equality, :func:`dataclasses.replace`-based
    transforms, and printers are unaffected.
    """

    line: int
    column: int
    end_line: int = 0
    end_column: int = 0

    def __str__(self) -> str:
        return f"line {self.line}, column {self.column}"


class Node:
    """Base class for every AST node.

    ``span`` is the source position of the node's first token, or None for
    synthesized nodes (rewriter output, tests constructing ASTs directly).
    """

    span: Optional[Span] = None

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (recursing into lists and tuples)."""
        for f in dataclasses.fields(self):  # type: ignore[arg-type]
            value = getattr(self, f.name)
            yield from _iter_nodes(value)

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


def _iter_nodes(value: Any) -> Iterator[Node]:
    if isinstance(value, Node):
        yield value
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _iter_nodes(item)


def node_span(node: Optional[Node]) -> Optional[Span]:
    """The best-known source span for ``node``.

    Falls back to the first descendant that carries a span, because compound
    nodes built by the precedence-climbing parser (Binary chains and the
    like) inherit their position from their leftmost leaf.
    """
    if node is None:
        return None
    for candidate in node.walk():
        if candidate.span is not None:
            return candidate.span
    return None


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression(Node):
    """Base class for scalar expressions."""


@dataclass
class Literal(Expression):
    """A constant: number, string, boolean, date, or NULL (value=None)."""

    value: Any


@dataclass
class ColumnRef(Expression):
    """A possibly-qualified column reference, e.g. ``o.prodName``."""

    parts: tuple[str, ...]

    @property
    def name(self) -> str:
        return self.parts[-1]

    @property
    def qualifier(self) -> Optional[str]:
        return self.parts[-2] if len(self.parts) > 1 else None


@dataclass
class Parameter(Expression):
    """A positional ``?`` placeholder (0-based ``index`` in query order)."""

    index: int


@dataclass
class Star(Expression):
    """``*`` or ``alias.*`` in a SELECT list or COUNT(*)."""

    qualifier: Optional[str] = None


@dataclass
class Unary(Expression):
    op: str  # '-', '+', 'NOT'
    operand: Expression


@dataclass
class Binary(Expression):
    op: str  # arithmetic, comparison, AND, OR, ||
    left: Expression
    right: Expression


@dataclass
class IsNull(Expression):
    operand: Expression
    negated: bool = False


@dataclass
class IsDistinctFrom(Expression):
    left: Expression
    right: Expression
    negated: bool = False  # True => IS NOT DISTINCT FROM


@dataclass
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass
class InList(Expression):
    operand: Expression
    items: list[Expression]
    negated: bool = False


@dataclass
class InSubquery(Expression):
    operand: Expression
    query: "Query"
    negated: bool = False


@dataclass
class Like(Expression):
    operand: Expression
    pattern: Expression
    negated: bool = False
    escape: Optional[Expression] = None


@dataclass
class CaseWhen(Node):
    condition: Expression
    result: Expression


@dataclass
class Case(Expression):
    """Both simple (operand != None) and searched CASE."""

    operand: Optional[Expression]
    whens: list[CaseWhen]
    else_result: Optional[Expression]


@dataclass
class Cast(Expression):
    operand: Expression
    type_name: str
    is_measure_type: bool = False  # CAST(x AS INTEGER MEASURE)


@dataclass
class FrameBound(Node):
    kind: str  # UNBOUNDED_PRECEDING, PRECEDING, CURRENT_ROW, FOLLOWING, UNBOUNDED_FOLLOWING
    offset: Optional[Expression] = None


@dataclass
class WindowFrame(Node):
    unit: str  # ROWS or RANGE
    start: FrameBound
    end: FrameBound


@dataclass
class OrderItem(Node):
    expr: Expression
    descending: bool = False
    nulls_first: Optional[bool] = None  # None => dialect default


@dataclass
class WindowSpec(Node):
    partition_by: list[Expression] = field(default_factory=list)
    order_by: list[OrderItem] = field(default_factory=list)
    frame: Optional[WindowFrame] = None


@dataclass
class FunctionCall(Expression):
    """A scalar, aggregate, or window function call.

    ``AGGREGATE`` and ``EVAL`` (measure operators) arrive as FunctionCalls and
    are interpreted by the binder.  ``star_arg`` marks ``COUNT(*)``.
    """

    name: str
    args: list[Expression] = field(default_factory=list)
    distinct: bool = False
    star_arg: bool = False
    filter_where: Optional[Expression] = None
    over: Optional[WindowSpec] = None
    #: Named-window reference: fn() OVER w (resolved by the binder).
    over_name: Optional[str] = None
    #: In-aggregate ordering: LAST_VALUE(x ORDER BY day), STRING_AGG(...).
    order_by: list["OrderItem"] = field(default_factory=list)
    #: WITHIN DISTINCT (keys): aggregate one representative row per distinct
    #: key combination (paper section 6.3 / CALCITE-4483), the grain-managing
    #: clause that prevents join fan-out double counting.
    within_distinct: list[Expression] = field(default_factory=list)


@dataclass
class ScalarSubquery(Expression):
    query: "Query"


@dataclass
class Exists(Expression):
    query: "Query"
    negated: bool = False


class AtModifier(Node):
    """Base class for the AT operator's context modifiers (paper Table 3)."""


@dataclass
class AllModifier(AtModifier):
    """``ALL`` (empty dims: clear the whole context) or ``ALL dim, ...``."""

    dims: list[Expression] = field(default_factory=list)


@dataclass
class SetModifier(AtModifier):
    """``SET dim = expr``; ``expr`` may contain :class:`CurrentDim`."""

    dim: Expression
    value: Expression


@dataclass
class VisibleModifier(AtModifier):
    """``VISIBLE``: conjoin the query's WHERE clause and join conditions."""


@dataclass
class WhereModifier(AtModifier):
    """``WHERE predicate``: set the context to ``predicate``."""

    predicate: Expression


@dataclass
class At(Expression):
    """``cse AT (modifier ...)`` — the context transformation operator."""

    operand: Expression
    modifiers: list[AtModifier]


@dataclass
class CurrentDim(Expression):
    """``CURRENT dim``: the dimension's single value in the enclosing
    evaluation context, or NULL if unconstrained (paper section 3.5)."""

    dim: ColumnRef


# ---------------------------------------------------------------------------
# Query structure
# ---------------------------------------------------------------------------


@dataclass
class NamedWindow(Node):
    name: str
    spec: WindowSpec


@dataclass
class SelectItem(Node):
    expr: Expression
    alias: Optional[str] = None
    is_measure: bool = False  # expr AS MEASURE alias


class GroupingElement(Node):
    """Base for GROUP BY elements."""


@dataclass
class SimpleGrouping(GroupingElement):
    expr: Expression


@dataclass
class Rollup(GroupingElement):
    exprs: list[Expression]


@dataclass
class Cube(GroupingElement):
    exprs: list[Expression]


@dataclass
class GroupingSets(GroupingElement):
    sets: list[list[Expression]]


class TableRef(Node):
    """Base for FROM-clause items."""


@dataclass
class TableName(TableRef):
    name: str
    alias: Optional[str] = None


@dataclass
class SubqueryRef(TableRef):
    query: "Query"
    alias: Optional[str] = None


@dataclass
class PivotRef(TableRef):
    """``input PIVOT(agg(value) FOR key IN (v [AS name], ...)) [AS alias]``.

    Desugared by the binder into a grouped CASE-aggregate derived table.
    """

    input: TableRef
    agg: "FunctionCall"
    key: ColumnRef
    values: list[tuple["Literal", Optional[str]]]
    alias: Optional[str] = None


@dataclass
class UnpivotRef(TableRef):
    """``input UNPIVOT(value FOR name IN (col [AS 'label'], ...)) [AS alias]``.

    Desugared by the binder into a UNION ALL over the listed columns; rows
    with NULL values are excluded (BigQuery semantics).
    """

    input: TableRef
    value_column: str
    name_column: str
    columns: list[tuple[str, Optional[str]]]
    alias: Optional[str] = None


@dataclass
class Join(TableRef):
    kind: str  # INNER, LEFT, RIGHT, FULL, CROSS
    left: TableRef
    right: TableRef
    condition: Optional[Expression] = None
    using: list[str] = field(default_factory=list)
    natural: bool = False


class Query(Node):
    """Base for query expressions: SELECT, set operations, VALUES, WITH."""


@dataclass
class Select(Query):
    items: list[SelectItem]
    from_clause: Optional[TableRef] = None
    where: Optional[Expression] = None
    group_by: list[GroupingElement] = field(default_factory=list)
    having: Optional[Expression] = None
    qualify: Optional[Expression] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[Expression] = None
    offset: Optional[Expression] = None
    distinct: bool = False
    #: Internal: marks a grouping-set branch as an aggregate query even when
    #: its GROUP BY list is empty (the global grouping set).  Never parsed or
    #: printed.
    force_aggregate: bool = False
    #: WINDOW clause: named window specifications usable in OVER.
    windows: list["NamedWindow"] = field(default_factory=list)


@dataclass
class SetOp(Query):
    op: str  # UNION, INTERSECT, EXCEPT
    all: bool
    left: Query
    right: Query
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[Expression] = None
    offset: Optional[Expression] = None


@dataclass
class Values(Query):
    rows: list[list[Expression]]


@dataclass
class Cte(Node):
    name: str
    columns: list[str]
    query: Query


@dataclass
class WithQuery(Query):
    ctes: list[Cte]
    body: Query


@dataclass
class ShowStats(Query):
    """``SHOW STATS``: the telemetry metrics registry as a result set.

    Parsed as a query so it composes syntactically (and so lint rule RP112
    can flag nested uses), but only the top level executes it — the binder
    rejects it inside views and subqueries.
    """


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement(Node):
    """Base for top-level statements."""


@dataclass
class ColumnDef(Node):
    name: str
    type_name: str


@dataclass
class CreateTable(Statement):
    name: str
    columns: list[ColumnDef]
    or_replace: bool = False
    if_not_exists: bool = False


@dataclass
class CreateTableAs(Statement):
    """CREATE TABLE name AS query (column types inferred)."""

    name: str
    query: Query
    or_replace: bool = False


@dataclass
class Truncate(Statement):
    table: str


@dataclass
class Analyze(Statement):
    """``ANALYZE [table]``: collect per-column statistics (row count, NDV,
    min/max, null fraction, equi-depth histogram) into the catalog.  With
    no table, every base table (materialized views included) is analyzed.
    The results back the ``repro_table_stats`` / ``repro_column_stats``
    system tables."""

    table: Optional[str] = None


@dataclass
class CreateView(Statement):
    name: str
    query: Query
    or_replace: bool = False
    column_names: list[str] = field(default_factory=list)


@dataclass
class CreateMaterializedView(Statement):
    """``CREATE MATERIALIZED VIEW name AS SELECT dims..., agg(...)...
    FROM t GROUP BY dims``: a persistent summary table (Gray et al.'s data
    cube) the engine can answer subsumed measure queries from."""

    name: str
    query: Query
    or_replace: bool = False


@dataclass
class RefreshMaterializedView(Statement):
    """``REFRESH MATERIALIZED VIEW name``: recompute a stale summary."""

    name: str


@dataclass
class DropObject(Statement):
    kind: str  # TABLE, VIEW, or MATERIALIZED VIEW
    name: str
    if_exists: bool = False


@dataclass
class Insert(Statement):
    table: str
    columns: list[str]
    source: Query


@dataclass
class QueryStatement(Statement):
    """A top-level query used as a statement."""

    query: Query


@dataclass
class Assignment(Node):
    column: str
    value: Expression


@dataclass
class Update(Statement):
    table: str
    assignments: list[Assignment]
    where: Optional[Expression] = None


@dataclass
class Delete(Statement):
    table: str
    where: Optional[Expression] = None


@dataclass
class ExplainExpand(Statement):
    """``EXPLAIN EXPAND <query>`` — engine extension that returns the query
    with all measure references expanded to plain SQL (paper Listing 5)."""

    query: Query


@dataclass
class ExplainPlan(Statement):
    """``EXPLAIN [ANALYZE | (options)] <statement>``.

    Options (parenthesized, comma-separated, any order) or the bare
    ``ANALYZE`` keyword:

    * ``LINT`` — prepend static-analysis diagnostics as ``lint:`` lines;
    * ``ANALYZE`` — actually execute the query and render the operator tree
      annotated with observed row counts, call counts, and wall time;
    * ``TYPES`` — annotate every operator with its inferred dataflow facts
      (column types, nullability, constants, keys, cardinality bounds).

    ``query`` is the explained query; it is None when EXPLAIN wraps a
    DDL/DML statement instead, in which case ``target`` holds that
    statement.  Such statements parse (so lint can flag them — rule RP111)
    but refuse to execute: this engine plans only queries.
    """

    query: Optional[Query]
    lint: bool = False
    analyze: bool = False
    types: bool = False
    target: Optional[Statement] = None


StatementLike = Union[Statement, Query]
